/**
 * @file
 * Ablation A11: queue-depth scaling of a directly assigned VF.
 *
 * The paper's dd experiments are queue-depth-1; modern storage stacks
 * keep many requests in flight. This bench sweeps the number of
 * outstanding 4 KiB random reads a guest keeps against its VF and
 * reports IOPS and mean latency. Expected shape: IOPS scale with
 * depth until the device pipeline saturates (translation walkers,
 * transfer slots, media port), after which added depth only adds
 * queueing latency — the classic throughput/latency curve.
 */
#include "bench/common.h"
#include "util/rng.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A11", "IOPS vs. outstanding requests (QD sweep)",
        "extension study: throughput saturates at moderate queue "
        "depth; beyond that, latency grows linearly with depth");

    util::Table table({"queue_depth", "kIOPS", "mean_latency_us",
                       "MB_s"});
    for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
        auto bed = bench::must(virt::Testbed::create(
                                   bench::default_config()),
                               "testbed");
        auto vm = bench::must(
            bed->create_nesc_guest("/qd.img", 32768, true), "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "fn");
        drv::FunctionDriver driver(bed->sim(), bed->host_memory(),
                                   bed->bar(), bed->irq(), fn,
                                   bed->config().vf_driver);
        bench::must_ok(driver.init(), "driver");
        auto buffer = bench::must(
            bed->host_memory().alloc(4096ULL * depth, 64), "buffer");

        util::Rng rng(41);
        std::uint64_t completed = 0;
        double latency_sum = 0.0;
        const sim::Time deadline = bed->sim().now() + 30 * sim::kMs;
        std::function<void(std::uint32_t)> submit =
            [&](std::uint32_t slot) {
                if (bed->sim().now() >= deadline)
                    return;
                const sim::Time issued = bed->sim().now();
                (void)driver.submit(
                    ctrl::Opcode::kRead, rng.next_below(32764), 4,
                    buffer + slot * 4096,
                    [&, slot, issued](ctrl::CompletionStatus) {
                        ++completed;
                        latency_sum += static_cast<double>(
                            bed->sim().now() - issued);
                        submit(slot);
                    });
            };
        const sim::Time start = bed->sim().now();
        for (std::uint32_t slot = 0; slot < depth; ++slot)
            submit(slot);
        bed->sim().run_until(deadline);
        bed->sim().run_until_idle();
        const sim::Duration elapsed = bed->sim().now() - start;

        table.row()
            .add(depth)
            .add(static_cast<double>(completed) / util::ns_to_ms(elapsed),
                 2)
            .add(latency_sum / static_cast<double>(completed) / 1000.0, 1)
            .add(util::bandwidth_mb_per_sec(completed * 4096, elapsed),
                 1);
    }
    bench::print_table(table);
    bench::print_event_rate();
    return 0;
}
