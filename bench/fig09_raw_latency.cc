/**
 * @file
 * Figure 9: raw device access latency for read (top) and write
 * (bottom) across request sizes 512 B – 32 KiB, for the four
 * configurations: Host (hypervisor on the PF, no virtualization),
 * NeSC (direct VF assignment), virtio, and full emulation.
 *
 * With --trace <path>, the run records the controller's per-command
 * lifecycle trace and writes Chrome trace JSON to <path>; tracing only
 * buffers events on the side, so the printed figure is unchanged.
 */
#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

void
run_direction(bool write, virt::Testbed &bed, virt::GuestVm &nesc_vm,
              virt::GuestVm &virtio_vm, virt::GuestVm &emu_vm)
{
    util::Table table({"block_size", "host_us", "nesc_us", "virtio_us",
                       "emulation_us", "virtio/nesc", "emulation/nesc"});
    for (std::uint64_t bs :
         {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
        wl::DdConfig dd;
        dd.request_bytes = bs;
        dd.total_bytes = 64 * bs;
        dd.write = write;

        auto host =
            bench::must(wl::run_dd_raw(bed.sim(), bed.host_raw_io(), dd),
                        "host dd");
        auto nesc_r = bench::must(
            wl::run_dd_raw(bed.sim(), nesc_vm.raw_disk(), dd), "nesc dd");
        // Keep the raw-PF guests away from hypervisor FS metadata.
        dd.start_offset = (bed.device().geometry().num_blocks() - 16384) *
                          ctrl::kDeviceBlockSize;
        auto virtio = bench::must(
            wl::run_dd_raw(bed.sim(), virtio_vm.raw_disk(), dd),
            "virtio dd");
        auto emu = bench::must(
            wl::run_dd_raw(bed.sim(), emu_vm.raw_disk(), dd), "emu dd");

        table.row()
            .add(bs)
            .add(host.mean_latency_us)
            .add(nesc_r.mean_latency_us)
            .add(virtio.mean_latency_us)
            .add(emu.mean_latency_us)
            .add(virtio.mean_latency_us / nesc_r.mean_latency_us)
            .add(emu.mean_latency_us / nesc_r.mean_latency_us);
    }
    std::printf("--- %s latency ---\n", write ? "write" : "read");
    bench::print_table(table);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = bench::trace_arg(argc, argv);
    bench::print_header(
        "Figure 9", "raw access latency vs. request size",
        "NeSC ~= Host; >6x faster than virtio and >20x faster than "
        "emulation for accesses under 4 KiB");

    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    if (trace_path != nullptr)
        bed->controller().enable_tracing(1u << 20);
    auto nesc_vm = bench::must(
        bed->create_nesc_guest("/images/fig09.img", 65536, true),
        "nesc guest");
    auto virtio_vm =
        bench::must(bed->create_virtio_guest_raw(), "virtio guest");
    auto emu_vm =
        bench::must(bed->create_emulated_guest_raw(), "emulated guest");

    run_direction(false, *bed, *nesc_vm, *virtio_vm, *emu_vm);
    run_direction(true, *bed, *nesc_vm, *virtio_vm, *emu_vm);
    if (trace_path != nullptr)
        bench::write_trace(bed->controller().tracer(), trace_path);
    return 0;
}
