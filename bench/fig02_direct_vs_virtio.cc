/**
 * @file
 * Figure 2: write-bandwidth speedup of direct device assignment over
 * virtio as the storage device gets faster.
 *
 * As in the paper, the high-speed devices are emulated with a
 * throttled in-memory disk (ramdisk) — the software-stack overheads
 * cap the achievable rate at a few GB/s; the figure sweeps the device
 * rate from 100 MB/s up to the 3.6 GB/s the paper's ramdisk peaked at.
 * No NeSC controller is involved: direct assignment here is the plain
 * guest-driver-on-device configuration whose security problem NeSC
 * solves.
 */
#include <memory>

#include "bench/common.h"
#include "blocklayer/device_block_io.h"
#include "blocklayer/os_block_stack.h"
#include "storage/mem_block_device.h"
#include "virt/virtual_disk.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Figure 2", "direct device assignment vs. virtio write speedup",
        "speedup grows with device bandwidth, roughly doubling storage "
        "bandwidth (~2x) for multi-GB/s devices");

    util::Table table({"device_MB_s", "direct_MB_s", "virtio_MB_s",
                       "speedup"});
    const virt::CostModel costs;

    for (std::uint64_t mbps :
         {100u, 200u, 400u, 800u, 1200u, 1600u, 2400u, 3200u, 3600u}) {
        sim::Simulator sim;
        storage::MemBlockDevice device(
            storage::MemBlockDeviceConfig::ramdisk(mbps * 1'000'000ULL,
                                                   64ULL << 20));
        blk::DeviceBlockIo device_io(sim, device);

        // Direct assignment: guest stack straight on the device.
        blk::OsStackConfig direct_cfg;
        direct_cfg.direct_io = true;
        blk::OsBlockStack direct_stack(sim, device_io, "direct",
                                       direct_cfg);

        // virtio: guest -> virtio transition -> hypervisor stack ->
        // device (the replicated software layers of Fig. 1b).
        blk::OsStackConfig hv_cfg;
        hv_cfg.direct_io = true;
        blk::OsBlockStack hv_stack(sim, device_io, "hv", hv_cfg);
        virt::VirtioDisk virtio(sim, hv_stack, costs);
        blk::OsStackConfig guest_cfg;
        guest_cfg.direct_io = true;
        blk::OsBlockStack guest_stack(sim, virtio, "guest", guest_cfg);

        wl::DdConfig dd;
        dd.request_bytes = 256 * 1024; // dd bs=256K streaming write
        dd.total_bytes = 16ULL << 20;
        dd.write = true;

        auto direct = bench::must(wl::run_dd_raw(sim, direct_stack, dd),
                                  "direct dd");
        dd.start_offset = 32ULL << 20;
        auto para =
            bench::must(wl::run_dd_raw(sim, guest_stack, dd), "virtio dd");

        table.row()
            .add(mbps)
            .add(direct.bandwidth_mb_s, 1)
            .add(para.bandwidth_mb_s, 1)
            .add(direct.bandwidth_mb_s / para.bandwidth_mb_s);
    }
    bench::print_table(table);
    return 0;
}
