/**
 * @file
 * Table I: the experimental platform. Prints the modelled equivalent
 * of the paper's host machine / virtualized system / prototyping
 * platform tables, with the calibrated simulation parameters.
 */
#include "bench/common.h"

using namespace nesc;

int
main()
{
    bench::print_header("Table I", "experimental platform",
                        "descriptive table (no measured shape)");

    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    const auto &config = bed->config();

    util::Table host({"Host machine (modelled)", "value"});
    host.row().add("Machine model").add(
        "Supermicro X9DRG-QF (Sandy Bridge Xeon) — cost-modelled");
    host.row().add("Host DRAM model").add(
        std::to_string(config.host_memory_bytes >> 20) + " MiB");
    host.row().add("vmexit+vmenter round trip").add(
        std::to_string(config.costs.vm_trap) + " ns");
    host.row().add("Hypervisor").add(
        "QEMU/KVM-style: emulation, virtio and direct assignment paths");
    bench::print_table(host);

    util::Table proto({"Prototyping platform (modelled)", "value"});
    proto.row().add("Model").add(
        "Xilinx VC707 (Virtex-7) NeSC prototype — functional+timing model");
    proto.row().add("Device RAM / capacity").add(
        std::to_string(config.device.capacity_bytes >> 20) + " MiB");
    proto.row().add("Media read rate").add(
        std::to_string(config.device.read_bytes_per_sec / 1'000'000) +
        " MB/s (prototype: 800 MB/s)");
    proto.row().add("Media write rate").add(
        std::to_string(config.device.write_bytes_per_sec / 1'000'000) +
        " MB/s (prototype: ~1 GB/s)");
    proto.row().add("Host I/O").add(
        "PCIe x8 gen2-class DMA: " +
        std::to_string(
            bed->controller().dma().config().bytes_per_sec / 1'000'000) +
        " MB/s, " +
        std::to_string(bed->controller().dma().config().latency) +
        " ns latency");
    proto.row().add("SR-IOV emulation").add(
        "BAR sliced into " + std::to_string(config.bar_page_size) +
        " B pages; page 0 = PF, page i = VF i");
    proto.row().add("VF slots").add(
        std::to_string(config.controller.max_vfs));
    proto.row().add("BTLB").add(
        std::to_string(config.controller.btlb_entries) +
        " extents, FIFO replacement");
    proto.row().add("Block walks overlapped").add(
        std::to_string(config.controller.walk_overlap));
    proto.row().add("Device block size").add(
        std::to_string(ctrl::kDeviceBlockSize) + " B");
    bench::print_table(proto);

    util::Table guest({"Virtualized system (modelled)", "value"});
    guest.row().add("VMM").add("QEMU/KVM-style cost model");
    guest.row().add("Guest filesystem").add(
        "nestfs (ext4-like extents, metadata journal)");
    guest.row().add("Guest cache").add(
        std::to_string(config.guest.fs_stack.cache.capacity_blocks) +
        " blocks (paper: guest RAM capped at 128 MB)");
    guest.row().add("Hypervisor filesystem").add(
        "nestfs on the PF block device");
    bench::print_table(guest);
    return 0;
}
