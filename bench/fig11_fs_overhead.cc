/**
 * @file
 * Figure 11: filesystem overheads — guest write latency on the raw
 * virtual device vs. through a guest filesystem created on it, for
 * virtio and for NeSC.
 *
 * The paper's observation: the filesystem adds a roughly constant
 * ~40 us to NeSC (the guest FS's own metadata I/O is cheap over a
 * directly assigned VF), while over virtio the same metadata I/O
 * costs an extra ~170 us per write — NeSC-with-FS is about as fast as
 * RAW virtio, i.e. NeSC absorbs the entire filesystem overhead.
 */
#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

/** Sync-write dd latency through a fresh file in the guest FS. */
double
fs_write_latency(virt::Testbed &bed, virt::GuestVm &vm, std::uint64_t bs,
                 const char *tag)
{
    std::string path = std::string("/fig11-") + tag + "-" +
                       std::to_string(bs);
    auto ino = bench::must(vm.fs()->create(path, 0644), "create");
    wl::DdConfig dd;
    dd.request_bytes = bs;
    dd.total_bytes = 48 * bs;
    dd.write = true;
    auto result =
        bench::must(wl::run_dd_file(bed.sim(), vm, ino, dd), "dd file");
    return result.mean_latency_us;
}

/** Sync-write dd latency on the raw virtual device. */
double
raw_write_latency(virt::Testbed &bed, virt::GuestVm &vm, std::uint64_t bs,
                  std::uint64_t offset)
{
    wl::DdConfig dd;
    dd.request_bytes = bs;
    dd.total_bytes = 48 * bs;
    dd.write = true;
    dd.start_offset = offset;
    auto result = bench::must(wl::run_dd_raw(bed.sim(), vm.raw_disk(), dd),
                              "dd raw");
    return result.mean_latency_us;
}

} // namespace

int
main()
{
    bench::print_header(
        "Figure 11", "filesystem overhead on write latency",
        "FS adds a ~constant ~40us to NeSC; virtio+FS costs an extra "
        "~170us and is >4x slower than NeSC+FS for writes under 8 KiB; "
        "NeSC+FS is comparable to RAW virtio");

    // Guest filesystems run without a journal here: ext4's default
    // data=ordered mode with its 5 s commit interval does not journal
    // on every write, so the per-write overhead the paper measures is
    // the mapping + metadata update path only.
    virt::TestbedConfig config = bench::default_config();
    config.guest.fs.journal_mode = fs::JournalMode::kNone;
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    auto nesc_vm = bench::must(
        bed->create_nesc_guest("/images/fig11.img", 32768, true),
        "nesc guest");
    bench::must_ok(nesc_vm->format_fs(), "guest fs (nesc)");

    auto virtio_vm =
        bench::must(bed->create_virtio_guest_raw(), "virtio guest");
    bench::must_ok(virtio_vm->format_fs(), "guest fs (virtio)");

    util::Table table({"block_size", "nesc_raw_us", "nesc_fs_us",
                       "virtio_raw_us", "virtio_fs_us", "nesc_fs_delta",
                       "virtio_fs_delta", "virtio_fs/nesc_fs"});
    const std::uint64_t raw_off =
        (bed->device().geometry().num_blocks() - 65536) *
        ctrl::kDeviceBlockSize;
    for (std::uint64_t bs : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        // Raw series: NeSC guest writes near the end of its virtual
        // disk; virtio guest writes near the end of the PF.
        const double nesc_raw =
            raw_write_latency(*bed, *nesc_vm, bs, 16ULL << 20);
        const double nesc_fs = fs_write_latency(*bed, *nesc_vm, bs, "n");
        const double virtio_raw =
            raw_write_latency(*bed, *virtio_vm, bs, raw_off);
        const double virtio_fs =
            fs_write_latency(*bed, *virtio_vm, bs, "v");
        table.row()
            .add(bs)
            .add(nesc_raw, 1)
            .add(nesc_fs, 1)
            .add(virtio_raw, 1)
            .add(virtio_fs, 1)
            .add(nesc_fs - nesc_raw, 1)
            .add(virtio_fs - virtio_raw, 1)
            .add(virtio_fs / nesc_fs);
    }
    bench::print_table(table);
    return 0;
}
