/**
 * @file
 * Ablation A10: NeSC over flash media.
 *
 * The paper's prototype stores data in on-board DRAM but argues NeSC
 * "will greatly benefit commercial PCIe SSDs". This bench swaps the
 * media model for the NAND SSD (FTL + GC + asymmetric program/erase)
 * and re-runs the core comparison: does NeSC's advantage over virtio
 * survive when the device itself is slower and noisier? Expected
 * shape: absolute numbers drop (media-bound), the NeSC-vs-virtio gap
 * narrows at large blocks but persists at small ones — software
 * overhead still dominates small-block latency. Also reports FTL
 * statistics (write amplification) after a random-write phase.
 */
#include "bench/common.h"
#include "util/rng.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A10", "NeSC vs. virtio over NAND flash media",
        "extension study: the NeSC advantage persists on SSD-class "
        "media for small blocks, where software overhead still "
        "dominates; large blocks become media-bound");

    virt::TestbedConfig config = bench::default_config();
    config.flash = storage::FlashConfig{};
    config.flash->capacity_bytes = 128ULL << 20;
    auto bed = bench::must(virt::Testbed::create(config), "testbed");
    auto nesc_vm = bench::must(
        bed->create_nesc_guest("/flash.img", 49152, true), "guest");
    auto virtio_vm =
        bench::must(bed->create_virtio_guest_raw(), "virtio guest");

    util::Table table({"block_size", "nesc_us", "virtio_us",
                       "virtio/nesc", "nesc_MB_s", "virtio_MB_s"});
    for (std::uint64_t bs : {1024u, 4096u, 16384u, 65536u}) {
        wl::DdConfig dd;
        dd.request_bytes = bs;
        dd.total_bytes = 48 * bs;
        dd.write = true;
        auto nesc_r = bench::must(
            wl::run_dd_raw(bed->sim(), nesc_vm->raw_disk(), dd),
            "nesc dd");
        dd.start_offset = (bed->device().geometry().num_blocks() - 16384) *
                          ctrl::kDeviceBlockSize;
        auto virtio_r = bench::must(
            wl::run_dd_raw(bed->sim(), virtio_vm->raw_disk(), dd),
            "virtio dd");
        table.row()
            .add(bs)
            .add(nesc_r.mean_latency_us, 1)
            .add(virtio_r.mean_latency_us, 1)
            .add(virtio_r.mean_latency_us / nesc_r.mean_latency_us)
            .add(nesc_r.bandwidth_mb_s, 1)
            .add(virtio_r.bandwidth_mb_s, 1);
    }
    bench::print_table(table);

    // FTL behaviour under random overwrite through the whole stack.
    util::Rng rng(9);
    std::vector<std::byte> page(4096);
    for (int i = 0; i < 12000; ++i) {
        wl::fill_pattern(i, 0, page);
        bench::must_ok(nesc_vm->raw_disk().write_blocks(
                           rng.next_below(49148), 4, page),
                       "random write");
    }
    const auto &stats = bed->flash_device()->stats();
    util::Table ftl({"FTL metric", "value"});
    ftl.row().add("host pages written").add(stats.host_pages_written);
    ftl.row().add("pages programmed (incl. GC)").add(
        stats.pages_programmed);
    ftl.row().add("GC relocations").add(stats.gc_relocations);
    ftl.row().add("block erases").add(stats.erases);
    ftl.row().add("write amplification").add(
        stats.write_amplification());
    bench::print_table(ftl);
    return 0;
}
