/**
 * @file
 * Ablation A15: end-to-end data integrity — detection, repair, and the
 * checksum tax.
 *
 * Three gated scenarios on the testbed:
 *
 *   1. detection: a guest writes a known pattern through its VF, then
 *      bits rot on the physical media behind the controller. With the
 *      checksum sidecar on, every read of a damaged block must fail
 *      with a checksum error — the gate is that ZERO corrupt payloads
 *      are ever delivered, and every seeded hit is detected;
 *   2. repair: the same rot on one backend of a replicated set. A
 *      background scrub must find every stale copy and repair it from
 *      a verified peer, leaving the backends bit-identical and the
 *      guest data byte-exact;
 *   3. overhead: checksums-on (replication off) goodput vs the plain
 *      data path on the identical workload — the verify-on-every-read
 *      tax must stay within 5%.
 *
 * Any gate failure aborts the run. Everything is seeded and
 * event-driven, so the numbers are deterministic.
 *
 * Writes BENCH_PR9.json (simulated, deterministic metrics only).
 */
#include <cstdlib>
#include <cstring>

#include "bench/common.h"

#include "repl/replica_set.h"
#include "storage/block_device.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

constexpr std::uint64_t kImageBlocks = 8192; // 8 MiB virtual disk
constexpr std::uint32_t kOpBlocks = 4;       // 4 KiB per op
constexpr sim::Duration kPhase = 20 * sim::kMs;

/**
 * Rot-placement seed for the scheduled chaos job (NESC_CHAOS_SEED,
 * date-derived there). It shifts which blocks rot and which byte
 * flips; every gate metric is placement-invariant, so the emitted
 * JSON stays byte-stable across seeds. Unset = 0 = the default run.
 */
std::uint64_t
chaos_seed()
{
    const char *env = std::getenv("NESC_CHAOS_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

virt::TestbedConfig
bench_config(bool integrity, bool replicated)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    if (integrity)
        config.integrity = virt::TestbedIntegrityConfig{};
    if (replicated) {
        virt::TestbedReplicationConfig repl;
        repl.backends = 3;
        config.replication = repl;
    }
    return config;
}

/** Writes the whole image with its per-block pattern via the guest. */
void
fill_image(virt::GuestVm &vm)
{
    std::vector<std::byte> buf(kOpBlocks * 1024);
    for (std::uint64_t b = 0; b < kImageBlocks; b += kOpBlocks) {
        for (std::uint32_t i = 0; i < kOpBlocks; ++i)
            wl::fill_pattern(b + i, 0,
                             std::span<std::byte>(buf).subspan(i * 1024,
                                                               1024));
        bench::must_ok(vm.raw_disk().write_blocks(b, kOpBlocks, buf),
                       "fill write");
    }
}

/**
 * Finds the pLBA holding @p vlba's pattern by scanning @p media raw.
 * The 32-byte prefix of wl::fill_pattern(vlba) is unique enough that a
 * collision would itself be a corruption.
 */
std::uint64_t
find_plba(storage::BlockDevice &media, std::uint64_t vlba)
{
    std::vector<std::byte> want(1024), raw(1024);
    wl::fill_pattern(vlba, 0, want);
    const std::uint64_t blocks = media.geometry().num_blocks();
    for (std::uint64_t b = 0; b < blocks; ++b) {
        if (!media.read(b * 1024, raw).is_ok())
            continue;
        if (std::memcmp(raw.data(), want.data(), 32) == 0)
            return b;
    }
    std::fprintf(stderr, "FATAL: vLBA %llu not found on media\n",
                 static_cast<unsigned long long>(vlba));
    std::exit(1);
}

/** Flips one stored byte of @p plba on @p media (silent bitrot). */
void
rot_block(storage::BlockDevice &media, std::uint64_t plba)
{
    std::vector<std::byte> raw(1024);
    bench::must_ok(media.read(plba * 1024, raw), "rot read");
    raw[(777 + chaos_seed() * 31) % 1024] ^= std::byte{0x20};
    bench::must_ok(media.write(plba * 1024, raw), "rot write");
}

struct DetectionResult {
    std::uint64_t seeded = 0;
    std::uint64_t detected_reads = 0;  // reads failing with a checksum error
    std::uint64_t corrupt_delivered = 0; // successful reads of wrong bytes
    std::uint64_t clean_ok = 0;
};

/**
 * Scenario 1: silent bitrot on the single-device path. Sweep-read the
 * whole image; damaged blocks must fail, clean blocks must be exact.
 */
DetectionResult
detection_run()
{
    auto bed = bench::must(
        virt::Testbed::create(bench_config(true, false)), "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/int.img", kImageBlocks),
                          "guest");
    fill_image(*vm);
    bed->sim().run_until_idle();

    // Rot 16 spread-out guest blocks directly on the physical media.
    DetectionResult r;
    std::vector<std::uint64_t> rotted;
    for (std::uint64_t vlba = chaos_seed() % (kImageBlocks / 16);
         vlba < kImageBlocks; vlba += kImageBlocks / 16) {
        rot_block(bed->device(), find_plba(bed->device(), vlba));
        rotted.push_back(vlba);
        ++r.seeded;
    }

    std::vector<std::byte> buf(1024), want(1024);
    for (std::uint64_t vlba = 0; vlba < kImageBlocks; ++vlba) {
        const bool damaged = std::find(rotted.begin(), rotted.end(),
                                       vlba) != rotted.end();
        const util::Status status =
            vm->raw_disk().read_blocks(vlba, 1, buf);
        if (!status.is_ok()) {
            if (damaged)
                ++r.detected_reads;
            else
                bench::must_ok(status, "clean-block read");
            continue;
        }
        wl::fill_pattern(vlba, 0, want);
        if (buf != want)
            ++r.corrupt_delivered;
        else if (!damaged)
            ++r.clean_ok;
        else
            ++r.corrupt_delivered; // damaged block served "ok"
    }
    return r;
}

struct RepairResult {
    std::uint64_t seeded = 0;
    std::uint64_t repairs = 0;
    std::uint64_t scrub_errors = 0;
    bool bit_identical = false;
    bool data_exact = false;
};

/**
 * Scenario 2: the same rot on one backend of a 3-way replica set; a
 * background scrub must repair every stale copy from a verified peer.
 */
RepairResult
repair_run()
{
    auto bed = bench::must(
        virt::Testbed::create(bench_config(true, true)), "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/int.img", kImageBlocks),
                          "guest");
    fill_image(*vm);
    bed->sim().run_until_idle();

    RepairResult r;
    std::vector<std::uint64_t> rotted;
    for (std::uint64_t vlba = chaos_seed() % (kImageBlocks / 8);
         vlba < kImageBlocks; vlba += kImageBlocks / 8) {
        const std::uint64_t plba = find_plba(bed->replica_media(0), vlba);
        rot_block(bed->replica_media(1), plba);
        rotted.push_back(vlba);
        ++r.seeded;
    }
    repl::ReplicaSet *set = bed->replicas();
    if (bench::must(set->verify_equal(0, 1), "verify")) {
        std::fprintf(stderr, "FATAL: rot did not land\n");
        std::exit(1);
    }

    drv::PfDriver &pf = bed->pf();
    bench::must_ok(pf.set_scrub_rate(256, 50'000), "scrub rate");
    bench::must_ok(pf.scrub_start(), "scrub start");
    bench::must(pf.scrub_wait(), "scrub wait");

    r.repairs = bench::must(pf.integrity_repairs(), "repairs");
    r.scrub_errors = bench::must(pf.scrub_errors(), "scrub errors");
    r.bit_identical = bench::must(set->verify_equal(0, 1), "verify") &&
                      bench::must(set->verify_equal(0, 2), "verify");

    // The guest's view is byte-exact everywhere, including the blocks
    // whose backend-1 copy was rotted.
    r.data_exact = true;
    std::vector<std::byte> buf(1024), want(1024);
    for (std::uint64_t vlba : rotted) {
        bench::must_ok(vm->raw_disk().read_blocks(vlba, 1, buf),
                       "post-scrub read");
        wl::fill_pattern(vlba, 0, want);
        if (buf != want)
            r.data_exact = false;
    }
    return r;
}

/** Scenario 3: steady-state goodput with/without the sidecar. */
double
steady_goodput(bool integrity)
{
    auto bed = bench::must(
        virt::Testbed::create(bench_config(integrity, false)), "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/bench.img",
                                                 kImageBlocks),
                          "guest");
    std::vector<std::byte> buf(kOpBlocks * 1024);
    std::uint64_t next_block = 0, ops = 0;
    bool write = true;
    sim::Simulator &sim = bed->sim();
    auto lap = [&](sim::Duration window) {
        std::uint64_t lap_ops = 0;
        const sim::Time deadline = sim.now() + window;
        while (sim.now() < deadline) {
            wl::fill_pattern(next_block, 0, buf);
            bench::must_ok(
                write ? vm->raw_disk().write_blocks(next_block, kOpBlocks,
                                                    buf)
                      : vm->raw_disk().read_blocks(next_block, kOpBlocks,
                                                   buf),
                "guest op");
            ++lap_ops;
            write = !write;
            next_block = (next_block + kOpBlocks) % kImageBlocks;
        }
        return lap_ops;
    };
    lap(kPhase / 2); // warm-up lap fills the image
    ops = lap(kPhase);
    return static_cast<double>(ops) * kOpBlocks * 1024.0 /
           (1024.0 * 1024.0) / (static_cast<double>(kPhase) / 1e9);
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A15", "end-to-end integrity: detect, repair, tax",
        "robustness extension (beyond the paper's trusted-media "
        "prototype): with the CRC32C sidecar on, silent media bitrot "
        "is always detected (zero corrupt payloads delivered), a "
        "background scrub repairs a rotted replica back to "
        "bit-identity, and the verify-on-read tax stays within 5%");

    std::printf("rot-placement seed: %llu\n",
                static_cast<unsigned long long>(chaos_seed()));
    const DetectionResult det = detection_run();
    const RepairResult rep = repair_run();
    const double base = steady_goodput(false);
    const double checked = steady_goodput(true);
    const double tax_ratio = checked / base;

    util::Table table({"scenario", "metric", "value"});
    table.row().add("detection").add("blocks rotted").add(det.seeded);
    table.row()
        .add("detection")
        .add("reads failed w/ checksum error")
        .add(det.detected_reads);
    table.row()
        .add("detection")
        .add("corrupt payloads delivered")
        .add(det.corrupt_delivered);
    table.row().add("detection").add("clean blocks exact").add(
        det.clean_ok);
    table.row().add("repair").add("backend copies rotted").add(rep.seeded);
    table.row().add("repair").add("scrub repairs").add(rep.repairs);
    table.row().add("repair").add("uncorrectable").add(rep.scrub_errors);
    table.row()
        .add("repair")
        .add("bit-identical after scrub")
        .add(rep.bit_identical ? "yes" : "NO");
    table.row().add("overhead").add("baseline goodput MB/s").add(base);
    table.row().add("overhead").add("checksummed goodput MB/s").add(
        checked);
    table.row().add("overhead").add("ratio").add(tax_ratio, 4);
    bench::print_table(table);
    bench::print_event_rate();

    bool ok = true;
    if (det.corrupt_delivered != 0) {
        std::fprintf(stderr,
                     "FATAL: %llu corrupt payloads delivered\n",
                     static_cast<unsigned long long>(
                         det.corrupt_delivered));
        ok = false;
    }
    if (det.detected_reads != det.seeded) {
        std::fprintf(stderr,
                     "FATAL: detected %llu of %llu rotted blocks\n",
                     static_cast<unsigned long long>(det.detected_reads),
                     static_cast<unsigned long long>(det.seeded));
        ok = false;
    }
    if (!rep.bit_identical || !rep.data_exact || rep.scrub_errors != 0) {
        std::fprintf(stderr, "FATAL: scrub repair incomplete\n");
        ok = false;
    }
    if (tax_ratio < 0.95) {
        std::fprintf(stderr, "FATAL: checksum tax ratio %.4f < 0.95\n",
                     tax_ratio);
        ok = false;
    }
    if (!ok)
        return 1;

    bench::emit_bench_json(
        "BENCH_PR9.json", 9,
        "end-to-end data integrity: detection, scrub repair from "
        "replica, and checksum goodput tax (simulated, deterministic)",
        {
            {"rot_seeded_blocks", static_cast<double>(det.seeded), true},
            {"rot_detected_reads",
             static_cast<double>(det.detected_reads), true},
            {"corrupt_payloads_delivered",
             static_cast<double>(det.corrupt_delivered), false},
            {"scrub_repairs", static_cast<double>(rep.repairs), true},
            {"scrub_uncorrectable",
             static_cast<double>(rep.scrub_errors), false},
            {"scrub_bit_identical", rep.bit_identical ? 1.0 : 0.0, true},
            {"base_goodput_mb_s", base, true},
            {"checked_goodput_mb_s", checked, true},
            {"checksum_tax_ratio", tax_ratio, true},
        });
    return 0;
}
