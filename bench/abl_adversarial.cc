/**
 * @file
 * Ablation A14: victim performance isolation under an adversarial
 * neighbor.
 *
 * One well-behaved VF runs a fixed QD8 random-read workload while a
 * HostileDriver on a sibling VF emits a seeded misbehavior stream —
 * malformed descriptors, ring-header corruption, out-of-window DMA
 * pointers, doorbell storms, PF-register probes — at increasing rates
 * (hostile events per victim submission). The hostile VF is confined
 * by PF-programmed DMA windows and the quarantine machinery; the PF
 * periodically releases it so attacks keep flowing instead of the fn
 * spending the whole run sealed.
 *
 * The paper argues NeSC's per-VF isolation (§IV.D); this ablation
 * quantifies the robustness half of that claim: victim IOPS and mean
 * latency must stay within 5% of the hostile-free run at every attack
 * rate, and the run aborts if they do not.
 *
 * Writes BENCH_A14.json (simulated, deterministic metrics only) for
 * scripts/tier2_fuzz_smoke.sh companions and future perf smokes.
 */
#include <memory>
#include <vector>

#include "bench/common.h"
#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "util/rng.h"
#include "virt/hostile_driver.h"

using namespace nesc;

namespace {

constexpr std::uint64_t kVictimBlocks = 4096;
constexpr std::uint64_t kHostileBlocks = 4096;
constexpr std::uint32_t kQueueDepth = 8;
constexpr std::uint32_t kTotalOps = 4096;

struct RunResult {
    double kiops = 0.0;
    double mean_latency_ns = 0.0;
    std::uint64_t hostile_events = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t releases = 0;
};

/**
 * Victim QD8 random reads with @p hostile_rate hostile events injected
 * per victim submission (0 = hostile-free baseline).
 */
RunResult
run_point(std::uint32_t hostile_rate)
{
    sim::Simulator sim;
    pcie::HostMemory host_memory(64 << 20);
    storage::MemBlockDevice device(
        storage::MemBlockDeviceConfig{.capacity_bytes = 32 << 20});
    pcie::InterruptController irq(sim);
    ctrl::ControllerConfig ctrl_config;
    ctrl_config.max_vfs = 4;
    ctrl::Controller controller(sim, host_memory, device, irq,
                                ctrl_config);
    pcie::BarPageRouter bar(controller, 4096, controller.num_functions());

    auto create_vf = [&](pcie::FunctionId fn, std::uint64_t blocks,
                         std::uint64_t first_pblock)
        -> extent::ExtentTreeImage {
        auto image = bench::must(
            extent::ExtentTreeImage::build(
                host_memory, {{0, blocks, first_pblock}}),
            "tree");
        bench::must_ok(
            controller.mmio_write(0, ctrl::reg::kMgmtVfId, fn, 8), "mgmt");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kMgmtExtentRoot,
                                             image.root(), 8),
                       "mgmt");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kMgmtDeviceSize,
                                             blocks, 8),
                       "mgmt");
        bench::must_ok(
            controller.mmio_write(
                0, ctrl::reg::kMgmtCommand,
                static_cast<std::uint64_t>(ctrl::MgmtCommand::kCreateVf),
                8),
            "mgmt");
        return image;
    };
    auto mgmt_for = [&](pcie::FunctionId fn, ctrl::MgmtCommand command) {
        bench::must_ok(
            controller.mmio_write(0, ctrl::reg::kMgmtVfId, fn, 8), "mgmt");
        bench::must_ok(
            controller.mmio_write(
                0, ctrl::reg::kMgmtCommand,
                static_cast<std::uint64_t>(command), 8),
            "mgmt");
    };

    const pcie::FunctionId victim = 1, hostile = 2;
    auto victim_tree = create_vf(victim, kVictimBlocks, 1000);
    auto hostile_tree = create_vf(hostile, kHostileBlocks, 10000);

    drv::FunctionDriver driver(sim, host_memory, bar, irq, victim, {});
    bench::must_ok(driver.init(), "victim driver");

    std::unique_ptr<virt::HostileDriver> hd;
    if (hostile_rate > 0) {
        hd = std::make_unique<virt::HostileDriver>(sim, host_memory, bar,
                                                   hostile, /*seed=*/7);
        bench::must_ok(hd->init(), "hostile driver");
        // Confine the hostile fn: its own sandbox plus its extent tree.
        const auto [tree_base, tree_size] = hostile_tree.bounds();
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kDmaWindowBase,
                                             hd->region_base(), 8),
                       "window");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kDmaWindowSize,
                                             hd->region_size(), 8),
                       "window");
        mgmt_for(hostile, ctrl::MgmtCommand::kAddDmaWindow);
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kDmaWindowBase,
                                             tree_base, 8),
                       "window");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kDmaWindowSize,
                                             tree_size, 8),
                       "window");
        mgmt_for(hostile, ctrl::MgmtCommand::kAddDmaWindow);
    }

    auto buffer =
        bench::must(host_memory.alloc(1024 * kQueueDepth, 64), "buffer");
    util::Rng rng(3);
    std::uint32_t submitted = 0, completed = 0;
    std::uint64_t latency_sum = 0;
    RunResult result;
    std::function<void()> submit_one = [&]() {
        if (submitted >= kTotalOps)
            return;
        const std::uint32_t slot = submitted % kQueueDepth;
        ++submitted;
        if (hd) {
            for (std::uint32_t i = 0; i < hostile_rate; ++i)
                hd->step();
            // The PF operator notices the sealed fn and releases it, so
            // the attack stream keeps exercising the live paths.
            if (submitted % 256 == 0 &&
                controller.quarantined(hostile)) {
                mgmt_for(hostile, ctrl::MgmtCommand::kReleaseQuarantine);
                hd->repair();
                ++result.releases;
            }
        }
        const sim::Time t_submit = sim.now();
        bench::must_ok(
            driver.submit(ctrl::Opcode::kRead,
                          rng.next_below(kVictimBlocks), 1,
                          buffer + slot * 1024,
                          [&, t_submit](ctrl::CompletionStatus status) {
                              if (status != ctrl::CompletionStatus::kOk) {
                                  std::fprintf(
                                      stderr,
                                      "FATAL: victim completion %u\n",
                                      static_cast<unsigned>(status));
                                  std::exit(1);
                              }
                              latency_sum += sim.now() - t_submit;
                              ++completed;
                              submit_one();
                          }),
            "victim submit");
    };

    const sim::Time start = sim.now();
    for (std::uint32_t i = 0; i < kQueueDepth; ++i)
        submit_one();
    while (completed < kTotalOps) {
        if (!sim.step()) {
            std::fprintf(stderr, "FATAL: pipeline stalled\n");
            std::exit(1);
        }
    }
    const sim::Duration elapsed = sim.now() - start;

    if (controller.quarantined(victim)) {
        std::fprintf(stderr, "FATAL: victim quarantined\n");
        std::exit(1);
    }
    result.kiops = elapsed > 0 ? static_cast<double>(kTotalOps) * 1e6 /
                                     static_cast<double>(elapsed)
                               : 0.0;
    result.mean_latency_ns =
        static_cast<double>(latency_sum) / static_cast<double>(kTotalOps);
    if (hd) {
        result.hostile_events = hd->events();
        result.quarantines = controller.stats(hostile).quarantines;
    }
    return result;
}

using Metric = bench::BenchMetric;

void
write_json(const std::vector<Metric> &metrics)
{
    bench::emit_bench_json(
        "BENCH_A14.json", 4,
        "adversarial-guest hardening: victim IOPS/latency isolation vs "
        "hostile misbehavior rate (simulated, deterministic)",
        metrics);
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A14", "victim isolation under an adversarial neighbor",
        "robustness corollary of the paper's per-VF isolation claim "
        "(§IV.D): a misbehaving guest, contained by validation + DMA "
        "windows + quarantine, must not dent a victim VF's IOPS or "
        "latency");

    util::Table table({"hostile_rate", "victim_kiops", "mean_lat_ns",
                       "goodput_vs_clean", "hostile_events", "quarantines",
                       "releases"});
    const RunResult clean = run_point(0);
    std::vector<Metric> metrics = {
        {"victim_kiops_hostile_free", clean.kiops, true},
        {"victim_mean_latency_ns_hostile_free", clean.mean_latency_ns,
         false},
    };
    table.row()
        .add(0)
        .add(clean.kiops, 2)
        .add(clean.mean_latency_ns, 0)
        .add(1.0, 3)
        .add(0)
        .add(0)
        .add(0);

    bool isolated = true;
    for (std::uint32_t rate : {1u, 4u, 16u}) {
        const RunResult r = run_point(rate);
        const double goodput = r.kiops / clean.kiops;
        table.row()
            .add(rate)
            .add(r.kiops, 2)
            .add(r.mean_latency_ns, 0)
            .add(goodput, 3)
            .add(r.hostile_events)
            .add(r.quarantines)
            .add(r.releases);
        if (rate == 16) {
            metrics.push_back(
                {"victim_kiops_hostile_rate16", r.kiops, true});
            metrics.push_back({"victim_goodput_ratio_rate16", goodput,
                               true});
            metrics.push_back({"victim_mean_latency_ns_hostile_rate16",
                               r.mean_latency_ns, false});
            metrics.push_back({"hostile_quarantines_rate16",
                               static_cast<double>(r.quarantines), true});
        }
        // The acceptance bar: within 5% of the hostile-free run.
        if (goodput < 0.95 ||
            r.mean_latency_ns > clean.mean_latency_ns * 1.05)
            isolated = false;
    }
    bench::print_table(table);
    bench::print_event_rate();
    write_json(metrics);

    if (!isolated) {
        std::fprintf(stderr,
                     "FATAL: victim perf deviated >5%% under attack\n");
        return 1;
    }
    std::printf("victim isolation held: within 5%% at every rate\n");
    return 0;
}
