/**
 * @file
 * Ablation A9: where does a block's device-internal latency go?
 *
 * Decomposes the controller's per-block latency into its pipeline
 * stages — arbitration wait, translation (BTLB hit or tree walk), and
 * data transfer (pLBA queueing + media + DMA) — for three scenarios:
 * an uncontended sequential reader (translation nearly free, transfer
 * dominates), an uncached fragmented reader (translation blows up to
 * multiple node DMAs), and four contending VFs (arbitration wait
 * appears). This is the classic architecture-paper latency-stack
 * figure for the design.
 *
 * Every scenario runs with lifecycle tracing enabled, and each row is
 * cross-checked against the tracer: the per-stage span totals must
 * reproduce the stage-histogram accounting within 1% (they are cut
 * from the same timestamps, so they in fact agree exactly; the bench
 * exits non-zero if they ever diverge). With --trace <path>, the
 * 4-VF-contention scenario's Chrome trace JSON is written to <path>.
 */
#include <cmath>

#include "bench/common.h"
#include "util/rng.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

/**
 * True when the trace-derived totals for @p stage agree with the
 * stage histogram @p hist on count and mean (1% tolerance).
 */
bool
stage_agrees(const obs::Tracer &tracer, obs::Stage stage,
             const obs::LogHistogram &hist, const char *scenario)
{
    const obs::StageTotals totals = tracer.totals(stage);
    const double trace_mean =
        totals.count > 0
            ? static_cast<double>(totals.total_ns) /
                  static_cast<double>(totals.count)
            : 0.0;
    const bool count_ok = totals.count == hist.count();
    const bool mean_ok =
        hist.mean() == 0.0
            ? trace_mean == 0.0
            : std::fabs(trace_mean - hist.mean()) <= 0.01 * hist.mean();
    if (!count_ok || !mean_ok) {
        std::fprintf(stderr,
                     "FATAL %s: trace/%s disagrees with histogram: "
                     "count %llu vs %llu, mean %.1f vs %.1f ns\n",
                     scenario, obs::stage_name(stage),
                     static_cast<unsigned long long>(totals.count),
                     static_cast<unsigned long long>(hist.count()),
                     trace_mean, hist.mean());
        return false;
    }
    return true;
}

/** One table row's stage means, kept for the machine-readable export. */
struct StageRow {
    double arb_us = 0.0;
    double translate_us = 0.0;
    double transfer_us = 0.0;
    double total_us = 0.0;
    std::uint64_t blocks = 0;
};

bool
report_row(util::Table &table, const char *scenario, virt::Testbed &bed,
           StageRow &out)
{
    const auto &queue = bed.controller().stage_queue_wait();
    const auto &translate = bed.controller().stage_translation();
    const auto &transfer = bed.controller().stage_transfer();
    const double total =
        queue.mean() + translate.mean() + transfer.mean();
    out.arb_us = queue.mean() / 1000.0;
    out.translate_us = translate.mean() / 1000.0;
    out.transfer_us = transfer.mean() / 1000.0;
    out.total_us = total / 1000.0;
    out.blocks = queue.count();
    table.row()
        .add(scenario)
        .add(out.arb_us, 2)
        .add(out.translate_us, 2)
        .add(out.transfer_us, 2)
        .add(out.total_us, 2)
        .add(out.blocks);
    const obs::Tracer &tracer = bed.controller().tracer();
    return stage_agrees(tracer, obs::Stage::kQueueWait, queue, scenario) &&
           stage_agrees(tracer, obs::Stage::kTranslate, translate,
                        scenario) &&
           stage_agrees(tracer, obs::Stage::kTransfer, transfer, scenario);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = bench::trace_arg(argc, argv);
    bool agreed = true;
    bench::print_header(
        "Ablation A9", "per-block latency breakdown by pipeline stage",
        "instrumentation study: transfer dominates the common case; "
        "translation only matters without BTLB locality; arbitration "
        "wait appears under multi-VF contention");

    util::Table table({"scenario", "arb_wait_us", "translate_us",
                       "transfer_us", "total_us", "blocks"});
    StageRow seq, frag, contend;

    { // 1. Uncontended sequential reads, contiguous file.
        auto bed = bench::must(virt::Testbed::create(
                                   bench::default_config()),
                               "testbed");
        bed->controller().enable_tracing();
        auto vm = bench::must(bed->create_nesc_guest("/seq.img", 16384,
                                                     true),
                              "guest");
        wl::DdConfig dd;
        dd.request_bytes = 4096;
        dd.total_bytes = 8ULL << 20;
        bench::must(wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd),
                    "dd");
        agreed &= report_row(table, "sequential/contiguous", *bed,
                             seq);
    }

    { // 2. Random reads on a fragmented file, BTLB disabled.
        virt::TestbedConfig config = bench::default_config();
        config.controller.btlb_entries = 0;
        config.pf.tree.fanout = 8;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");
        bed->controller().enable_tracing();
        auto &fs = bed->hv_fs();
        const std::uint64_t blocks = 2048;
        auto ino = bench::must(fs.create("/frag.img", 0644), "create");
        auto decoy = bench::must(fs.create("/decoy", 0644), "decoy");
        for (std::uint64_t vb = 0; vb < blocks; vb += 2) {
            bench::must_ok(fs.allocate_range(ino, vb, 2), "alloc");
            bench::must_ok(fs.allocate_range(decoy, vb, 2), "alloc");
        }
        auto vm = bench::must(bed->create_nesc_guest("/frag.img", blocks),
                              "guest");
        util::Rng rng(4);
        std::vector<std::byte> buf(1024);
        for (int i = 0; i < 512; ++i) {
            bench::must_ok(vm->raw_disk().read_blocks(
                               rng.next_below(blocks), 1, buf),
                           "read");
        }
        agreed &= report_row(table, "random/fragmented/no-BTLB", *bed,
                             frag);
    }

    { // 3. Four VFs contending with deep queues.
        auto bed = bench::must(virt::Testbed::create(
                                   bench::default_config()),
                               "testbed");
        // Big enough that the ring never wraps: the exported JSON then
        // carries every span, so the trace smoke can re-derive the
        // stage stack from the file alone.
        bed->controller().enable_tracing(1u << 20);
        struct Client {
            std::unique_ptr<drv::FunctionDriver> driver;
            pcie::HostAddr buffer;
            util::Rng rng{77};
        };
        std::vector<Client> clients(4);
        std::vector<std::unique_ptr<virt::GuestVm>> vms;
        for (int i = 0; i < 4; ++i) {
            auto vm = bench::must(
                bed->create_nesc_guest("/c" + std::to_string(i) + ".img",
                                       8192, true),
                "guest");
            auto fn = bench::must(bed->guest_vf(*vm), "fn");
            clients[i].driver = std::make_unique<drv::FunctionDriver>(
                bed->sim(), bed->host_memory(), bed->bar(), bed->irq(),
                fn, bed->config().vf_driver);
            bench::must_ok(clients[i].driver->init(), "driver");
            clients[i].buffer = bench::must(
                bed->host_memory().alloc(4096ULL * 8, 64), "buffer");
            vms.push_back(std::move(vm));
        }
        const sim::Time deadline = bed->sim().now() + 20 * sim::kMs;
        std::function<void(int, std::uint32_t)> submit =
            [&](int i, std::uint32_t slot) {
                if (bed->sim().now() >= deadline)
                    return;
                (void)clients[i].driver->submit(
                    ctrl::Opcode::kRead,
                    clients[i].rng.next_below(8188), 4,
                    clients[i].buffer + slot * 4096,
                    [&, i, slot](ctrl::CompletionStatus) {
                        submit(i, slot);
                    });
            };
        for (int i = 0; i < 4; ++i)
            for (std::uint32_t slot = 0; slot < 8; ++slot)
                submit(i, slot);
        bed->sim().run_until(deadline);
        bed->sim().run_until_idle();
        agreed &= report_row(table, "4-VF contention", *bed, contend);
        if (trace_path != nullptr)
            bench::write_trace(bed->controller().tracer(), trace_path);
    }

    bench::print_table(table);

    // Machine-readable form of the latency stack: the headline mean
    // per scenario plus the stage that scenario exists to expose
    // (transfer for sequential, translation for fragmented/no-BTLB,
    // arbitration wait for contention).
    bench::emit_bench_json(
        "BENCH_A5.json", 5, "per-block latency breakdown by pipeline stage",
        {
            {"seq_total_us", seq.total_us, false},
            {"seq_transfer_us", seq.transfer_us, false},
            {"frag_total_us", frag.total_us, false},
            {"frag_translate_us", frag.translate_us, false},
            {"contend_total_us", contend.total_us, false},
            {"contend_arb_wait_us", contend.arb_us, false},
            {"contend_blocks", static_cast<double>(contend.blocks), true},
        });

    if (!agreed) {
        std::fprintf(stderr,
                     "FATAL: trace-derived stage accounting diverged "
                     "from the stage histograms\n");
        return 1;
    }
    std::printf("trace cross-check: stage span totals match the stage "
                "histograms on every scenario\n");
    return 0;
}
