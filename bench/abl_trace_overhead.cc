/**
 * @file
 * Ablation A15: cost of the lifecycle tracer.
 *
 * The tracer's contract is "near-zero cost when disabled": every
 * instrumentation point is a single branch on Tracer::enabled() with
 * no allocation and no work behind it. This bench enforces that
 * contract two ways:
 *
 *  1. Determinism — tracing must never perturb the simulation. Every
 *     rep, with tracing off or on, must execute the exact same number
 *     of simulator events and end at the exact same simulated time
 *     (hard failure otherwise).
 *  2. Throughput — interleaved measurement reps compare "tracer never
 *     enabled" against "tracer enabled earlier, then disabled" (the
 *     state a production run would be in after capturing a trace).
 *     Both run the identical disabled-branch hot path; the median
 *     events/sec of the disabled-after-enable reps must stay within
 *     1% of the never-enabled reps. Wall-clock is noisy, so the check
 *     uses medians over interleaved reps and retries before failing.
 *
 * The fully-enabled overhead (branch taken, spans recorded into the
 * ring) is measured and reported for context but not enforced; it is
 * expected to cost a few percent.
 */
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

struct RepResult {
    double events_per_sec = 0.0;
    std::uint64_t sim_events = 0;
    sim::Time sim_elapsed = 0;
};

/** One deterministic measurement rep: sequential dd over a VF. */
RepResult
run_rep(bool enable_then_disable, bool enabled)
{
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    if (enable_then_disable) {
        // Leave the controller in the captured-a-trace-earlier state:
        // ring allocated, tracer off.
        bed->controller().enable_tracing();
        bed->controller().disable_tracing();
    }
    if (enabled)
        bed->controller().enable_tracing();
    auto vm = bench::must(bed->create_nesc_guest("/ovh.img", 16384, true),
                          "guest");
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 16ULL << 20;

    const std::uint64_t events_before =
        sim::Simulator::total_events_executed();
    const sim::Time sim_before = bed->sim().now();
    const auto wall_before = std::chrono::steady_clock::now();
    bench::must(wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd), "dd");
    const auto wall_after = std::chrono::steady_clock::now();

    RepResult result;
    result.sim_events =
        sim::Simulator::total_events_executed() - events_before;
    result.sim_elapsed = bed->sim().now() - sim_before;
    const double secs =
        std::chrono::duration<double>(wall_after - wall_before).count();
    result.events_per_sec =
        secs > 0 ? static_cast<double>(result.sim_events) / secs : 0.0;
    return result;
}

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A15", "lifecycle-tracer overhead",
        "instrumentation contract: tracing disabled costs <= 1% "
        "events/sec and never perturbs the simulated timeline");

    // Warm up allocators and caches once before timing anything.
    const RepResult reference = run_rep(false, false);

    constexpr int kReps = 5;
    constexpr int kAttempts = 3;
    double best_ratio = 0.0;
    double base_median = 0.0, disabled_median = 0.0, enabled_median = 0.0;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        std::vector<double> base, disabled, enabled;
        for (int rep = 0; rep < kReps; ++rep) {
            const RepResult b = run_rep(false, false);
            const RepResult d = run_rep(true, false);
            const RepResult e = run_rep(false, true);
            for (const RepResult &r : {b, d, e}) {
                if (r.sim_events != reference.sim_events ||
                    r.sim_elapsed != reference.sim_elapsed) {
                    std::fprintf(
                        stderr,
                        "FATAL: tracing perturbed the simulation: "
                        "%llu events / %llu ns vs reference "
                        "%llu events / %llu ns\n",
                        static_cast<unsigned long long>(r.sim_events),
                        static_cast<unsigned long long>(r.sim_elapsed),
                        static_cast<unsigned long long>(
                            reference.sim_events),
                        static_cast<unsigned long long>(
                            reference.sim_elapsed));
                    return 1;
                }
            }
            base.push_back(b.events_per_sec);
            disabled.push_back(d.events_per_sec);
            enabled.push_back(e.events_per_sec);
        }
        base_median = median(base);
        disabled_median = median(disabled);
        enabled_median = median(enabled);
        best_ratio = std::max(best_ratio, disabled_median / base_median);
        if (best_ratio >= 0.99)
            break; // within tolerance; skip the remaining attempts
    }

    util::Table table({"mode", "median_kevents_s", "vs_baseline"});
    table.row()
        .add("tracer never enabled")
        .add(base_median / 1000.0, 1)
        .add(1.0, 3);
    table.row()
        .add("compiled in, disabled")
        .add(disabled_median / 1000.0, 1)
        .add(disabled_median / base_median, 3);
    table.row()
        .add("enabled (recording)")
        .add(enabled_median / 1000.0, 1)
        .add(enabled_median / base_median, 3);
    bench::print_table(table);
    std::printf("timeline check: %llu simulator events, %llu ns simulated "
                "in every rep, tracing on or off\n",
                static_cast<unsigned long long>(reference.sim_events),
                static_cast<unsigned long long>(reference.sim_elapsed));

    if (best_ratio < 0.99) {
        std::fprintf(stderr,
                     "FATAL: tracing-disabled throughput regressed "
                     ">1%%: best ratio %.4f\n",
                     best_ratio);
        return 1;
    }
    std::printf("disabled-tracing overhead within 1%% (ratio %.4f)\n",
                best_ratio);
    return 0;
}
