/**
 * @file
 * Ablation A16: cost and fidelity of the always-on telemetry plane.
 *
 * PR 10 adds production observability that is meant to run all the
 * time: windowed per-VF latency accounting with SLO evaluation, the
 * lifecycle flight recorder, and the metrics time-series sampler.
 * This bench enforces the three contracts that make "always-on"
 * honest:
 *
 *  1. Cost — with the whole plane armed at production settings (20 ms
 *     accounting window, SLO thresholds programmed, flight recorder
 *     recording, sampler at 50 ms), the simulated data-path timeline
 *     must be bit-identical to the everything-off baseline (the plane
 *     adds timer events but must never move a single I/O completion),
 *     and the plane's compute cost must stay within 2% of the
 *     baseline events/sec. The 2% budget is charged against a
 *     component cost model: each plane primitive (window observe,
 *     flight record, registry sample) is timed by a tight in-process
 *     loop at the exact per-rep call volume the armed dd generates,
 *     and the summed cost is compared with the measured plane-off rep
 *     time. A direct wall-time A/B of ~10 ms regions cannot resolve
 *     2% — code-layout and scheduler noise on shared CI hardware run
 *     3-5% between *identical* binaries — so the in-situ off/on
 *     pairing (one warm guest, order-balanced pairs, thread CPU time)
 *     is kept as a coarser end-to-end regression bound: it must stay
 *     above 0.90, which still catches pathologies the model cannot,
 *     like the far-future-timer heap regression this PR fixed in the
 *     simulator core.
 *  2. Breach fidelity — a deliberately rate-starved tenant among
 *     healthy neighbors trips its own latency SLO, deterministically,
 *     and nobody else's: every breach directory entry names the slow
 *     VF, healthy VFs report zero breaches, and a repeat run produces
 *     the identical breach count.
 *  3. Postmortem capture — a malformed-descriptor storm that
 *     quarantines a hostile VF leaves a postmortem whose JSON dump
 *     parses and names the faulting commands by tag.
 *
 * Side artifacts for the observability smoke job: the scenario-2
 * metrics registry is exported as JSON and Prometheus text, and the
 * scenario-3 postmortem dump is written verbatim, so the tier-2
 * script can validate the exposition formats with a real parser.
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench/common.h"
#include "extent/tree_image.h"
#include "obs/flight_recorder.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "pcie/host_ring.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

// --- Scenario 1: whole-plane overhead --------------------------------

struct RepResult {
    double events_per_sec = 0.0;
    std::uint64_t sim_events = 0;
    sim::Time sim_elapsed = 0;
};

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

/**
 * Thread CPU seconds, falling back to the wall clock where the POSIX
 * thread clock is unavailable. The overhead gate compares compute cost
 * of ~10 ms regions; CPU time keeps scheduler preemption and frequency
 * transitions of other tenants out of the measurement.
 */
double
timer_seconds()
{
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct OverheadAttempt {
    double ratio = 0.0;       ///< in-situ median of per-pair on/off ratios
    double base_median = 0.0; ///< events/sec, plane off
    double on_median = 0.0;   ///< events/sec, plane armed
    std::uint64_t off_events = 0;
    std::uint64_t on_events = 0;
    sim::Time span = 0; ///< identical off and on, by the timeline check
    // Component cost model (filled when requested): the plane's compute
    // cost per armed rep, rebuilt from per-primitive timings at the
    // measured per-rep call volumes.
    double modeled_ratio = 0.0; ///< off / (off + modeled plane cost)
    double obs_ns = 0.0;    ///< per OK completion, rotations amortized
    double flight_ns = 0.0; ///< per lifecycle record
    double sample_ns = 0.0; ///< per sampler tick over the live registry
};

/**
 * One overhead attempt: a single testbed and guest, one warm-up dd,
 * then kPairs order-balanced plane-off / plane-armed dds over the
 * same warm image. Exits fatally on any determinism violation: every
 * off rep and every armed rep must replay the identical simulated
 * timeline and event count.
 *
 * With @p measure_model the attempt also runs the component cost
 * model: one extra armed dd to count the plane's per-rep call volumes
 * exactly (block completions, lifecycle records, rotations, sampler
 * ticks), then tight min-of-N loops over the real SloWatch /
 * FlightRecorder / TimeSeriesSampler primitives at those volumes.
 * The modeled per-rep cost divided into the fastest plane-off rep
 * gives a ratio that resolves well below 1%, which the in-situ A/B
 * cannot (see the file comment).
 */
OverheadAttempt
run_overhead_attempt(bool measure_model)
{
    constexpr int kPairs = 9;
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/ovh.img", 16384, true),
                          "guest");
    const auto fn = bench::must(bed->guest_vf(*vm), "guest fn");

    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 16ULL << 20;

    auto timed_dd = [&]() {
        const std::uint64_t events_before =
            sim::Simulator::total_events_executed();
        const sim::Time sim_before = bed->sim().now();
        const double cpu_before = timer_seconds();
        bench::must(wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd), "dd");
        const double cpu_after = timer_seconds();
        RepResult r;
        r.sim_events =
            sim::Simulator::total_events_executed() - events_before;
        r.sim_elapsed = bed->sim().now() - sim_before;
        const double secs = cpu_after - cpu_before;
        r.events_per_sec =
            secs > 0 ? static_cast<double>(r.sim_events) / secs : 0.0;
        return r;
    };
    // Arm the full plane the way a production host would leave it:
    // accounting windows rotating (20 ms — several rotations per dd,
    // so window evaluation is inside the measured region), SLO
    // thresholds programmed (high enough to never trip here —
    // evaluation still runs), flight recorder recording every
    // lifecycle event, sampler ticking at 50 ms.
    auto arm = [&]() {
        bench::must_ok(bed->pf().set_obs_window(20'000'000), "obs window");
        bench::must_ok(bed->pf().set_slo(fn, 10'000'000'000ULL, 1'000'000),
                       "slo");
        bench::must_ok(bed->pf().set_flight_recorder(true), "flight");
        bench::must_ok(bed->pf().set_sampler_interval(50'000'000),
                       "sampler");
    };
    auto disarm = [&]() {
        bench::must_ok(bed->pf().set_obs_window(0), "obs window off");
        bench::must_ok(bed->pf().set_flight_recorder(false), "flight off");
        bench::must_ok(bed->pf().set_sampler_interval(0), "sampler off");
        // Disarming epoch-kills the pending window/sampler ticks, but
        // the dead weak events stay queued (run_until_idle leaves weak
        // timers armed by design). Flush them with deadline-driven
        // runs outside the timed region so every rep starts from an
        // empty pending set; dead ticks never re-arm, so this
        // terminates after at most one interval.
        bed->sim().run_until_idle();
        while (bed->sim().weak_pending() > 0)
            bed->sim().run_until(bed->sim().now() + 50'000'000);
    };

    (void)timed_dd(); // warm-up: fault in the image and grow the heaps

    OverheadAttempt attempt;
    std::vector<double> base, on, ratios;
    for (int pair = 0; pair < kPairs; ++pair) {
        // Every timed dd starts from a drained, idle simulator so the
        // two pair orders see byte-identical initial state.
        RepResult off_rep, on_rep;
        if (pair % 2 == 0) {
            disarm();
            off_rep = timed_dd();
            bed->sim().run_until_idle();
            arm();
            on_rep = timed_dd();
            disarm();
        } else {
            arm();
            on_rep = timed_dd();
            disarm();
            off_rep = timed_dd();
            bed->sim().run_until_idle();
        }
        if (pair == 0) {
            attempt.off_events = off_rep.sim_events;
            attempt.on_events = on_rep.sim_events;
            attempt.span = off_rep.sim_elapsed;
            if (on_rep.sim_elapsed != off_rep.sim_elapsed) {
                std::fprintf(stderr,
                             "FATAL: telemetry plane moved the data-path "
                             "timeline: %llu ns vs %llu ns\n",
                             static_cast<unsigned long long>(
                                 on_rep.sim_elapsed),
                             static_cast<unsigned long long>(
                                 off_rep.sim_elapsed));
                std::exit(1);
            }
        } else if (off_rep.sim_events != attempt.off_events ||
                   off_rep.sim_elapsed != attempt.span ||
                   on_rep.sim_events != attempt.on_events ||
                   on_rep.sim_elapsed != attempt.span) {
            std::fprintf(stderr,
                         "FATAL: nondeterministic rep with the telemetry "
                         "plane %s\n",
                         on_rep.sim_events != attempt.on_events ? "on"
                                                                : "off");
            std::exit(1);
        }
        base.push_back(off_rep.events_per_sec);
        on.push_back(on_rep.events_per_sec);
        ratios.push_back(on_rep.events_per_sec / off_rep.events_per_sec);
        if (std::getenv("NESC_SLO_BENCH_DEBUG") != nullptr)
            std::fprintf(stderr, "  pair %d: off=%.0f on=%.0f r=%.4f\n",
                         pair, off_rep.events_per_sec,
                         on_rep.events_per_sec, ratios.back());
    }
    attempt.ratio = median(ratios);
    attempt.base_median = median(base);
    attempt.on_median = median(on);
    if (!measure_model)
        return attempt;

    // ---- Component cost model --------------------------------------
    // Call volumes are measured, not assumed: one more armed dd with a
    // stats snapshot on either side counts exactly how many times the
    // plane's primitives run per rep.
    arm();
    const auto pre = bed->controller().stats(fn);
    (void)timed_dd();
    const auto post = bed->controller().stats(fn);
    disarm();
    const std::uint64_t n_obs = (post.blocks_read + post.blocks_written) -
                                (pre.blocks_read + pre.blocks_written);
    const std::uint64_t n_cmds = post.completions - pre.completions;
    // One doorbell, one fetch and one completion record per command of
    // a synchronous dd; no faults in this scenario.
    const std::uint64_t n_flight = 3 * n_cmds;
    const std::uint64_t n_rot = attempt.span / 20'000'000 + 1;
    const std::uint64_t n_samp = attempt.span / 50'000'000 + 1;

    auto min_seconds = [](int reps, auto &&body) {
        double best = 1e9;
        for (int r = 0; r < reps; ++r) {
            const double t0 = timer_seconds();
            body();
            const double t1 = timer_seconds();
            best = std::min(best, t1 - t0);
        }
        return best;
    };

    // The SLO loop replays one armed rep faithfully: same function
    // count, thresholds programmed, the window rotated at the same
    // per-rep cadence (so drain, evaluation and the sampling-gate
    // reset are all inside the measurement).
    obs::SloWatch slo;
    slo.enable(65, 0);
    slo.set_limits(3, {10'000'000'000ULL, 1'000'000});
    const std::uint64_t per_rot = std::max<std::uint64_t>(1, n_obs / n_rot);
    sim::Time model_now = 0;
    const double t_obs = min_seconds(7, [&]() {
        for (std::uint64_t i = 0; i < n_obs; ++i) {
            slo.observe_ok(3, 100'000 + (i & 1023), 2'000 + (i & 255),
                           1'000, 97'000 + (i & 1023));
            if ((i + 1) % per_rot == 0)
                slo.rotate(model_now += 20'000'000);
        }
        slo.rotate(model_now += 20'000'000);
    });

    obs::FlightRecorder flight;
    flight.enable(65);
    const double t_flight = min_seconds(7, [&]() {
        for (std::uint64_t i = 0; i < n_flight; ++i) {
            flight.record(3, static_cast<obs::FlightEventType>(i % 3),
                          static_cast<sim::Time>(i),
                          static_cast<std::uint32_t>(i), i * 8, 0);
        }
    });

    // Sampler cost over the bed's real registry, so snapshot size
    // matches what the armed controller pays every tick.
    obs::TimeSeriesSampler sampler(bed->controller().counters());
    constexpr int kSampleBurst = 64;
    const double t_sample = min_seconds(7, [&]() {
        for (int i = 0; i < kSampleBurst; ++i)
            sampler.sample(static_cast<sim::Time>(i));
    });

    // Fastest off rep = smallest denominator = most conservative gate.
    const double off_best = *std::max_element(base.begin(), base.end());
    const double off_s = static_cast<double>(attempt.off_events) / off_best;
    const double plane_s =
        t_obs + t_flight +
        static_cast<double>(n_samp) * (t_sample / kSampleBurst);
    attempt.modeled_ratio = off_s / (off_s + plane_s);
    attempt.obs_ns = t_obs * 1e9 / std::max<std::uint64_t>(1, n_obs);
    attempt.flight_ns =
        t_flight * 1e9 / std::max<std::uint64_t>(1, n_flight);
    attempt.sample_ns = t_sample * 1e9 / kSampleBurst;
    return attempt;
}

// --- Scenario 2: deterministic SLO breach isolation ------------------

struct BreachResult {
    std::uint64_t slow_breaches = 0;   ///< slow VF's stats counter
    std::uint64_t healthy_breaches = 0; ///< sum over healthy VFs + PF
    std::uint64_t directory_entries = 0;
    bool all_entries_slow = true; ///< every entry names the slow VF
    std::string metrics_json;
    std::string prometheus;
};

BreachResult
run_breach_scenario()
{
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    constexpr int kGuests = 4;
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    std::vector<pcie::FunctionId> fns;
    for (int i = 0; i < kGuests; ++i) {
        std::string path = "/slo" + std::to_string(i) + ".img";
        vms.push_back(
            bench::must(bed->create_nesc_guest(path, 4096, true), "guest"));
        fns.push_back(bench::must(bed->guest_vf(*vms.back()), "fn"));
    }
    const pcie::FunctionId slow = fns.back();

    // 1 ms windows; 200 us p99 ceiling on every tenant. Healthy VFs
    // complete 4 KiB requests in tens of microseconds; the slow one is
    // token-bucket starved to 1 MB/s, so each request queues for
    // milliseconds — an order of magnitude on either side of the line.
    bench::must_ok(bed->pf().set_obs_window(1'000'000), "obs window");
    for (const auto fn : fns)
        bench::must_ok(bed->pf().set_slo(fn, 200'000, 0), "slo");
    bench::must_ok(bed->pf().set_rate_limit(slow, 1'000'000, 4096),
                   "rate limit");

    wl::DdConfig dd;
    dd.request_bytes = 4096;
    for (int i = 0; i + 1 < kGuests; ++i) {
        dd.total_bytes = 256 << 10;
        bench::must(wl::run_dd_raw(bed->sim(), vms[i]->raw_disk(), dd),
                    "healthy dd");
    }
    dd.total_bytes = 64 << 10;
    bench::must(wl::run_dd_raw(bed->sim(), vms.back()->raw_disk(), dd),
                "slow dd");

    BreachResult result;
    result.slow_breaches = bed->controller().stats(slow).slo_breaches;
    result.healthy_breaches =
        bed->controller().stats(pcie::kPhysicalFunctionId).slo_breaches;
    for (int i = 0; i + 1 < kGuests; ++i)
        result.healthy_breaches +=
            bed->controller().stats(fns[i]).slo_breaches;
    const auto breaches = bench::must(bed->pf().slo_breaches(), "breaches");
    result.directory_entries = breaches.size();
    for (const auto &entry : breaches)
        if (entry.fn != slow)
            result.all_entries_slow = false;
    result.metrics_json = bed->controller().counters().to_json();
    result.prometheus = bed->controller().counters().to_prometheus();
    bench::must_ok(bed->pf().set_obs_window(0), "obs window off");
    return result;
}

// --- Scenario 3: postmortem capture from an induced quarantine -------

/** Raw mgmt-register write on the PF page (fatal on error). */
void
pf_write(ctrl::Controller &controller, std::uint64_t offset,
         std::uint64_t value)
{
    bench::must_ok(controller.mmio_write(0, offset, value, 8), "pf write");
}

void
pf_mgmt(ctrl::Controller &controller, ctrl::MgmtCommand command)
{
    pf_write(controller, ctrl::reg::kMgmtCommand,
             static_cast<std::uint64_t>(command));
    const auto status =
        bench::must(controller.mmio_read(0, ctrl::reg::kMgmtStatus, 4),
                    "mgmt status");
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk)) {
        std::fprintf(stderr, "FATAL: mgmt command %llu failed\n",
                     static_cast<unsigned long long>(
                         static_cast<std::uint64_t>(command)));
        std::exit(1);
    }
}

struct PostmortemResult {
    std::uint64_t postmortems = 0;
    bool quarantined = false;
    bool json_balanced = false;
    bool names_faulting_tag = false;
    std::string json;
};

PostmortemResult
run_postmortem_scenario()
{
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    auto &controller = bed->controller();
    bench::must_ok(bed->pf().set_flight_recorder(true), "flight");

    // Hand-build a VF through the raw mgmt registers so the bench has
    // byte-exact descriptor control (no sane driver submits these).
    const pcie::FunctionId fn = 1;
    auto image = bench::must(
        extent::ExtentTreeImage::build(bed->host_memory(), {{0, 64, 4096}}),
        "tree");
    pf_write(controller, ctrl::reg::kMgmtVfId, fn);
    pf_write(controller, ctrl::reg::kMgmtExtentRoot, image.root());
    pf_write(controller, ctrl::reg::kMgmtDeviceSize, 64);
    pf_mgmt(controller, ctrl::MgmtCommand::kCreateVf);

    const auto cmd_fp =
        pcie::HostRing::footprint(32, sizeof(ctrl::CommandRecord));
    const auto comp_fp =
        pcie::HostRing::footprint(64, sizeof(ctrl::CompletionRecord));
    const auto cmd_base =
        bench::must(bed->host_memory().alloc(cmd_fp, 64), "cmd ring");
    const auto comp_base =
        bench::must(bed->host_memory().alloc(comp_fp, 64), "comp ring");
    bench::must(pcie::HostRing::create(bed->host_memory(), cmd_base, 32,
                                       sizeof(ctrl::CommandRecord)),
                "cmd ring create");
    bench::must(pcie::HostRing::create(bed->host_memory(), comp_base, 64,
                                       sizeof(ctrl::CompletionRecord)),
                "comp ring create");
    bench::must_ok(
        controller.mmio_write(fn, ctrl::reg::kCmdRingBase, cmd_base, 8),
        "cmd base");
    bench::must_ok(
        controller.mmio_write(fn, ctrl::reg::kCompRingBase, comp_base, 8),
        "comp base");

    // A malformed-descriptor storm: enough bad opcodes to cross the
    // quarantine threshold, tags starting at kFirstTag so the dump
    // check can look for a specific faulting command.
    constexpr std::uint64_t kFirstTag = 101;
    const std::uint32_t storm = controller.config().quarantine_threshold;
    auto ring = bench::must(
        pcie::HostRing::attach(bed->host_memory(), cmd_base), "attach");
    for (std::uint32_t i = 0; i < storm; ++i) {
        ctrl::CommandRecord rec{};
        rec.vlba = 0;
        rec.nblocks = 1;
        rec.opcode = 99; // no such opcode: kMalformed at fetch
        rec.host_buffer = pcie::kNullHostAddr;
        rec.tag = kFirstTag + i;
        std::vector<std::byte> buf(sizeof(rec));
        std::memcpy(buf.data(), &rec, sizeof(rec));
        bench::must_ok(ring.push(buf), "push");
    }
    bench::must_ok(controller.mmio_write(fn, ctrl::reg::kDoorbell, 1, 8),
                   "doorbell");
    bed->sim().run_until_idle();

    PostmortemResult result;
    result.quarantined = controller.quarantined(fn);
    result.postmortems = bench::must(bed->pf().postmortem_count(), "count");
    result.json = bench::must(bed->pf().dump_postmortem(), "dump");

    // Structural sanity the bench can do without a JSON library; the
    // tier-2 smoke script re-parses the dumped file with python.
    long depth = 0;
    bool balanced = true;
    for (const char c : result.json) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        if (depth < 0)
            balanced = false;
    }
    result.json_balanced = balanced && depth == 0;
    const std::string tag =
        "\"tag\": " + std::to_string(kFirstTag);
    result.names_faulting_tag =
        result.json.find("\"reason\": \"quarantine\"") != std::string::npos &&
        result.json.find("\"type\": \"fault\"") != std::string::npos &&
        result.json.find(tag) != std::string::npos;
    return result;
}

void
write_artifact(const char *path, const std::string &content)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "FATAL: cannot write %s\n", path);
        std::exit(1);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path, content.size());
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A16", "always-on telemetry plane",
        "production observability contract: whole plane armed costs "
        "<= 2% events/sec, a starved tenant trips exactly its own SLO, "
        "and a quarantine leaves a parseable postmortem");

    // ---- Scenario 1: overhead --------------------------------------
    constexpr int kAttempts = 3;
    double best_ratio = 0.0;
    OverheadAttempt model; ///< first attempt carries the cost model
    OverheadAttempt shown;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        const OverheadAttempt a = run_overhead_attempt(attempt == 0);
        if (attempt == 0)
            model = a;
        if (a.ratio > best_ratio) {
            best_ratio = a.ratio;
            shown = a;
        }
        if (best_ratio >= 0.95)
            break; // comfortably inside the coarse bound; stop early
    }

    util::Table overhead({"mode", "median_kevents_s", "vs_baseline"});
    overhead.row()
        .add("telemetry plane off")
        .add(shown.base_median / 1000.0, 1)
        .add(1.0, 3);
    overhead.row()
        .add("whole plane armed")
        .add(shown.on_median / 1000.0, 1)
        .add(shown.ratio, 3);
    bench::print_table(overhead);
    std::printf("timeline check: dd simulated span identical on/off "
                "(%llu ns); plane adds %llu timer events\n",
                static_cast<unsigned long long>(shown.span),
                static_cast<unsigned long long>(shown.on_events -
                                                shown.off_events));
    std::printf("modeled plane cost: observe %.1f ns/completion, record "
                "%.1f ns/event, sample %.0f ns/tick -> events/sec ratio "
                "%.4f (gate >= 0.98)\n",
                model.obs_ns, model.flight_ns, model.sample_ns,
                model.modeled_ratio);
    std::printf("in-situ paired ratio %.4f (coarse regression bound >= "
                "0.90)\n",
                best_ratio);

    // ---- Scenario 2: breach isolation (run twice, must agree) ------
    const BreachResult first = run_breach_scenario();
    const BreachResult second = run_breach_scenario();

    util::Table breach({"run", "slow_vf_breaches", "healthy_breaches",
                        "directory_entries", "all_name_slow_vf"});
    breach.row()
        .add("1")
        .add(static_cast<double>(first.slow_breaches), 0)
        .add(static_cast<double>(first.healthy_breaches), 0)
        .add(static_cast<double>(first.directory_entries), 0)
        .add(first.all_entries_slow ? "yes" : "NO");
    breach.row()
        .add("2")
        .add(static_cast<double>(second.slow_breaches), 0)
        .add(static_cast<double>(second.healthy_breaches), 0)
        .add(static_cast<double>(second.directory_entries), 0)
        .add(second.all_entries_slow ? "yes" : "NO");
    bench::print_table(breach);

    // ---- Scenario 3: postmortem capture ----------------------------
    const PostmortemResult pm = run_postmortem_scenario();
    std::printf("postmortem: quarantined=%s retained=%llu json=%zu bytes "
                "balanced=%s names_faulting_tag=%s\n",
                pm.quarantined ? "yes" : "NO",
                static_cast<unsigned long long>(pm.postmortems),
                pm.json.size(), pm.json_balanced ? "yes" : "NO",
                pm.names_faulting_tag ? "yes" : "NO");

    // Artifacts for the tier-2 observability smoke (validated there
    // with a real JSON parser and a Prometheus exposition check).
    write_artifact("BENCH_A16_SLO_metrics.json", first.metrics_json);
    write_artifact("BENCH_A16_SLO_metrics.prom", first.prometheus);
    write_artifact("BENCH_A16_SLO_postmortem.json", pm.json);

    bench::emit_bench_json(
        "BENCH_A16_SLO.json", 10, "always-on telemetry plane",
        {{"obs_on_events_ratio", model.modeled_ratio, true},
         {"obs_in_situ_ratio", best_ratio, true},
         {"slow_vf_breaches", static_cast<double>(first.slow_breaches),
          true},
         {"healthy_vf_breaches",
          static_cast<double>(first.healthy_breaches), false},
         {"postmortems_captured", static_cast<double>(pm.postmortems),
          true}});

    bool failed = false;
    if (model.modeled_ratio < 0.98) {
        std::fprintf(stderr,
                     "FATAL: always-on telemetry costs >2%%: modeled "
                     "ratio %.4f (observe %.1f ns, record %.1f ns, "
                     "sample %.0f ns)\n",
                     model.modeled_ratio, model.obs_ns, model.flight_ns,
                     model.sample_ns);
        failed = true;
    }
    if (best_ratio < 0.90) {
        std::fprintf(stderr,
                     "FATAL: telemetry plane in-situ regression: best "
                     "paired ratio %.4f\n",
                     best_ratio);
        failed = true;
    }
    if (first.slow_breaches == 0 || !first.all_entries_slow ||
        first.healthy_breaches != 0) {
        std::fprintf(stderr,
                     "FATAL: SLO breach fidelity: slow=%llu healthy=%llu "
                     "all_slow=%d\n",
                     static_cast<unsigned long long>(first.slow_breaches),
                     static_cast<unsigned long long>(
                         first.healthy_breaches),
                     first.all_entries_slow ? 1 : 0);
        failed = true;
    }
    if (first.slow_breaches != second.slow_breaches ||
        first.directory_entries != second.directory_entries) {
        std::fprintf(stderr,
                     "FATAL: breach scenario nondeterministic: "
                     "%llu/%llu vs %llu/%llu\n",
                     static_cast<unsigned long long>(first.slow_breaches),
                     static_cast<unsigned long long>(
                         first.directory_entries),
                     static_cast<unsigned long long>(second.slow_breaches),
                     static_cast<unsigned long long>(
                         second.directory_entries));
        failed = true;
    }
    if (!pm.quarantined || pm.postmortems == 0 || !pm.json_balanced ||
        !pm.names_faulting_tag) {
        std::fprintf(stderr, "FATAL: postmortem capture incomplete\n");
        failed = true;
    }
    if (failed)
        return 1;

    std::printf("\nalways-on telemetry within 2%% (modeled %.4f, "
                "in-situ %.4f); breach isolation exact; postmortem "
                "names the faulting command\n",
                model.modeled_ratio, best_ratio);
    bench::print_event_rate();
    return 0;
}
