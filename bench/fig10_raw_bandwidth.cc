/**
 * @file
 * Figure 10: raw device bandwidth for read (top) and write (bottom)
 * across request sizes 512 B – 32 KiB, plus the large-block (>= 2 MiB)
 * series where NeSC and virtio converge.
 */
#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

void
run_direction(bool write, const std::vector<std::uint64_t> &sizes,
              std::uint64_t per_size_bytes, virt::Testbed &bed,
              virt::GuestVm &nesc_vm, virt::GuestVm &virtio_vm,
              virt::GuestVm &emu_vm)
{
    util::Table table({"block_size", "host_MB_s", "nesc_MB_s",
                       "virtio_MB_s", "emulation_MB_s", "nesc/virtio"});
    for (std::uint64_t bs : sizes) {
        wl::DdConfig dd;
        dd.request_bytes = bs;
        dd.total_bytes = std::max<std::uint64_t>(per_size_bytes, 4 * bs);
        dd.write = write;

        auto host =
            bench::must(wl::run_dd_raw(bed.sim(), bed.host_raw_io(), dd),
                        "host dd");
        auto nesc_r = bench::must(
            wl::run_dd_raw(bed.sim(), nesc_vm.raw_disk(), dd), "nesc dd");
        dd.start_offset = (bed.device().geometry().num_blocks() - 32768) *
                          ctrl::kDeviceBlockSize;
        auto virtio = bench::must(
            wl::run_dd_raw(bed.sim(), virtio_vm.raw_disk(), dd),
            "virtio dd");
        auto emu = bench::must(
            wl::run_dd_raw(bed.sim(), emu_vm.raw_disk(), dd), "emu dd");

        table.row()
            .add(bs)
            .add(host.bandwidth_mb_s, 1)
            .add(nesc_r.bandwidth_mb_s, 1)
            .add(virtio.bandwidth_mb_s, 1)
            .add(emu.bandwidth_mb_s, 1)
            .add(nesc_r.bandwidth_mb_s / virtio.bandwidth_mb_s);
    }
    std::printf("--- %s bandwidth ---\n", write ? "write" : "read");
    bench::print_table(table);
}

} // namespace

int
main()
{
    bench::print_header(
        "Figure 10", "raw bandwidth vs. request size",
        "NeSC close to Host everywhere; >2.5x virtio for <16 KiB reads "
        "and >3x for 32 KiB writes; NeSC and virtio converge for very "
        "large (>=2 MiB) reads");

    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    auto nesc_vm = bench::must(
        bed->create_nesc_guest("/images/fig10.img", 65536, true),
        "nesc guest");
    auto virtio_vm =
        bench::must(bed->create_virtio_guest_raw(), "virtio guest");
    auto emu_vm =
        bench::must(bed->create_emulated_guest_raw(), "emulated guest");

    const std::vector<std::uint64_t> small = {512,  1024, 2048, 4096,
                                              8192, 16384, 32768};
    run_direction(false, small, 2ULL << 20, *bed, *nesc_vm, *virtio_vm,
                  *emu_vm);
    run_direction(true, small, 2ULL << 20, *bed, *nesc_vm, *virtio_vm,
                  *emu_vm);

    std::printf("--- large-block convergence (read) ---\n");
    const std::vector<std::uint64_t> large = {262144, 1048576, 2097152,
                                              4194304};
    run_direction(false, large, 16ULL << 20, *bed, *nesc_vm, *virtio_vm,
                  *emu_vm);
    return 0;
}
