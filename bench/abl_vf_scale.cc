/**
 * @file
 * Ablation A20: VF-plane scale sweep — 256 VFs under hierarchical
 * DWRR arbitration (PR 8 tentpole).
 *
 * Two phases:
 *
 *  - reference: the PR 6 workload (8 VFs, QD16, random 4 KiB reads,
 *    legacy round robin) rerun on the queue-pair controller. Its
 *    host-side events/s is the no-regression anchor the perf smoke
 *    script compares against BENCH_PR6.json, and its BTLB/walker hit
 *    rates are the translation baseline the scale phase must match.
 *
 *  - scale: one weight-16 tenant (4 queue pairs, QD32) against 255
 *    weight-1 tenants (QD4 each) with DWRR arbitration, all
 *    closed-loop saturating. Gates (in-binary, deterministic): every
 *    tenant's measured service share within 5% of its weight-ideal
 *    share, bounded p99 completion latency for the heavy tenant, and
 *    BTLB/walker hit rates within 10 points of the reference phase.
 *
 * Translation structures are provisioned proportionally to the VF
 * count in both phases (2 BTLB entries and 8 KiB of node-cache SRAM
 * per VF, 8-way sets) so the hit-rate comparison isolates the scale
 * fast path rather than an undersized cache.
 *
 * Wall-clock events/s floors live in scripts/tier2_perf_smoke.sh (as
 * for PR 6); `--vfs N` shrinks the scale phase for sanitizer runs.
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "drivers/function_driver.h"
#include "util/rng.h"

using namespace nesc;

namespace {

constexpr std::uint32_t kRefVfs = 8;
constexpr std::uint32_t kRefQueueDepth = 16;
constexpr std::uint64_t kRefGuestBlocks = 8192;
constexpr sim::Duration kRefRunNs = 100 * sim::kMs;

constexpr std::uint32_t kScaleVfsDefault = 256;
constexpr std::uint64_t kScaleGuestBlocks = 2048;
constexpr std::uint32_t kHeavyWeight = 16;
constexpr std::uint32_t kHeavyQueuePairs = 4;
constexpr std::uint32_t kHeavyQueueDepth = 32;
constexpr std::uint32_t kTenantQueueDepth = 4;
constexpr sim::Duration kScaleWarmupNs = 10 * sim::kMs;
constexpr sim::Duration kScaleMeasureNs = 150 * sim::kMs;
/** Weight-ideal tolerance (relative) and hit-rate tolerance (points). */
constexpr double kShareTolerance = 0.05;
constexpr double kHitRateTolerance = 0.10;
/** Starvation blows far past this; DWRR keeps the heavy tenant well
 * under it (observed ~1-2 ms at 256 VFs). */
constexpr double kHeavyP99BoundMs = 10.0;

int g_gate_failures = 0;

void
gate(bool ok, const std::string &what)
{
    std::printf("[gate] %-4s %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok)
        ++g_gate_failures;
}

/**
 * Proportional translation provisioning; see file comment. The BTLB
 * stays in the paper's fully-associative mode: one entry covers a
 * whole cached extent, so capacity demand scales with live extents
 * (~1 per preallocated volume), not with address granules.
 */
void
scale_translation(virt::TestbedConfig &config, std::uint32_t vfs)
{
    config.controller.btlb_entries = 2 * vfs;
    config.controller.node_cache_bytes = 8192ULL * vfs;
}

struct PhaseStats {
    std::uint64_t completed = 0;
    std::uint64_t events = 0;
    double events_per_sec = 0.0;
    double btlb_hit_rate = 0.0;
    /** node-cache hit rate; -1 when too few walks to be meaningful. */
    double walker_hit_rate = -1.0;
};

void
read_translation_rates(virt::Testbed &bed, PhaseStats &stats)
{
    stats.btlb_hit_rate = bed.controller().btlb().hit_rate();
    const auto &counters = bed.controller().counters();
    const std::uint64_t hits = counters.get("node_cache_hits");
    const std::uint64_t misses = counters.get("node_cache_misses");
    if (hits + misses >= 64)
        stats.walker_hit_rate = static_cast<double>(hits) /
                                static_cast<double>(hits + misses);
}

/** The PR 6 steady workload: 8 equal VFs at QD16, legacy WRR. */
PhaseStats
run_reference()
{
    virt::TestbedConfig config = bench::default_config();
    scale_translation(config, kRefVfs);
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    std::vector<std::unique_ptr<drv::FunctionDriver>> drivers;
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    std::vector<pcie::HostAddr> buffers;
    for (std::uint32_t i = 0; i < kRefVfs; ++i) {
        std::string img = "/a20r_" + std::to_string(i) + ".img";
        auto vm = bench::must(
            bed->create_nesc_guest(img, kRefGuestBlocks, true), "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "fn");
        auto driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(driver->init(), "driver");
        drivers.push_back(std::move(driver));
        buffers.push_back(bench::must(
            bed->host_memory().alloc(4096ULL * kRefQueueDepth, 64),
            "buffer"));
        vms.push_back(std::move(vm));
    }

    util::Rng rng(1847);
    PhaseStats stats;
    const sim::Time deadline = bed->sim().now() + kRefRunNs;
    std::function<void(std::uint32_t, std::uint32_t)> submit =
        [&](std::uint32_t vf, std::uint32_t slot) {
            if (bed->sim().now() >= deadline)
                return;
            bench::must_ok(
                drivers[vf]->submit(
                    ctrl::Opcode::kRead,
                    rng.next_below(kRefGuestBlocks - 4), 4,
                    buffers[vf] + slot * 4096,
                    [&, vf, slot](ctrl::CompletionStatus) {
                        ++stats.completed;
                        submit(vf, slot);
                    }),
                "submit");
        };

    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t events_start = bed->sim().events_executed();
    for (std::uint32_t vf = 0; vf < kRefVfs; ++vf)
        for (std::uint32_t slot = 0; slot < kRefQueueDepth; ++slot)
            submit(vf, slot);
    bed->sim().run_until(deadline);
    bed->sim().run_until_idle();
    stats.events = bed->sim().events_executed() - events_start;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    stats.events_per_sec =
        wall_s > 0 ? static_cast<double>(stats.events) / wall_s : 0.0;
    read_translation_rates(*bed, stats);
    return stats;
}

struct ScaleResult {
    PhaseStats stats;
    std::uint32_t vfs = 0;
    double heavy_share = 0.0;
    double heavy_ideal = 0.0;
    double heavy_share_err = 0.0; ///< relative error vs weight-ideal
    double tenant_share_max_err = 0.0;
    std::uint64_t tenant_min_ios = 0;
    std::uint64_t tenant_max_ios = 0;
    double heavy_p50_ms = 0.0;
    double heavy_p99_ms = 0.0;
};

/** One weight-16 / 4-QP tenant vs (vfs-1) weight-1 tenants, DWRR. */
ScaleResult
run_scale(std::uint32_t vfs)
{
    virt::TestbedConfig config = bench::default_config();
    config.controller.max_vfs = static_cast<std::uint16_t>(vfs);
    scale_translation(config, vfs);
    // 2 MiB of data per guest plus hypervisor-FS metadata headroom.
    config.device.capacity_bytes =
        vfs * (kScaleGuestBlocks * 1024ULL) + (128ULL << 20);
    auto bed = bench::must(virt::Testbed::create(config), "testbed");
    bench::must_ok(bed->pf().set_arb_mode(ctrl::ArbMode::kDwrr), "mode");
    // Quantum 4 blocks = exactly one 4-block request per weight unit
    // per round: service is proportional at round granularity.
    bench::must_ok(bed->pf().set_arb_quantum(4), "quantum");

    struct Tenant {
        std::unique_ptr<drv::FunctionDriver> driver;
        pcie::HostAddr buffer;
        std::uint64_t completed = 0;
        std::uint64_t warm_completed = 0;
        util::Rng rng{0};
    };
    std::vector<Tenant> tenants(vfs);
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    const sim::Time warmup_at = bed->sim().now() + kScaleWarmupNs;

    for (std::uint32_t i = 0; i < vfs; ++i) {
        const bool heavy = i == 0;
        std::string img = "/a20s_" + std::to_string(i) + ".img";
        auto vm = bench::must(
            bed->create_nesc_guest(img, kScaleGuestBlocks, true),
            "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "vf");
        drv::FunctionDriverConfig drv_config = bed->config().vf_driver;
        if (heavy) {
            bench::must_ok(bed->pf().set_qp_quota(fn, kHeavyQueuePairs),
                           "quota");
            bench::must_ok(bed->pf().set_qos_weight(fn, kHeavyWeight),
                           "weight");
            drv_config.queue_pairs = kHeavyQueuePairs;
        }
        tenants[i].driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            drv_config);
        bench::must_ok(tenants[i].driver->init(), "driver");
        const std::uint32_t qd =
            heavy ? kHeavyQueueDepth : kTenantQueueDepth;
        tenants[i].buffer = bench::must(
            bed->host_memory().alloc(4096ULL * qd, 64), "buffer");
        tenants[i].rng = util::Rng(1000 + i);
        vms.push_back(std::move(vm));
    }

    ScaleResult result;
    result.vfs = vfs;
    std::vector<sim::Duration> heavy_latencies;
    const sim::Time deadline = warmup_at + kScaleMeasureNs;
    std::function<void(std::uint32_t, std::uint32_t)> submit =
        [&](std::uint32_t i, std::uint32_t slot) {
            Tenant &t = tenants[i];
            if (bed->sim().now() >= deadline)
                return;
            const sim::Time issued = bed->sim().now();
            bench::must_ok(
                t.driver->submit(
                    ctrl::Opcode::kRead,
                    t.rng.next_below(kScaleGuestBlocks - 4), 4,
                    t.buffer + slot * 4096,
                    [&, i, slot, issued](ctrl::CompletionStatus) {
                        ++tenants[i].completed;
                        if (i == 0 && bed->sim().now() >= warmup_at)
                            heavy_latencies.push_back(bed->sim().now() -
                                                      issued);
                        submit(i, slot);
                    }),
                "submit");
        };

    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t events_start = bed->sim().events_executed();
    for (std::uint32_t i = 0; i < vfs; ++i) {
        const std::uint32_t qd =
            i == 0 ? kHeavyQueueDepth : kTenantQueueDepth;
        for (std::uint32_t slot = 0; slot < qd; ++slot)
            submit(i, slot);
    }
    // Warmup absorbs the start-of-run transient (cold BTLB, deficit
    // counters banking up); shares are measured from here.
    bed->sim().run_until(warmup_at);
    for (Tenant &t : tenants)
        t.warm_completed = t.completed;
    bed->sim().run_until(deadline);
    bed->sim().run_until_idle();

    result.stats.events = bed->sim().events_executed() - events_start;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    result.stats.events_per_sec =
        wall_s > 0 ? static_cast<double>(result.stats.events) / wall_s
                   : 0.0;
    read_translation_rates(*bed, result.stats);

    std::uint64_t total = 0;
    for (const Tenant &t : tenants) {
        result.stats.completed += t.completed;
        total += t.completed - t.warm_completed;
    }
    const double weight_sum =
        static_cast<double>(kHeavyWeight + (vfs - 1));
    result.heavy_ideal = kHeavyWeight / weight_sum;
    const double ideal1 = 1.0 / weight_sum;
    result.tenant_min_ios = ~0ULL;
    for (std::uint32_t i = 0; i < vfs; ++i) {
        const std::uint64_t measured =
            tenants[i].completed - tenants[i].warm_completed;
        const double share =
            static_cast<double>(measured) / static_cast<double>(total);
        if (i == 0) {
            result.heavy_share = share;
            result.heavy_share_err =
                std::abs(share / result.heavy_ideal - 1.0);
        } else {
            result.tenant_share_max_err = std::max(
                result.tenant_share_max_err,
                std::abs(share / ideal1 - 1.0));
            result.tenant_min_ios =
                std::min(result.tenant_min_ios, measured);
            result.tenant_max_ios =
                std::max(result.tenant_max_ios, measured);
        }
    }

    std::sort(heavy_latencies.begin(), heavy_latencies.end());
    if (!heavy_latencies.empty()) {
        const std::size_t n = heavy_latencies.size();
        result.heavy_p50_ms =
            static_cast<double>(heavy_latencies[n / 2]) / 1e6;
        result.heavy_p99_ms =
            static_cast<double>(
                heavy_latencies[(n - 1) - (n - 1) / 100]) /
            1e6;
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t scale_vfs = kScaleVfsDefault;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--vfs") == 0)
            scale_vfs = static_cast<std::uint32_t>(
                std::max(9L, std::min(256L, std::atol(argv[i + 1]))));

    bench::print_header(
        "Ablation A20",
        "VF-plane scale: " + std::to_string(scale_vfs) +
            " VFs, queue pairs + hierarchical DWRR",
        "scale study: one weight-16 tenant among weight-1 tenants gets "
        "its weighted share with bounded p99, and translation hit "
        "rates match the 8-VF configuration");

    const PhaseStats ref = run_reference();
    const ScaleResult scale = run_scale(scale_vfs);

    util::Table table({"phase", "vfs", "completed_ios", "sim_events",
                       "kevents_s", "btlb_hit_rate", "walker_hit_rate"});
    table.row()
        .add("reference")
        .add(std::uint64_t(kRefVfs))
        .add(ref.completed)
        .add(ref.events)
        .add(ref.events_per_sec / 1000.0, 0)
        .add(ref.btlb_hit_rate, 3)
        .add(ref.walker_hit_rate, 3);
    table.row()
        .add("scale")
        .add(std::uint64_t(scale.vfs))
        .add(scale.stats.completed)
        .add(scale.stats.events)
        .add(scale.stats.events_per_sec / 1000.0, 0)
        .add(scale.stats.btlb_hit_rate, 3)
        .add(scale.stats.walker_hit_rate, 3);
    bench::print_table(table);

    std::printf("heavy tenant: share %.4f (ideal %.4f, err %.2f%%), "
                "p50 %.3f ms, p99 %.3f ms\n",
                scale.heavy_share, scale.heavy_ideal,
                100.0 * scale.heavy_share_err, scale.heavy_p50_ms,
                scale.heavy_p99_ms);
    std::printf("weight-1 tenants: measured IOs [%llu, %llu], max "
                "share err %.2f%%\n",
                static_cast<unsigned long long>(scale.tenant_min_ios),
                static_cast<unsigned long long>(scale.tenant_max_ios),
                100.0 * scale.tenant_share_max_err);
    bench::print_event_rate();

    gate(scale.heavy_share_err <= kShareTolerance,
         "heavy tenant share within 5% of weight-ideal");
    gate(scale.tenant_share_max_err <= kShareTolerance,
         "every weight-1 tenant within 5% of weight-ideal");
    gate(scale.heavy_p99_ms > 0.0 &&
             scale.heavy_p99_ms <= kHeavyP99BoundMs,
         "heavy tenant p99 bounded");
    gate(std::abs(scale.stats.btlb_hit_rate - ref.btlb_hit_rate) <=
             kHitRateTolerance,
         "BTLB hit rate within 10 points of the 8-VF reference");
    gate(ref.walker_hit_rate < 0.0 || scale.stats.walker_hit_rate < 0.0 ||
             std::abs(scale.stats.walker_hit_rate -
                      ref.walker_hit_rate) <= kHitRateTolerance,
         "walker hit rate within 10 points of the 8-VF reference");

    bench::emit_bench_json(
        "BENCH_PR8.json", 8,
        "VF-plane scale: per-VF queue pairs + hierarchical DWRR (one "
        "weight-16 tenant vs weight-1 tenants, closed loop)",
        {
            {"ref_events_per_sec", ref.events_per_sec, true},
            {"ref_completed_ios", static_cast<double>(ref.completed),
             true},
            {"ref_btlb_hit_rate", ref.btlb_hit_rate, true},
            {"scale_vfs", static_cast<double>(scale.vfs), true},
            {"scale_events_per_sec", scale.stats.events_per_sec, true},
            {"scale_completed_ios",
             static_cast<double>(scale.stats.completed), true},
            {"scale_btlb_hit_rate", scale.stats.btlb_hit_rate, true},
            {"heavy_share_err", scale.heavy_share_err, false},
            {"tenant_share_max_err", scale.tenant_share_max_err, false},
            {"heavy_p99_ms", scale.heavy_p99_ms, false},
        });

    if (g_gate_failures != 0) {
        std::printf("\nabl_vf_scale: %d gate(s) FAILED\n",
                    g_gate_failures);
        return 1;
    }
    std::printf("\nabl_vf_scale: all gates passed\n");
    return 0;
}
