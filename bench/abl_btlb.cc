/**
 * @file
 * Ablation A1: value of the BTLB.
 *
 * The paper's translation unit caches the last 8 extents (§V.B).
 * This bench sweeps the BTLB capacity (0 disables it) on a guest
 * whose backing file is fragmented into 64-block extents, so
 * translations exhibit the spatial locality the BTLB exploits: one
 * cached extent serves the next 64 sequential blocks. Expected shape:
 * without the BTLB every block walks the tree; one entry already
 * recovers nearly all of it for sequential access. As a control, the
 * same sweep over a single-block-extent file shows the BTLB cannot
 * help when there is no extent locality.
 */
#include "bench/common.h"
#include "util/rng.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

/**
 * Creates a backing file whose allocation interleaves with a decoy in
 * runs of @p run_blocks, producing extents of exactly that length.
 */
fs::InodeId
make_fragmented_file(virt::Testbed &bed, const std::string &path,
                     std::uint64_t blocks, std::uint64_t run_blocks)
{
    auto &fs = bed.hv_fs();
    auto ino = bench::must(fs.create(path, 0644), "create");
    auto decoy = bench::must(fs.create(path + ".decoy", 0644), "decoy");
    for (std::uint64_t vb = 0; vb < blocks; vb += run_blocks) {
        const std::uint64_t n = std::min(run_blocks, blocks - vb);
        bench::must_ok(fs.allocate_range(ino, vb, n), "alloc");
        bench::must_ok(fs.allocate_range(decoy, vb, n), "alloc decoy");
    }
    return ino;
}

void
sweep(std::uint64_t run_blocks, const char *label)
{
    std::printf("--- extent length: %llu blocks (%s) ---\n",
                static_cast<unsigned long long>(run_blocks), label);
    util::Table table({"btlb_entries", "seq_read_MB_s", "rand_read_us",
                       "btlb_hit_rate", "walks_per_block"});
    for (std::uint32_t entries : {0u, 1u, 2u, 8u, 64u}) {
        virt::TestbedConfig config = bench::default_config();
        config.controller.btlb_entries = entries;
        config.pf.tree.fanout = 16;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");

        const std::uint64_t blocks = 4096;
        make_fragmented_file(*bed, "/frag.img", blocks, run_blocks);
        auto vm = bench::must(bed->create_nesc_guest("/frag.img", blocks),
                              "guest");

        wl::DdConfig dd;
        dd.request_bytes = 4096;
        dd.total_bytes = 4ULL << 20;
        auto seq = bench::must(
            wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd), "seq dd");

        util::Rng rng(1);
        std::vector<std::byte> buf(1024);
        const sim::Time rand_start = bed->sim().now();
        const std::uint32_t rand_ops = 256;
        for (std::uint32_t i = 0; i < rand_ops; ++i) {
            bench::must_ok(vm->raw_disk().read_blocks(
                               rng.next_below(blocks), 1, buf),
                           "rand read");
        }
        const double rand_us =
            util::ns_to_us(bed->sim().now() - rand_start) / rand_ops;

        const auto &counters = bed->controller().counters();
        const std::uint64_t vf_blocks =
            bed->controller().stats(1).blocks_read;
        table.row()
            .add(entries)
            .add(seq.bandwidth_mb_s, 1)
            .add(rand_us, 1)
            .add(bed->controller().btlb().hit_rate(), 3)
            .add(vf_blocks ? static_cast<double>(
                                 counters.get("walk_node_reads")) /
                                 static_cast<double>(vf_blocks)
                           : 0.0,
                 2);
    }
    bench::print_table(table);
}

/**
 * Associativity x capacity sweep: fully-associative FIFO (the paper's
 * organisation, O(capacity) lookup) against the set-associative pLRU
 * fast path (O(ways) lookup). Random single-block reads over a file of
 * @p extent_count extents, so the extent working set exceeds the small
 * configurations. The interesting columns: at 64+ entries the SA
 * organisation matches or beats FA hit rate while its mean probe
 * length stays bounded by the way count.
 */
void
assoc_sweep(std::uint64_t extent_count)
{
    std::printf("--- organisation sweep: %llu-extent working set ---\n",
                static_cast<unsigned long long>(extent_count));
    util::Table table({"org", "capacity", "hit_rate", "mean_probe",
                       "rand_read_us"});
    const std::uint64_t run_blocks = 64;
    const std::uint64_t blocks = extent_count * run_blocks;
    struct Org {
        std::string label;
        std::uint32_t entries;
        std::uint32_t sets;
    };
    std::vector<Org> orgs;
    for (std::uint32_t cap : {8u, 16u, 64u, 256u}) {
        orgs.push_back({"FA-" + std::to_string(cap), cap, 0});
        orgs.push_back({"SA-" + std::to_string(cap / 4) + "x4", cap,
                        cap / 4});
    }
    for (const Org &org : orgs) {
        virt::TestbedConfig config = bench::default_config();
        config.controller.btlb_entries = org.entries;
        config.controller.btlb_sets = org.sets;
        // Granule = extent length, so one extent maps to one set.
        config.controller.btlb_range_shift = 6;
        config.pf.tree.fanout = 16;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");
        make_fragmented_file(*bed, "/assoc.img", blocks, run_blocks);
        auto vm = bench::must(bed->create_nesc_guest("/assoc.img", blocks),
                              "guest");

        util::Rng rng(7);
        std::vector<std::byte> buf(1024);
        const std::uint32_t ops = 4096;
        const sim::Time start = bed->sim().now();
        for (std::uint32_t i = 0; i < ops; ++i) {
            bench::must_ok(vm->raw_disk().read_blocks(
                               rng.next_below(blocks), 1, buf),
                           "rand read");
        }
        const auto &btlb = bed->controller().btlb();
        table.row()
            .add(org.label)
            .add(btlb.capacity())
            .add(btlb.hit_rate(), 3)
            .add(btlb.mean_probe_length(), 2)
            .add(util::ns_to_us(bed->sim().now() - start) / ops, 2);
    }
    bench::print_table(table);
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A1", "BTLB capacity sweep on fragmented virtual disks",
        "design-choice study beyond the paper's figures: the 8-entry "
        "BTLB recovers nearly all translation cost when extents have "
        "locality; it cannot help on single-block extents");

    sweep(64, "BTLB-friendly");
    sweep(1, "control: no extent locality");
    assoc_sweep(64);
    assoc_sweep(128);
    bench::print_event_rate();
    return 0;
}
