/**
 * @file
 * Ablation A6: pruned-subtree faults.
 *
 * Under host memory pressure the hypervisor may prune parts of a VF's
 * extent tree; the device then faults on access and the hypervisor
 * regenerates the mapping (paper §IV.B). This bench prunes a region,
 * measures the first (faulting) access against steady-state accesses,
 * and reports the fault counts.
 */
#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A6", "pruned extent-subtree fault and regeneration",
        "flow study (paper Fig. 5a): a pruned access interrupts the "
        "hypervisor once, then the rebuilt tree serves at full speed");

    virt::TestbedConfig config = bench::default_config();
    config.pf.tree.fanout = 8; // deeper tree => prunable subtrees
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    // Fragment the file so the tree has internal levels.
    auto &fs = bed->hv_fs();
    const std::uint64_t blocks = 2048;
    auto ino = bench::must(fs.create("/prune.img", 0644), "create");
    auto decoy = bench::must(fs.create("/decoy", 0644), "decoy");
    for (std::uint64_t vb = 0; vb < blocks; vb += 4) {
        bench::must_ok(fs.allocate_range(ino, vb, 4), "alloc");
        bench::must_ok(fs.allocate_range(decoy, vb, 4), "alloc");
    }
    auto vm =
        bench::must(bed->create_nesc_guest("/prune.img", blocks), "guest");
    auto fn = bench::must(bed->guest_vf(*vm), "vf");

    // Warm access, then prune the middle half of the tree.
    std::vector<std::byte> buf(1024);
    bench::must_ok(vm->raw_disk().read_blocks(blocks / 2, 1, buf), "warm");
    auto tree_before =
        bench::must(bed->pf().vf_tree(fn), "tree")->num_nodes();
    auto pruned = bench::must(
        bed->pf().prune_vf_tree(fn, blocks / 4, blocks / 2), "prune");
    auto tree_after =
        bench::must(bed->pf().vf_tree(fn), "tree")->num_nodes();
    // Pruned mappings may linger in the BTLB; flush as the hypervisor
    // must when it invalidates mappings.
    bench::must_ok(bed->pf().flush_btlb(), "flush");

    // Faulting access.
    sim::Time t0 = bed->sim().now();
    bench::must_ok(vm->raw_disk().read_blocks(blocks / 2, 1, buf),
                   "faulting read");
    const double fault_us = util::ns_to_us(bed->sim().now() - t0);

    // Steady-state access after regeneration.
    t0 = bed->sim().now();
    bench::must_ok(vm->raw_disk().read_blocks(blocks / 2 + 64, 1, buf),
                   "steady read");
    const double steady_us = util::ns_to_us(bed->sim().now() - t0);

    util::Table table({"metric", "value"});
    table.row().add("subtrees pruned").add(
        static_cast<std::uint64_t>(pruned));
    table.row().add("resident nodes before/after prune").add(
        std::to_string(tree_before) + " -> " + std::to_string(tree_after));
    table.row().add("prune faults serviced").add(
        bed->pf().prune_faults_serviced());
    table.row().add("faulting access latency (us)").add(fault_us, 1);
    table.row().add("steady-state access latency (us)").add(steady_us, 1);
    table.row().add("fault/steady ratio").add(fault_us / steady_us);
    bench::print_table(table);
    return 0;
}
