/**
 * @file
 * Ablation A3: extent-tree depth.
 *
 * The paper's key argument for extent trees is that their depth
 * adapts to the mapping (§IV.B): a contiguous file maps with a single
 * extent while a fragmented file needs a deeper tree. This bench
 * fixes the file fragmentation and sweeps the node fanout, changing
 * the resident tree depth, then measures uncached (BTLB-off) random
 * read latency and the DMA node reads per translation.
 */
#include "bench/common.h"
#include "util/rng.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A3", "extent-tree depth vs. translation latency",
        "design-choice study: each extra tree level adds one node DMA "
        "to an uncached translation; extents keep trees shallow");

    util::Table table({"fanout", "tree_depth", "resident_nodes",
                       "walks_node_reads_per_op", "rand_read_us"});
    for (std::uint32_t fanout : {4u, 8u, 16u, 64u, 256u}) {
        virt::TestbedConfig config = bench::default_config();
        config.controller.btlb_entries = 0;
        config.pf.tree.fanout = fanout;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");

        // Fragment the backing file into single-block extents.
        auto &fs = bed->hv_fs();
        const std::uint64_t blocks = 2048;
        auto ino = bench::must(fs.create("/deep.img", 0644), "create");
        auto decoy = bench::must(fs.create("/decoy", 0644), "decoy");
        for (std::uint64_t vb = 0; vb < blocks; vb += 2) {
            bench::must_ok(fs.allocate_range(ino, vb, 2), "alloc");
            bench::must_ok(fs.allocate_range(decoy, vb, 2), "alloc");
        }
        auto vm = bench::must(bed->create_nesc_guest("/deep.img", blocks),
                              "guest");

        util::Rng rng(5);
        std::vector<std::byte> buf(1024);
        const std::uint32_t ops = 400;
        const std::uint64_t node_reads_before =
            bed->controller().counters().get("walk_node_reads");
        const sim::Time start = bed->sim().now();
        for (std::uint32_t i = 0; i < ops; ++i) {
            bench::must_ok(vm->raw_disk().read_blocks(
                               rng.next_below(blocks), 1, buf),
                           "read");
        }
        const double us = util::ns_to_us(bed->sim().now() - start) / ops;
        const double reads_per_op =
            static_cast<double>(
                bed->controller().counters().get("walk_node_reads") -
                node_reads_before) /
            ops;

        // Inspect the resident tree through the PF driver's image.
        auto fn = bench::must(bed->guest_vf(*vm), "vf");
        auto root = bench::must(
            bed->controller().mmio_read(fn, ctrl::reg::kExtentTreeRoot, 8),
            "root reg");
        auto header = bench::must(
            bed->host_memory().read_pod<extent::NodeHeaderRecord>(root),
            "root header");
        auto tree = bench::must(bed->pf().vf_tree(fn), "tree image");

        table.row()
            .add(fanout)
            .add(static_cast<std::uint64_t>(header.depth))
            .add(static_cast<std::uint64_t>(tree->num_nodes()))
            .add(reads_per_op, 2)
            .add(us, 2);
    }
    bench::print_table(table);
    bench::print_event_rate();
    return 0;
}
