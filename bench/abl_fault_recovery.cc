/**
 * @file
 * Ablation A12: goodput and recovery latency vs injected error rate.
 *
 * A VF runs closed-loop (QD=1) sequential 4 KiB reads while the media
 * layer injects transient faults at a swept per-op probability. The
 * controller surfaces each fault as a media-error completion and the
 * driver retries with exponential backoff, so the questions are: how
 * much goodput survives, and what does a recovered operation cost?
 * Expected shape: goodput degrades gracefully (sub-linearly) with the
 * error rate, while recovered ops pay the retry backoff on top of a
 * clean op's latency. Robustness extension; the paper's prototype
 * (§VI) assumes fault-free media.
 */
#include "bench/common.h"

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/faulty_block_device.h"
#include "storage/mem_block_device.h"
#include "util/stats.h"

using namespace nesc;

namespace {
constexpr std::uint64_t kVfBlocks = 8192;  // 8 MiB virtual disk
constexpr std::uint32_t kOpBlocks = 4;     // 4 KiB per op
constexpr sim::Duration kWindow = 50 * sim::kMs;
} // namespace

int
main()
{
    bench::print_header(
        "Ablation A12", "fault injection: goodput vs error rate",
        "robustness extension (beyond the paper's fault-free "
        "prototype): goodput degrades gracefully with media error "
        "rate; recovered ops pay retry backoff on top of base latency");

    util::Table table({"transient_prob", "ops_ok", "ops_failed",
                       "retries", "goodput_mb_s", "clean_p50_us",
                       "recov_mean_us", "recov_p99_us"});
    std::vector<bench::BenchMetric> metrics;
    double clean_goodput = 0.0;
    for (double prob : {0.0, 1e-4, 1e-3, 1e-2, 5e-2}) {
        sim::Simulator sim;
        pcie::HostMemory host_memory(64ULL << 20);
        storage::MemBlockDevice inner(
            storage::MemBlockDeviceConfig{.capacity_bytes = 64ULL << 20});
        storage::FaultPlan plan;
        plan.seed = 42;
        plan.transient_prob = prob;
        storage::FaultyBlockDevice media(inner, plan);
        pcie::InterruptController irq(sim);
        ctrl::Controller controller(sim, host_memory, media, irq);
        pcie::BarPageRouter bar(controller, 4096,
                                controller.num_functions());

        // One VF mapped 1:1 over the first kVfBlocks physical blocks.
        auto image = bench::must(
            extent::ExtentTreeImage::build(host_memory,
                                           {{0, kVfBlocks, 0}}),
            "tree");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kMgmtVfId, 1, 8),
                       "vf id");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kMgmtExtentRoot,
                                             image.root(), 8),
                       "root");
        bench::must_ok(controller.mmio_write(0, ctrl::reg::kMgmtDeviceSize,
                                             kVfBlocks, 8),
                       "size");
        bench::must_ok(
            controller.mmio_write(
                0, ctrl::reg::kMgmtCommand,
                static_cast<std::uint64_t>(ctrl::MgmtCommand::kCreateVf),
                8),
            "create vf");

        drv::FunctionDriver driver(sim, host_memory, bar, irq, 1,
                                   drv::FunctionDriverConfig{});
        bench::must_ok(driver.init(), "driver");
        const pcie::HostAddr buffer = bench::must(
            host_memory.alloc(kOpBlocks * ctrl::kDeviceBlockSize, 64),
            "buffer");

        // Closed loop at QD=1: with one op in flight, any retry the
        // driver took between submit and completion belongs to this
        // op, so recovery latency attribution is exact.
        std::uint64_t ops_ok = 0, ops_failed = 0, next_vlba = 0;
        util::Sampler clean_lat, recov_lat;
        const sim::Time deadline = sim.now() + kWindow;
        std::function<void()> submit = [&]() {
            if (sim.now() >= deadline)
                return;
            const sim::Time t0 = sim.now();
            const std::uint64_t retries_before = driver.retries();
            const std::uint64_t vlba = next_vlba;
            next_vlba = (next_vlba + kOpBlocks) % kVfBlocks;
            (void)driver.submit(
                ctrl::Opcode::kRead, vlba, kOpBlocks, buffer,
                [&, t0, retries_before](ctrl::CompletionStatus s) {
                    const double us =
                        static_cast<double>(sim.now() - t0) / 1000.0;
                    if (s == ctrl::CompletionStatus::kOk) {
                        ++ops_ok;
                        if (driver.retries() > retries_before)
                            recov_lat.add(us);
                        else
                            clean_lat.add(us);
                    } else {
                        ++ops_failed;
                    }
                    submit();
                });
        };
        submit();
        sim.run_until(deadline);
        sim.run_until_idle();

        const double secs = static_cast<double>(kWindow) / 1e9;
        const double goodput_mb =
            static_cast<double>(ops_ok) * kOpBlocks *
            ctrl::kDeviceBlockSize / (1024.0 * 1024.0) / secs;
        table.row()
            .add(prob)
            .add(ops_ok)
            .add(ops_failed)
            .add(driver.retries())
            .add(goodput_mb)
            .add(clean_lat.median())
            .add(recov_lat.mean())
            .add(recov_lat.percentile(99.0));
        if (prob == 0.0) {
            clean_goodput = goodput_mb;
            metrics.push_back(
                {"goodput_mb_s_fault_free", goodput_mb, true});
            metrics.push_back(
                {"clean_p50_us", clean_lat.median(), false});
        } else if (prob == 1e-2) {
            metrics.push_back({"goodput_mb_s_1pct_errors", goodput_mb,
                               true});
            metrics.push_back({"goodput_retention_1pct",
                               goodput_mb / clean_goodput, true});
            metrics.push_back({"recovered_p99_us_1pct",
                               recov_lat.percentile(99.0), false});
        }
    }
    bench::print_table(table);
    bench::emit_bench_json(
        "BENCH_A12.json", 1,
        "fault injection: goodput and recovery latency vs transient "
        "media error rate (simulated, deterministic)",
        metrics);
    return 0;
}
