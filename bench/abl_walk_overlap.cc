/**
 * @file
 * Ablation A2: overlapped block walks.
 *
 * The block-walk unit overlaps two translations to hide extent-tree
 * DMA latency (paper §V.B: "the unit can overlap two translation
 * processes to (almost) hide the DMA latency"). This bench disables
 * the BTLB so every block walks the tree, and sweeps the number of
 * concurrent walks under a queue of outstanding random reads.
 * Expected shape: 2 walkers recover most of the single-walker loss;
 * more walkers give diminishing returns (the pLBA stage saturates).
 */
#include "bench/common.h"
#include "util/rng.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A2", "concurrent block walks (BTLB disabled)",
        "design-choice study: two overlapped walks hide most of the "
        "tree-walk DMA latency");

    util::Table table({"walk_overlap", "qd8_rand_read_kIOPS",
                       "mean_us_per_block"});
    for (std::uint32_t overlap : {1u, 2u, 4u, 8u}) {
        virt::TestbedConfig config = bench::default_config();
        config.controller.btlb_entries = 0; // force walks
        config.controller.walk_overlap = overlap;
        config.pf.tree.fanout = 16;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");
        const std::uint64_t blocks = 16384;
        auto vm = bench::must(
            bed->create_nesc_guest("/wo.img", blocks, true), "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "vf id");

        // Keep 8 single-block random reads outstanding via the raw
        // async driver interface so walker concurrency matters.
        auto driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(driver->init(), "driver");
        auto buffer = bench::must(bed->host_memory().alloc(1024 * 64, 64),
                                  "buffer");

        util::Rng rng(3);
        const std::uint32_t total_ops = 2000;
        std::uint32_t submitted = 0, completed = 0;
        const sim::Time start = bed->sim().now();
        std::function<void()> submit_one = [&]() {
            if (submitted >= total_ops)
                return;
            const std::uint32_t slot = submitted % 8;
            ++submitted;
            bench::must_ok(
                driver->submit(ctrl::Opcode::kRead,
                               rng.next_below(blocks), 1,
                               buffer + slot * 1024,
                               [&](ctrl::CompletionStatus) {
                                   ++completed;
                                   submit_one();
                               }),
                "submit");
        };
        for (int i = 0; i < 8; ++i)
            submit_one();
        while (completed < total_ops) {
            if (!bed->sim().step()) {
                std::fprintf(stderr, "FATAL: pipeline stalled\n");
                return 1;
            }
        }
        const sim::Duration elapsed = bed->sim().now() - start;
        table.row()
            .add(overlap)
            .add(static_cast<double>(total_ops) /
                     (util::ns_to_us(elapsed) / 1000.0) / 1000.0,
                 2)
            .add(util::ns_to_us(elapsed) / total_ops, 2);
    }
    bench::print_table(table);
    bench::print_event_rate();
    return 0;
}
