/**
 * @file
 * Ablation A13: replicated multi-backend storage — goodput cost,
 * failover dent, and resync convergence.
 *
 * Three scenarios on the same guest workload (closed-loop QD=1, 4 KiB
 * alternating write/read through a NeSC VF):
 *
 *   1. local: the plain single-device data path (baseline);
 *   2. replicated: every media op mirrored across 3 backends behind
 *      modelled links, acked at quorum 2 — the steady-state price of
 *      replication;
 *   3. failover: one of the three backends is killed mid-run with no
 *      notification. The victim VF's goodput may dent while timeouts
 *      accumulate (target: <= 20% degradation), must recover once the
 *      dead backend is demoted, and background resync after revival
 *      must leave the backends bit-identical.
 *
 * Everything is seeded and event-driven, so the whole run — including
 * the failover timeline — is deterministic; the bench re-runs the
 * failover scenario and checks the timelines match exactly.
 *
 * Writes BENCH_PR7.json (simulated, deterministic metrics only).
 */
#include "bench/common.h"

#include "repl/replica_set.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

constexpr std::uint64_t kImageBlocks = 8192; // 8 MiB virtual disk
constexpr std::uint32_t kOpBlocks = 4;       // 4 KiB per op
constexpr sim::Duration kPhase = 20 * sim::kMs;

virt::TestbedConfig
bench_config(bool replicated)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    if (replicated) {
        virt::TestbedReplicationConfig repl;
        repl.backends = 3;
        config.replication = repl;
    }
    return config;
}

/** Closed-loop alternating write/read until @p deadline; ops done. */
std::uint64_t
drive_phase(virt::GuestVm &vm, sim::Simulator &sim, sim::Time deadline,
            std::uint64_t &next_block, sim::Time *demote_seen,
            repl::ReplicaSet *set)
{
    std::vector<std::byte> buf(kOpBlocks * 1024);
    std::uint64_t ops = 0;
    bool write = true;
    while (sim.now() < deadline) {
        wl::fill_pattern(next_block, 0, buf);
        const util::Status status =
            write ? vm.raw_disk().write_blocks(next_block, kOpBlocks, buf)
                  : vm.raw_disk().read_blocks(next_block, kOpBlocks, buf);
        bench::must_ok(status, "guest op");
        ++ops;
        write = !write;
        next_block = (next_block + kOpBlocks) % kImageBlocks;
        if (set != nullptr && demote_seen != nullptr &&
            *demote_seen == 0 &&
            set->backend_state(0) == repl::BackendState::kDown)
            *demote_seen = sim.now();
    }
    return ops;
}

double
goodput_mb_s(std::uint64_t ops, sim::Duration window)
{
    return static_cast<double>(ops) * kOpBlocks * 1024.0 /
           (1024.0 * 1024.0) / (static_cast<double>(window) / 1e9);
}

/** Steady-state goodput over one phase (local or replicated bed). */
double
steady_goodput(bool replicated)
{
    auto bed = bench::must(virt::Testbed::create(bench_config(replicated)),
                           "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/bench.img",
                                                 kImageBlocks),
                          "guest");
    std::uint64_t next_block = 0;
    // Warm-up lap fills the image so reads return real data.
    drive_phase(*vm, bed->sim(), bed->sim().now() + kPhase / 2,
                next_block, nullptr, nullptr);
    const std::uint64_t ops =
        drive_phase(*vm, bed->sim(), bed->sim().now() + kPhase,
                    next_block, nullptr, nullptr);
    return goodput_mb_s(ops, kPhase);
}

struct FailoverResult {
    std::uint64_t ops_before = 0;
    std::uint64_t ops_during = 0;
    std::uint64_t ops_after = 0;
    sim::Time kill_time = 0;
    sim::Time demote_time = 0;
    double resync_ms = 0.0;
    bool bit_identical = false;
    sim::Time final_now = 0;
};

FailoverResult
failover_run()
{
    auto bed = bench::must(virt::Testbed::create(bench_config(true)),
                           "testbed");
    auto vm = bench::must(bed->create_nesc_guest("/bench.img",
                                                 kImageBlocks),
                          "guest");
    repl::ReplicaSet *set = bed->replicas();
    sim::Simulator &sim = bed->sim();
    FailoverResult r;

    std::uint64_t next_block = 0;
    drive_phase(*vm, sim, sim.now() + kPhase / 2, next_block, nullptr,
                nullptr); // warm-up lap
    r.ops_before = drive_phase(*vm, sim, sim.now() + kPhase, next_block,
                               nullptr, nullptr);

    // Kill backend 0 silently: no notification, detection must come
    // from ack/read timeouts alone.
    set->crash_backend(0);
    r.kill_time = sim.now();
    r.ops_during = drive_phase(*vm, sim, sim.now() + kPhase, next_block,
                               &r.demote_time, set);
    r.ops_after = drive_phase(*vm, sim, sim.now() + kPhase, next_block,
                              nullptr, nullptr);

    // Power the backend back on: journal recovery + background resync
    // drain its dirty-extent log while the set stays online.
    const sim::Time revive_at = sim.now();
    set->revive_backend(0);
    bench::must(bed->pf().repl_wait_resync(0), "resync");
    r.resync_ms = static_cast<double>(sim.now() - revive_at) / 1e6;
    r.bit_identical = bench::must(set->verify_equal(0, 1), "verify") &&
                      bench::must(set->verify_equal(0, 2), "verify");
    r.final_now = sim.now();
    return r;
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A13",
        "replicated storage: goodput, failover dent, resync",
        "robustness extension (beyond the paper's single-device "
        "prototype): mirroring costs steady-state goodput; killing 1 "
        "of 3 backends dents the victim VF <= 20% until organic "
        "demotion, then goodput recovers and resync converges "
        "bit-identically");

    const double local = steady_goodput(false);
    const double replicated = steady_goodput(true);

    FailoverResult r = failover_run();
    const FailoverResult again = failover_run();
    const bool deterministic = r.final_now == again.final_now &&
                               r.ops_during == again.ops_during &&
                               r.demote_time == again.demote_time;

    const double before = goodput_mb_s(r.ops_before, kPhase);
    const double during = goodput_mb_s(r.ops_during, kPhase);
    const double after = goodput_mb_s(r.ops_after, kPhase);
    const double failover_ms =
        r.demote_time > r.kill_time
            ? static_cast<double>(r.demote_time - r.kill_time) / 1e6
            : 0.0;

    util::Table table({"scenario", "goodput_mb_s", "note"});
    table.row().add("local").add(local).add("single device");
    table.row().add("replicated").add(replicated).add("3 backends, q=2");
    table.row().add("failover: before").add(before).add("all healthy");
    table.row().add("failover: during").add(during).add(
        "backend 0 dead, not yet demoted");
    table.row().add("failover: after").add(after).add("demoted");
    bench::print_table(table);
    std::printf("failover latency: %.3f ms (crash -> demotion)\n",
                failover_ms);
    std::printf("resync: %.3f ms, bit-identical: %s\n", r.resync_ms,
                r.bit_identical ? "yes" : "NO");
    std::printf("deterministic re-run: %s\n",
                deterministic ? "yes" : "NO");
    bench::print_event_rate();

    bench::emit_bench_json(
        "BENCH_PR7.json", 7,
        "replicated multi-backend storage: quorum writes, failover, "
        "journaled resync (3 backends, quorum 2, 1 killed mid-run)",
        {
            {"local_goodput_mb_s", local, true},
            {"repl_goodput_mb_s", replicated, true},
            {"repl_vs_local_ratio", replicated / local, true},
            {"failover_dent_ratio", during / before, true},
            {"failover_recovery_ratio", after / before, true},
            {"failover_latency_ms", failover_ms, false},
            {"resync_ms", r.resync_ms, false},
            {"resync_bit_identical", r.bit_identical ? 1.0 : 0.0, true},
            {"deterministic", deterministic ? 1.0 : 0.0, true},
        });
    return 0;
}
