/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 *
 * Each bench binary rebuilds one table or figure of the paper: it
 * assembles a Testbed, drives the workloads, and prints the same
 * rows/series the paper reports (plus CSV when NESC_BENCH_CSV=1).
 * Absolute values are simulation estimates; the captions state which
 * qualitative shape the paper's result has and where to look.
 */
#ifndef NESC_BENCH_COMMON_H
#define NESC_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "virt/testbed.h"

namespace nesc::bench {

/** Wall-clock anchor for simulator-throughput reporting. */
inline const std::chrono::steady_clock::time_point g_bench_start =
    std::chrono::steady_clock::now();

/**
 * Prints the host-side simulation rate: events executed across every
 * Simulator in this process divided by wall-clock time since start.
 * Wall-clock, so useful for tracking simulator overhead trends but
 * deliberately not machine-parsed by the perf smoke checks.
 */
inline void
print_event_rate()
{
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      g_bench_start)
            .count();
    const std::uint64_t events = sim::Simulator::total_events_executed();
    std::printf("[sim] %llu events, %.2f s wall, %.0f kevents/s\n",
                static_cast<unsigned long long>(events), secs,
                secs > 0 ? static_cast<double>(events) / secs / 1000.0
                         : 0.0);
}

/** Standard bench testbed: 128 MiB prototype-like device. */
inline virt::TestbedConfig
default_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 128ULL << 20;
    config.host_memory_bytes = 128ULL << 20;
    return config;
}

/** Prints a bench header: figure/table id and what the paper showed. */
inline void
print_header(const std::string &id, const std::string &description,
             const std::string &paper_shape)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", id.c_str(), description.c_str());
    std::printf("Paper result (shape to reproduce): %s\n",
                paper_shape.c_str());
    std::printf("=====================================================\n");
}

/** Prints a table, and its CSV form when NESC_BENCH_CSV=1. */
inline void
print_table(const util::Table &table)
{
    std::cout << table.to_string();
    const char *csv = std::getenv("NESC_BENCH_CSV");
    if (csv != nullptr && std::string(csv) == "1") {
        std::cout << "\n[csv]\n" << table.to_csv();
    }
    std::cout << std::endl;
}

/** One machine-readable metric for the per-PR perf-smoke baselines. */
struct BenchMetric {
    const char *name;
    double value;
    bool higher_is_better;
};

/**
 * Writes the per-PR machine-readable metrics file that the tier-2
 * perf-smoke scripts diff against checked-in baselines. The format is
 * frozen — scripts/tier2_perf_smoke.sh does a byte diff, so values are
 * always %.4f and field order never changes.
 */
inline void
emit_bench_json(const char *path, int pr, const char *description,
                const std::vector<BenchMetric> &metrics)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "FATAL: cannot write %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"pr\": %d,\n", pr);
    std::fprintf(f, "  \"description\": \"%s\",\n", description);
    std::fprintf(f, "  \"metrics\": [\n");
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        std::fprintf(
            f,
            "    {\"metric\": \"%s\", \"value\": %.4f, "
            "\"higher_is_better\": %s}%s\n",
            metrics[i].name, metrics[i].value,
            metrics[i].higher_is_better ? "true" : "false",
            i + 1 < metrics.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu metrics)\n", path, metrics.size());
}

/** Returns the value following a "--trace" argument, or nullptr. */
inline const char *
trace_arg(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string_view(argv[i]) == "--trace")
            return argv[i + 1];
    return nullptr;
}

/** Writes @p tracer's Chrome trace JSON to @p path (fatal on error). */
inline void
write_trace(const obs::Tracer &tracer, const char *path)
{
    const util::Status written = tracer.write_chrome_json(path);
    if (!written.is_ok()) {
        std::fprintf(stderr, "FATAL: cannot write trace %s: %s\n", path,
                     written.to_string().c_str());
        std::exit(1);
    }
    std::printf("wrote trace %s (%llu spans recorded, %llu dropped)\n",
                path, static_cast<unsigned long long>(tracer.recorded()),
                static_cast<unsigned long long>(tracer.dropped()));
}

/** Aborts the bench with a message when a Result/Status failed. */
template <typename T>
T
must(util::Result<T> result, const char *what)
{
    if (!result.is_ok()) {
        std::fprintf(stderr, "FATAL %s: %s\n", what,
                     result.status().to_string().c_str());
        std::exit(1);
    }
    return std::move(result).value();
}

inline void
must_ok(const util::Status &status, const char *what)
{
    if (!status.is_ok()) {
        std::fprintf(stderr, "FATAL %s: %s\n", what,
                     status.to_string().c_str());
        std::exit(1);
    }
}

} // namespace nesc::bench

#endif // NESC_BENCH_COMMON_H
