/**
 * @file
 * Figure 12: application-level speedups of NeSC over (a) full device
 * emulation and (b) virtio, for the three macrobenchmarks of Table II:
 * OLTP (MiniDb/SysBench-OLTP), Postmark, and SysBench-fileio.
 *
 * Virtual disks are stored as image files on the hypervisor
 * filesystem (the nested-filesystem deployment of §VI); each guest
 * formats its own filesystem inside the image and runs the workloads
 * on it. Reported numbers are simulated run times and the derived
 * speedups; the absolute speedup depends on the workload's compute /
 * I/O ratio, which the simulation does not model beyond syscall
 * costs, so expect larger values than the paper's bars — the shape to
 * verify is NeSC > virtio > emulation for every application.
 */
#include <functional>

#include "bench/common.h"
#include "workloads/fileio.h"
#include "workloads/oltp.h"
#include "workloads/postmark.h"

using namespace nesc;

namespace {

struct AppTimes {
    double oltp_sec;
    double postmark_sec;
    double fileio_sec;
};

AppTimes
run_apps(virt::Testbed &bed, virt::GuestVm &vm)
{
    AppTimes times{};
    {
        wl::OltpConfig config;
        config.transactions = 60;
        config.db.rows = 2048;
        config.use_index = true; // point selects via the PK B+tree
        auto result =
            bench::must(wl::run_oltp(bed.sim(), vm, config), "oltp");
        times.oltp_sec = util::ns_to_sec(result.elapsed);
    }
    {
        wl::PostmarkConfig config;
        config.initial_files = 40;
        config.transactions = 150;
        auto result = bench::must(wl::run_postmark(bed.sim(), vm, config),
                                  "postmark");
        times.postmark_sec = util::ns_to_sec(result.elapsed);
    }
    {
        wl::FileioConfig config;
        config.operations = 400;
        config.num_files = 4;
        config.file_bytes = 256 * 1024;
        auto result = bench::must(wl::run_fileio(bed.sim(), vm, config),
                                  "fileio");
        times.fileio_sec = util::ns_to_sec(result.elapsed);
    }
    return times;
}

} // namespace

int
main()
{
    bench::print_header(
        "Figure 12", "application speedups of NeSC over emulation (12a) "
        "and virtio (12b)",
        "NeSC outperforms both software techniques on every application; "
        "speedups over emulation exceed those over virtio");

    // Three 48 MiB guest images need a larger physical device.
    virt::TestbedConfig config = bench::default_config();
    config.device.capacity_bytes = 256ULL << 20;
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    auto nesc_vm = bench::must(
        bed->create_nesc_guest("/images/app-nesc.img", 49152, true),
        "nesc guest");
    bench::must_ok(nesc_vm->format_fs(), "nesc guest fs");

    auto virtio_vm = bench::must(
        bed->create_virtio_guest_file("/images/app-virtio.img", 49152),
        "virtio guest");
    bench::must_ok(virtio_vm->format_fs(), "virtio guest fs");

    auto emu_vm = bench::must(
        bed->create_emulated_guest_file("/images/app-emu.img", 49152),
        "emulated guest");
    bench::must_ok(emu_vm->format_fs(), "emulated guest fs");

    std::printf("running applications on the NeSC guest...\n");
    const AppTimes nesc_t = run_apps(*bed, *nesc_vm);
    std::printf("running applications on the virtio guest...\n");
    const AppTimes virtio_t = run_apps(*bed, *virtio_vm);
    std::printf("running applications on the emulated guest...\n");
    const AppTimes emu_t = run_apps(*bed, *emu_vm);

    util::Table table({"application", "nesc_sec", "virtio_sec",
                       "emulation_sec", "fig12a_speedup_vs_emulation",
                       "fig12b_speedup_vs_virtio"});
    table.row()
        .add("OLTP")
        .add(nesc_t.oltp_sec, 3)
        .add(virtio_t.oltp_sec, 3)
        .add(emu_t.oltp_sec, 3)
        .add(emu_t.oltp_sec / nesc_t.oltp_sec)
        .add(virtio_t.oltp_sec / nesc_t.oltp_sec);
    table.row()
        .add("Postmark")
        .add(nesc_t.postmark_sec, 3)
        .add(virtio_t.postmark_sec, 3)
        .add(emu_t.postmark_sec, 3)
        .add(emu_t.postmark_sec / nesc_t.postmark_sec)
        .add(virtio_t.postmark_sec / nesc_t.postmark_sec);
    table.row()
        .add("SysBench")
        .add(nesc_t.fileio_sec, 3)
        .add(virtio_t.fileio_sec, 3)
        .add(emu_t.fileio_sec, 3)
        .add(emu_t.fileio_sec / nesc_t.fileio_sec)
        .add(virtio_t.fileio_sec / nesc_t.fileio_sec);
    bench::print_table(table);
    return 0;
}
