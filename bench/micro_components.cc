/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * extent-tree build/serialize, the software walker, the BTLB, the
 * event queue, host-memory allocation and nestfs data ops. These
 * measure wall-clock cost of the *model* (not simulated time) and
 * guard against performance regressions in the library itself.
 */
#include <benchmark/benchmark.h>

#include "blocklayer/device_block_io.h"
#include "extent/tree_image.h"
#include "extent/walker.h"
#include "fs/nestfs.h"
#include "nesc/btlb.h"
#include "pcie/host_memory.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"
#include "util/rng.h"

using namespace nesc;

namespace {

extent::ExtentList
make_extents(std::uint64_t count)
{
    extent::ExtentList extents;
    extents.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        extents.push_back(extent::Extent{i * 3, 2, 1000 + i * 7});
    return extents;
}

void
BM_ExtentTreeBuild(benchmark::State &state)
{
    const auto extents = make_extents(state.range(0));
    pcie::HostMemory memory(64ULL << 20);
    for (auto _ : state) {
        auto image = extent::ExtentTreeImage::build(memory, extents);
        benchmark::DoNotOptimize(image);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExtentTreeBuild)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_SoftwareWalkerLookup(benchmark::State &state)
{
    const auto extents = make_extents(state.range(0));
    pcie::HostMemory memory(64ULL << 20);
    auto image = extent::ExtentTreeImage::build(memory, extents);
    util::Rng rng(1);
    for (auto _ : state) {
        auto result = extent::lookup(memory, image->root(),
                                     rng.next_below(state.range(0) * 3));
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SoftwareWalkerLookup)->Arg(64)->Arg(16384);

void
BM_BtlbLookup(benchmark::State &state)
{
    ctrl::Btlb btlb(8);
    for (std::uint16_t fn = 1; fn <= 8; ++fn)
        btlb.insert(fn, extent::Extent{0, 1024, fn * 10000ULL});
    util::Rng rng(2);
    for (auto _ : state) {
        auto hit = btlb.lookup(
            static_cast<pcie::FunctionId>(1 + rng.next_below(8)),
            rng.next_below(1024));
        benchmark::DoNotOptimize(hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtlbLookup);

void
BM_SimulatorEventChurn(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            sim.schedule_in(static_cast<sim::Duration>(i % 17),
                            [&fired]() { ++fired; });
        sim.run_until_idle();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

void
BM_HostMemoryAllocFree(benchmark::State &state)
{
    pcie::HostMemory memory(64ULL << 20);
    util::Rng rng(3);
    for (auto _ : state) {
        auto a = memory.alloc(64 + rng.next_below(4096), 8);
        benchmark::DoNotOptimize(a);
        if (a.is_ok())
            (void)memory.free(*a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostMemoryAllocFree);

void
BM_NestFsWrite4k(benchmark::State &state)
{
    sim::Simulator sim;
    storage::MemBlockDeviceConfig dev_cfg;
    dev_cfg.capacity_bytes = 64ULL << 20;
    dev_cfg.read_bytes_per_sec = 0; // timing-free functional run
    dev_cfg.write_bytes_per_sec = 0;
    dev_cfg.access_latency = 0;
    storage::MemBlockDevice device(dev_cfg);
    blk::DeviceBlockIo io(sim, device);
    auto fs = fs::NestFs::format(io);
    auto ino = fs.value()->create("/bench", 0644);
    std::vector<std::byte> buf(4096, std::byte{0x5a});
    std::uint64_t offset = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fs.value()->write(*ino, offset % (32ULL << 20), buf));
        offset += 4096;
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NestFsWrite4k);

} // namespace

BENCHMARK_MAIN();
