/**
 * @file
 * Ablation A8: completion-interrupt coalescing.
 *
 * The prototype raises one MSI per completion; a production controller
 * would coalesce. This bench sweeps the coalescing window under a
 * queued random-read workload and reports the interrupt count and the
 * throughput/latency trade-off: interrupts collapse while throughput
 * holds, at the cost of added completion latency for sparse traffic.
 */
#include "bench/common.h"
#include "util/rng.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A8", "completion-interrupt coalescing window sweep",
        "extension study: coalescing trades completion latency for a "
        "large reduction in interrupt rate at equal throughput");

    util::Table table({"coalesce_us", "reads_done", "irqs_raised",
                       "irqs_per_read", "sync_read_us"});
    for (std::uint64_t window_us : {0u, 5u, 20u, 50u}) {
        virt::TestbedConfig config = bench::default_config();
        config.controller.irq_coalesce = window_us * sim::kUs;
        auto bed = bench::must(virt::Testbed::create(config), "testbed");
        auto vm = bench::must(bed->create_nesc_guest("/coal.img", 8192,
                                                     true),
                              "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "fn");
        drv::FunctionDriver driver(bed->sim(), bed->host_memory(),
                                   bed->bar(), bed->irq(), fn,
                                   bed->config().vf_driver);
        bench::must_ok(driver.init(), "driver");
        auto buffer = bench::must(
            bed->host_memory().alloc(4096ULL * 16, 64), "buffer");

        const std::uint64_t irqs_before = bed->irq().raised();
        util::Rng rng(23);
        std::uint64_t completed = 0;
        const sim::Time deadline = bed->sim().now() + 10 * sim::kMs;
        std::function<void(std::uint32_t)> submit =
            [&](std::uint32_t slot) {
                if (bed->sim().now() >= deadline)
                    return;
                (void)driver.submit(ctrl::Opcode::kRead,
                                    rng.next_below(8188), 4,
                                    buffer + slot * 4096,
                                    [&, slot](ctrl::CompletionStatus) {
                                        ++completed;
                                        submit(slot);
                                    });
            };
        for (std::uint32_t slot = 0; slot < 16; ++slot)
            submit(slot);
        bed->sim().run_until(deadline);
        bed->sim().run_until_idle();
        const std::uint64_t irqs = bed->irq().raised() - irqs_before;

        // Sparse-traffic cost: one synchronous read's latency grows by
        // roughly the coalescing window. (Use this driver — it owns
        // the VF's MSI vector; a function has exactly one handler.)
        std::vector<std::byte> one(1024);
        const sim::Time t0 = bed->sim().now();
        bench::must_ok(driver.read_sync(0, 1, one), "sync");
        const double sync_us = util::ns_to_us(bed->sim().now() - t0);

        table.row()
            .add(window_us)
            .add(completed)
            .add(irqs)
            .add(static_cast<double>(irqs) /
                     static_cast<double>(completed),
                 3)
            .add(sync_us, 1);
    }
    bench::print_table(table);
    return 0;
}
