/**
 * @file
 * Ablation A13: MSHR-style walk-miss coalescing and the translation
 * fast path end to end.
 *
 * Part 1 disables the BTLB so every block misses, fragments the
 * backing file so the extent tree is deep, and keeps N single-block
 * reads outstanding inside a 64-block window (the window jumps
 * periodically). Concurrent misses then target the same subtree: with
 * coalescing off each one walks the tree itself; with coalescing on
 * the burst attaches to the first walk. The metric is DMA node reads
 * per translated miss — expected to drop >= 2x at 16 outstanding.
 *
 * Part 2 measures the whole fast path under load: 8 VFs, each keeping
 * 16 random reads outstanding, with the paper's baseline translation
 * unit (8-entry FA BTLB, no node cache, no coalescing) against the
 * scaled configuration (256-entry set-associative BTLB, 256 KiB node
 * cache, coalescing on).
 *
 * Writes BENCH_PR3.json (simulated, deterministic metrics only) for
 * scripts/tier2_perf_smoke.sh to diff against the checked-in baseline.
 */
#include <vector>

#include "bench/common.h"
#include "drivers/function_driver.h"
#include "util/rng.h"

using namespace nesc;

namespace {

/** Fragments @p path into @p run_blocks-long extents (decoy trick). */
void
make_fragmented_file(virt::Testbed &bed, const std::string &path,
                     std::uint64_t blocks, std::uint64_t run_blocks)
{
    auto &fs = bed.hv_fs();
    auto ino = bench::must(fs.create(path, 0644), "create");
    auto decoy = bench::must(fs.create(path + ".decoy", 0644), "decoy");
    for (std::uint64_t vb = 0; vb < blocks; vb += run_blocks) {
        const std::uint64_t n = std::min(run_blocks, blocks - vb);
        bench::must_ok(fs.allocate_range(ino, vb, n), "alloc");
        bench::must_ok(fs.allocate_range(decoy, vb, n), "alloc decoy");
    }
}

struct MissRunResult {
    double dma_reads_per_miss = 0.0;
    std::uint64_t coalesced = 0;
};

/**
 * Keeps @p outstanding window-restricted random reads in flight with
 * the BTLB off and returns DMA node reads per translated miss.
 */
MissRunResult
run_miss_burst(bool coalesce, std::uint32_t outstanding)
{
    virt::TestbedConfig config = bench::default_config();
    config.controller.btlb_entries = 0; // every block misses
    config.controller.walk_coalescing = coalesce;
    config.controller.coalesce_window_blocks = 256;
    config.pf.tree.fanout = 4; // deep tree: several DMAs per walk
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    const std::uint64_t blocks = 16384;
    make_fragmented_file(*bed, "/mshr.img", blocks, 64);
    auto vm =
        bench::must(bed->create_nesc_guest("/mshr.img", blocks), "guest");
    auto fn = bench::must(bed->guest_vf(*vm), "vf id");

    auto driver = std::make_unique<drv::FunctionDriver>(
        bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
        bed->config().vf_driver);
    bench::must_ok(driver->init(), "driver");
    auto buffer = bench::must(
        bed->host_memory().alloc(1024 * outstanding, 64), "buffer");

    // Random reads inside a 64-block window that jumps every 64
    // submissions: concurrent misses share a subtree, sequential
    // phases do not degenerate into pure streaming.
    util::Rng rng(11);
    const std::uint32_t total_ops = 2048;
    std::uint64_t window_base = 0;
    std::uint32_t submitted = 0, completed = 0;
    std::function<void()> submit_one = [&]() {
        if (submitted >= total_ops)
            return;
        if (submitted % 64 == 0)
            window_base = 64 * rng.next_below(blocks / 64);
        const std::uint32_t slot = submitted % outstanding;
        ++submitted;
        bench::must_ok(
            driver->submit(ctrl::Opcode::kRead,
                           window_base + rng.next_below(64), 1,
                           buffer + slot * 1024,
                           [&](ctrl::CompletionStatus) {
                               ++completed;
                               submit_one();
                           }),
            "submit");
    };
    for (std::uint32_t i = 0; i < outstanding; ++i)
        submit_one();
    while (completed < total_ops) {
        if (!bed->sim().step()) {
            std::fprintf(stderr, "FATAL: pipeline stalled\n");
            std::exit(1);
        }
    }

    const auto &counters = bed->controller().counters();
    MissRunResult result;
    result.dma_reads_per_miss =
        static_cast<double>(counters.get("walk_node_reads")) /
        static_cast<double>(total_ops);
    result.coalesced = counters.get("walk_coalesced");
    return result;
}

struct LoadRunResult {
    double kiops = 0.0;
    double btlb_hit_rate = 0.0;
    double dma_reads_per_block = 0.0;
};

/** 8 VFs x QD16 random reads; returns aggregate simulated kIOPS. */
LoadRunResult
run_multi_vf(bool fastpath)
{
    virt::TestbedConfig config = bench::default_config();
    config.pf.tree.fanout = 16;
    if (fastpath) {
        config.controller.btlb_entries = 256;
        config.controller.btlb_sets = 64;
        config.controller.btlb_range_shift = 6;
        config.controller.node_cache_bytes = 256 << 10;
        config.controller.walk_coalescing = true;
    }
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    constexpr std::uint32_t kVfs = 8;
    constexpr std::uint32_t kQd = 16;
    const std::uint64_t blocks = 4096;
    const std::uint32_t ops_per_vf = 2000;

    struct VfState {
        std::unique_ptr<virt::GuestVm> vm;
        std::unique_ptr<drv::FunctionDriver> driver;
        pcie::HostAddr buffer = 0;
        util::Rng rng{0};
        std::uint32_t submitted = 0;
        std::uint32_t completed = 0;
    };
    std::vector<VfState> vfs(kVfs);
    for (std::uint32_t v = 0; v < kVfs; ++v) {
        const std::string path = "/load" + std::to_string(v) + ".img";
        make_fragmented_file(*bed, path, blocks, 64);
        vfs[v].vm =
            bench::must(bed->create_nesc_guest(path, blocks), "guest");
        auto fn = bench::must(bed->guest_vf(*vfs[v].vm), "vf id");
        vfs[v].driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(vfs[v].driver->init(), "driver");
        vfs[v].buffer = bench::must(
            bed->host_memory().alloc(1024 * kQd, 64), "buffer");
        vfs[v].rng = util::Rng(100 + v);
    }

    std::uint32_t total_completed = 0;
    const sim::Time start = bed->sim().now();
    std::function<void(std::uint32_t)> submit_one = [&](std::uint32_t v) {
        VfState &vf = vfs[v];
        if (vf.submitted >= ops_per_vf)
            return;
        const std::uint32_t slot = vf.submitted % kQd;
        ++vf.submitted;
        bench::must_ok(
            vf.driver->submit(ctrl::Opcode::kRead,
                              vf.rng.next_below(blocks), 1,
                              vf.buffer + slot * 1024,
                              [&, v](ctrl::CompletionStatus) {
                                  ++vfs[v].completed;
                                  ++total_completed;
                                  submit_one(v);
                              }),
            "submit");
    };
    for (std::uint32_t v = 0; v < kVfs; ++v)
        for (std::uint32_t i = 0; i < kQd; ++i)
            submit_one(v);
    const std::uint32_t total_ops = kVfs * ops_per_vf;
    while (total_completed < total_ops) {
        if (!bed->sim().step()) {
            std::fprintf(stderr, "FATAL: pipeline stalled\n");
            std::exit(1);
        }
    }
    const sim::Duration elapsed = bed->sim().now() - start;

    LoadRunResult result;
    result.kiops = static_cast<double>(total_ops) /
                   (util::ns_to_us(elapsed) / 1000.0) / 1000.0;
    result.btlb_hit_rate = bed->controller().btlb().hit_rate();
    result.dma_reads_per_block =
        static_cast<double>(
            bed->controller().counters().get("walk_node_reads")) /
        static_cast<double>(total_ops);
    return result;
}

void
write_json(const std::vector<bench::BenchMetric> &metrics)
{
    bench::emit_bench_json(
        "BENCH_PR3.json", 3,
        "translation fast path: set-associative BTLB, extent-node cache, "
        "walk-miss coalescing (simulated, deterministic)",
        metrics);
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A13", "walk-miss coalescing and the translation fast path",
        "design-choice study beyond the paper's prototype: concurrent "
        "misses to a shared subtree should cost one walk, not N; the "
        "full fast path lifts multi-VF random-read IOPS");

    util::Table table({"outstanding", "dma_per_miss_off", "dma_per_miss_on",
                       "reduction_x", "coalesced_on"});
    double dma_off_qd16 = 0.0, dma_on_qd16 = 0.0;
    for (std::uint32_t outstanding : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const MissRunResult off = run_miss_burst(false, outstanding);
        const MissRunResult on = run_miss_burst(true, outstanding);
        if (outstanding == 16) {
            dma_off_qd16 = off.dma_reads_per_miss;
            dma_on_qd16 = on.dma_reads_per_miss;
        }
        table.row()
            .add(outstanding)
            .add(off.dma_reads_per_miss, 2)
            .add(on.dma_reads_per_miss, 2)
            .add(on.dma_reads_per_miss > 0
                     ? off.dma_reads_per_miss / on.dma_reads_per_miss
                     : 0.0,
                 2)
            .add(on.coalesced);
    }
    bench::print_table(table);

    const LoadRunResult baseline = run_multi_vf(false);
    const LoadRunResult fastpath = run_multi_vf(true);
    util::Table load({"config", "kIOPS_qd16_8vf", "btlb_hit_rate",
                      "dma_node_reads_per_block"});
    load.row()
        .add("paper-baseline")
        .add(baseline.kiops, 2)
        .add(baseline.btlb_hit_rate, 3)
        .add(baseline.dma_reads_per_block, 2);
    load.row()
        .add("fast-path")
        .add(fastpath.kiops, 2)
        .add(fastpath.btlb_hit_rate, 3)
        .add(fastpath.dma_reads_per_block, 2);
    bench::print_table(load);
    bench::print_event_rate();

    write_json({
        {"dma_node_reads_per_miss_qd16_coalesce_off", dma_off_qd16, false},
        {"dma_node_reads_per_miss_qd16_coalesce_on", dma_on_qd16, false},
        {"coalesce_dma_reduction_x_qd16",
         dma_on_qd16 > 0 ? dma_off_qd16 / dma_on_qd16 : 0.0, true},
        {"iops_k_qd16_8vf_baseline", baseline.kiops, true},
        {"iops_k_qd16_8vf_fastpath", fastpath.kiops, true},
        {"btlb_hit_rate_qd16_8vf_baseline", baseline.btlb_hit_rate, true},
        {"btlb_hit_rate_qd16_8vf_fastpath", fastpath.btlb_hit_rate, true},
        {"dma_node_reads_per_block_8vf_baseline",
         baseline.dma_reads_per_block, false},
        {"dma_node_reads_per_block_8vf_fastpath",
         fastpath.dma_reads_per_block, false},
    });
    return 0;
}
