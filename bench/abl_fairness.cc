/**
 * @file
 * Ablation A4: round-robin fairness across VFs.
 *
 * The VF multiplexer dequeues client requests round-robin "to prevent
 * client starvation" (paper §V.A). Four VFs offer asymmetric load —
 * one aggressive client keeps 32 requests outstanding, three modest
 * clients keep 2 each — and the bench reports the service share each
 * achieved. Expected shape: the aggressive client cannot convert its
 * 84% offered share into service share (block-granular round robin
 * caps it), and the equally-loaded clients get identical service.
 */
#include <algorithm>

#include "bench/common.h"
#include "util/rng.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A4", "service fairness under asymmetric VF load",
        "design-choice study: with 16x the outstanding requests, the "
        "aggressive VF's service share stays far below its 84% offered "
        "share (block-granular round robin prevents starvation), and "
        "equally-loaded VFs receive identical service");

    virt::TestbedConfig config = bench::default_config();
    auto bed = bench::must(virt::Testbed::create(config), "testbed");

    constexpr int kVfs = 4;
    const std::uint64_t blocks = 8192;
    const std::uint32_t queue_depth[kVfs] = {32, 2, 2, 2};

    struct Client {
        std::unique_ptr<drv::FunctionDriver> driver;
        pcie::HostAddr buffer;
        std::uint64_t completed = 0;
        util::Rng rng{0};
    };
    std::vector<Client> clients(kVfs);
    std::vector<std::unique_ptr<virt::GuestVm>> vms;

    for (int i = 0; i < kVfs; ++i) {
        auto vm = bench::must(
            bed->create_nesc_guest("/fair" + std::to_string(i) + ".img",
                                   blocks, true),
            "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "vf");
        clients[i].driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(clients[i].driver->init(), "driver");
        clients[i].buffer = bench::must(
            bed->host_memory().alloc(4096ULL * 64, 64), "buffer");
        clients[i].rng = util::Rng(100 + i);
        vms.push_back(std::move(vm));
    }

    // Closed-loop clients: resubmit on completion until the deadline.
    const sim::Time deadline = bed->sim().now() + 50 * sim::kMs;
    std::vector<std::function<void(int, std::uint32_t)>> holder(1);
    std::function<void(int, std::uint32_t)> submit =
        [&](int client, std::uint32_t slot) {
            Client &c = clients[client];
            if (bed->sim().now() >= deadline)
                return;
            bench::must_ok(
                c.driver->submit(ctrl::Opcode::kRead,
                                 c.rng.next_below(blocks - 4), 4,
                                 c.buffer + slot * 4096,
                                 [&, client, slot](ctrl::CompletionStatus) {
                                     ++clients[client].completed;
                                     submit(client, slot);
                                 }),
                "submit");
        };
    for (int i = 0; i < kVfs; ++i)
        for (std::uint32_t slot = 0; slot < queue_depth[i]; ++slot)
            submit(i, slot);

    bed->sim().run_until(deadline);
    bed->sim().run_until_idle();

    std::uint64_t total = 0;
    for (const Client &c : clients)
        total += c.completed;

    util::Table table({"vf", "outstanding_requests", "completed_4k_reads",
                       "service_share_pct"});
    for (int i = 0; i < kVfs; ++i) {
        table.row()
            .add(std::uint64_t(i + 1))
            .add(std::uint64_t(queue_depth[i]))
            .add(clients[i].completed)
            .add(100.0 * static_cast<double>(clients[i].completed) /
                     static_cast<double>(total),
                 1);
    }
    bench::print_table(table);

    // Machine-readable form: the aggressive client's service share must
    // stay bounded, and the three equally-loaded clients must split the
    // remainder evenly (max/min spread ~1).
    std::uint64_t modest_min = clients[1].completed;
    std::uint64_t modest_max = clients[1].completed;
    for (int i = 2; i < kVfs; ++i) {
        modest_min = std::min(modest_min, clients[i].completed);
        modest_max = std::max(modest_max, clients[i].completed);
    }
    bench::emit_bench_json(
        "BENCH_A4_FAIRNESS.json", 8,
        "service fairness under asymmetric VF load (QD 32 vs 2/2/2)",
        {
            {"total_4k_reads", static_cast<double>(total), true},
            {"aggressive_share_pct",
             100.0 * static_cast<double>(clients[0].completed) /
                 static_cast<double>(total),
             false},
            {"modest_spread_ratio",
             modest_min > 0 ? static_cast<double>(modest_max) /
                                  static_cast<double>(modest_min)
                            : 0.0,
             false},
        });
    return 0;
}
