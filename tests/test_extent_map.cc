/**
 * @file
 * Unit tests for the in-memory extent-map helpers used by nestfs.
 */
#include <gtest/gtest.h>

#include "fs/extent_map.h"
#include "util/rng.h"

namespace nesc::fs {
namespace {

using extent::Extent;
using extent::ExtentList;
using extent::Plba;
using extent::Vlba;

TEST(ExtentMap, LookupEmpty)
{
    ExtentList list;
    EXPECT_FALSE(map_lookup(list, 0).has_value());
    EXPECT_EQ(map_end(list), 0u);
}

TEST(ExtentMap, LookupHitsAndMisses)
{
    ExtentList list = {{0, 4, 100}, {8, 4, 200}};
    EXPECT_EQ(*map_lookup(list, 0), 100u);
    EXPECT_EQ(*map_lookup(list, 3), 103u);
    EXPECT_FALSE(map_lookup(list, 4).has_value());
    EXPECT_EQ(*map_lookup(list, 8), 200u);
    EXPECT_EQ(*map_lookup(list, 11), 203u);
    EXPECT_FALSE(map_lookup(list, 12).has_value());
    EXPECT_EQ(map_end(list), 12u);
}

TEST(ExtentMap, LookupExtentReturnsWholeExtent)
{
    ExtentList list = {{5, 10, 500}};
    auto e = map_lookup_extent(list, 9);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->first_vblock, 5u);
    EXPECT_EQ(e->nblocks, 10u);
}

TEST(ExtentMap, InsertIntoEmpty)
{
    ExtentList list;
    map_insert_block(list, 7, 70);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{7, 1, 70}));
}

TEST(ExtentMap, InsertMergesWithPredecessor)
{
    ExtentList list = {{0, 4, 100}};
    map_insert_block(list, 4, 104); // logically AND physically adjacent
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{0, 5, 100}));
}

TEST(ExtentMap, InsertMergesWithSuccessor)
{
    ExtentList list = {{5, 4, 105}};
    map_insert_block(list, 4, 104);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{4, 5, 104}));
}

TEST(ExtentMap, InsertBridgesBothNeighbours)
{
    ExtentList list = {{0, 4, 100}, {5, 4, 105}};
    map_insert_block(list, 4, 104);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{0, 9, 100}));
}

TEST(ExtentMap, NoMergeWhenPhysicallyDiscontiguous)
{
    ExtentList list = {{0, 4, 100}};
    map_insert_block(list, 4, 999); // logically adjacent only
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[1], (Extent{4, 1, 999}));
}

TEST(ExtentMap, InsertKeepsSortedOrder)
{
    ExtentList list;
    map_insert_block(list, 10, 1);
    map_insert_block(list, 2, 2);
    map_insert_block(list, 6, 3);
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].first_vblock, 2u);
    EXPECT_EQ(list[1].first_vblock, 6u);
    EXPECT_EQ(list[2].first_vblock, 10u);
}

TEST(ExtentMap, InsertWholeExtentMerges)
{
    ExtentList list = {{0, 4, 100}};
    map_insert_extent(list, Extent{4, 6, 104});
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{0, 10, 100}));
}

TEST(ExtentMap, RemoveFromEverything)
{
    ExtentList list = {{0, 4, 100}, {8, 4, 200}};
    std::vector<std::pair<Plba, std::uint64_t>> freed;
    map_remove_from(list, 0, freed);
    EXPECT_TRUE(list.empty());
    ASSERT_EQ(freed.size(), 2u);
    EXPECT_EQ(freed[0], std::make_pair(Plba{100}, std::uint64_t{4}));
    EXPECT_EQ(freed[1], std::make_pair(Plba{200}, std::uint64_t{4}));
}

TEST(ExtentMap, RemoveFromSplitsStraddler)
{
    ExtentList list = {{0, 10, 100}};
    std::vector<std::pair<Plba, std::uint64_t>> freed;
    map_remove_from(list, 6, freed);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{0, 6, 100}));
    ASSERT_EQ(freed.size(), 1u);
    EXPECT_EQ(freed[0], std::make_pair(Plba{106}, std::uint64_t{4}));
}

TEST(ExtentMap, RemoveFromBeyondEndIsNoop)
{
    ExtentList list = {{0, 4, 100}};
    std::vector<std::pair<Plba, std::uint64_t>> freed;
    map_remove_from(list, 10, freed);
    EXPECT_EQ(list.size(), 1u);
    EXPECT_TRUE(freed.empty());
}

TEST(ExtentMap, RemoveFromExactBoundary)
{
    ExtentList list = {{0, 4, 100}, {4, 4, 200}};
    std::vector<std::pair<Plba, std::uint64_t>> freed;
    map_remove_from(list, 4, freed);
    ASSERT_EQ(list.size(), 1u);
    EXPECT_EQ(list[0], (Extent{0, 4, 100}));
    ASSERT_EQ(freed.size(), 1u);
}

TEST(ExtentMapProperty, RandomInsertsMatchFlatReference)
{
    util::Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        // Random permutation of block -> pblock mappings.
        const std::uint64_t n = 64;
        std::vector<Plba> pblock(n);
        for (std::uint64_t i = 0; i < n; ++i)
            pblock[i] = rng.next_bool(0.5) ? 1000 + i /* contiguous run */
                                           : 5000 + rng.next_below(100000);
        std::vector<std::uint64_t> order(n);
        for (std::uint64_t i = 0; i < n; ++i)
            order[i] = i;
        for (std::uint64_t i = n; i > 1; --i)
            std::swap(order[i - 1], order[rng.next_below(i)]);

        ExtentList list;
        for (std::uint64_t v : order)
            map_insert_block(list, v, pblock[v]);

        ASSERT_TRUE(extent::is_valid_extent_list(list));
        EXPECT_EQ(extent::total_mapped_blocks(list), n);
        for (std::uint64_t v = 0; v < n; ++v)
            ASSERT_EQ(*map_lookup(list, v), pblock[v]) << "v=" << v;
        // Coalescing must have produced strictly fewer extents than
        // blocks whenever a contiguous run existed.
        bool has_contiguous = false;
        for (std::uint64_t v = 1; v < n; ++v)
            has_contiguous |= pblock[v] == pblock[v - 1] + 1;
        if (has_contiguous) {
            EXPECT_LT(list.size(), n);
        }
    }
}

} // namespace
} // namespace nesc::fs
