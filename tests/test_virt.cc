/**
 * @file
 * Unit tests for the virtualization layer: FileBlockIo, the emulated
 * and virtio virtual disks, GuestVm, and the cost structure of the
 * three attachment techniques.
 */
#include <gtest/gtest.h>

#include "blocklayer/device_block_io.h"
#include "storage/mem_block_device.h"
#include "virt/testbed.h"
#include "virt/virtual_disk.h"
#include "workloads/dd.h"

namespace nesc::virt {
namespace {

TestbedConfig
small_config()
{
    TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class VirtTest : public ::testing::Test {
  protected:
    VirtTest()
    {
        auto bed = Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
    }

    std::unique_ptr<Testbed> bed_;
};

// --- FileBlockIo ---------------------------------------------------------

TEST_F(VirtTest, FileBlockIoRoundTrip)
{
    auto ino = bed_->create_backing_file("/fio.img", 256, true);
    ASSERT_TRUE(ino.is_ok());
    FileBlockIo io(bed_->sim(), bed_->hv_fs(), *ino, 256, CostModel{});
    EXPECT_EQ(io.num_blocks(), 256u);
    std::vector<std::byte> out(2048), in(2048);
    wl::fill_pattern(31, 0, out);
    ASSERT_TRUE(io.write_blocks(10, 2, out).is_ok());
    ASSERT_TRUE(io.read_blocks(10, 2, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST_F(VirtTest, FileBlockIoSparseReadsZero)
{
    auto ino = bed_->create_backing_file("/sparse.img", 256, false);
    ASSERT_TRUE(ino.is_ok());
    FileBlockIo io(bed_->sim(), bed_->hv_fs(), *ino, 256, CostModel{});
    std::vector<std::byte> buf(1024, std::byte{0xee});
    ASSERT_TRUE(io.read_blocks(200, 1, buf).is_ok());
    for (std::byte b : buf)
        EXPECT_EQ(b, std::byte{0});
}

// --- Virtual disks: cost structure -------------------------------------------

TEST(VirtualDisk, VirtioChargesFixedOverheadPerRequest)
{
    sim::Simulator sim;
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 4 << 20;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    storage::MemBlockDevice dev(cfg);
    blk::DeviceBlockIo backing(sim, dev);
    CostModel costs;
    VirtioDisk disk(sim, backing, costs);

    std::vector<std::byte> buf(1024);
    const sim::Time t0 = sim.now();
    ASSERT_TRUE(disk.read_blocks(0, 1, buf).is_ok());
    const sim::Duration per_request = sim.now() - t0;
    const sim::Duration expected =
        costs.virtio_guest_submit + costs.vm_trap +
        costs.virtio_host_submit + costs.virtio_per_4k +
        costs.virtio_completion;
    EXPECT_EQ(per_request, expected);
    EXPECT_EQ(disk.requests(), 1u);
    EXPECT_EQ(disk.kicks(), 1u);
}

TEST(VirtualDisk, EmulationChargesPerTrap)
{
    sim::Simulator sim;
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 4 << 20;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    storage::MemBlockDevice dev(cfg);
    blk::DeviceBlockIo backing(sim, dev);
    CostModel costs;
    EmulatedDisk disk(sim, backing, costs);

    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(disk.read_blocks(0, 1, buf).is_ok());
    EXPECT_EQ(disk.traps(), costs.emu_traps_per_request + 1); // + irq
    // Emulation must cost more than virtio for the same request.
    sim::Simulator sim2;
    storage::MemBlockDevice dev2(cfg);
    blk::DeviceBlockIo backing2(sim2, dev2);
    VirtioDisk virtio(sim2, backing2, costs);
    ASSERT_TRUE(virtio.read_blocks(0, 1, buf).is_ok());
    EXPECT_GT(sim.now(), sim2.now());
}

TEST(VirtualDisk, DataIntegrityThroughBothPaths)
{
    sim::Simulator sim;
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 4 << 20;
    storage::MemBlockDevice dev(cfg);
    blk::DeviceBlockIo backing(sim, dev);
    CostModel costs;
    EmulatedDisk emu(sim, backing, costs);
    VirtioDisk virtio(sim, backing, costs);

    std::vector<std::byte> a(1024, std::byte{0x21});
    std::vector<std::byte> b(1024, std::byte{0x43});
    ASSERT_TRUE(emu.write_blocks(0, 1, a).is_ok());
    ASSERT_TRUE(virtio.write_blocks(1, 1, b).is_ok());
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(virtio.read_blocks(0, 1, back).is_ok());
    EXPECT_EQ(back, a);
    ASSERT_TRUE(emu.read_blocks(1, 1, back).is_ok());
    EXPECT_EQ(back, b);
}

// --- GuestVm -------------------------------------------------------------------

TEST_F(VirtTest, GuestFormatsAndRemountsItsFilesystem)
{
    auto vm = bed_->create_nesc_guest("/g.img", 8192, true);
    ASSERT_TRUE(vm.is_ok());
    ASSERT_TRUE((*vm)->format_fs().is_ok());
    auto ino = (*vm)->fs()->create("/f", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> data(3000, std::byte{0x3f});
    ASSERT_TRUE((*vm)->fs()->write(*ino, 0, data).is_ok());
    ASSERT_TRUE((*vm)->unmount_fs().is_ok());

    ASSERT_TRUE((*vm)->mount_fs().is_ok());
    auto again = (*vm)->fs()->resolve("/f");
    ASSERT_TRUE(again.is_ok());
    std::vector<std::byte> back(3000);
    ASSERT_EQ(*(*vm)->fs()->read(*again, 0, back), 3000u);
    EXPECT_EQ(back, data);
}

TEST_F(VirtTest, GuestFilesystemSurvivesVmTeardownAndReattach)
{
    // Write through one VM, destroy it, attach a new VM to the same
    // backing image, and read the data back — persistence across VM
    // lifecycles through the hypervisor file.
    {
        auto vm = bed_->create_nesc_guest("/persist.img", 8192, true);
        ASSERT_TRUE(vm.is_ok());
        ASSERT_TRUE((*vm)->format_fs().is_ok());
        auto ino = (*vm)->fs()->create("/keep", 0644);
        ASSERT_TRUE(ino.is_ok());
        std::vector<std::byte> data(512, std::byte{0x77});
        ASSERT_TRUE((*vm)->fs()->write(*ino, 0, data).is_ok());
        ASSERT_TRUE((*vm)->unmount_fs().is_ok());
        auto fn = bed_->guest_vf(**vm);
        ASSERT_TRUE(fn.is_ok());
        // Tear down the VF before the VM goes away.
        ASSERT_TRUE(bed_->pf().delete_vf(*fn).is_ok());
    }
    auto vm2 = bed_->create_nesc_guest("/persist.img", 8192, true);
    ASSERT_TRUE(vm2.is_ok());
    ASSERT_TRUE((*vm2)->mount_fs().is_ok());
    auto ino = (*vm2)->fs()->resolve("/keep");
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> back(512);
    ASSERT_EQ(*(*vm2)->fs()->read(*ino, 0, back), 512u);
    for (std::byte b : back)
        EXPECT_EQ(b, std::byte{0x77});
}

TEST_F(VirtTest, HostBaselineFasterThanAnyVirtualization)
{
    auto nesc_vm = bed_->create_nesc_guest("/o.img", 8192, true);
    ASSERT_TRUE(nesc_vm.is_ok());
    auto virtio_vm = bed_->create_virtio_guest_raw();
    ASSERT_TRUE(virtio_vm.is_ok());

    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 128 * 1024;
    dd.write = true;
    auto host = wl::run_dd_raw(bed_->sim(), bed_->host_raw_io(), dd);
    ASSERT_TRUE(host.is_ok());
    auto nesc_r = wl::run_dd_raw(bed_->sim(), (*nesc_vm)->raw_disk(), dd);
    ASSERT_TRUE(nesc_r.is_ok());
    dd.start_offset = 32ULL << 20;
    auto virtio = wl::run_dd_raw(bed_->sim(), (*virtio_vm)->raw_disk(), dd);
    ASSERT_TRUE(virtio.is_ok());

    EXPECT_LE(host->mean_latency_us, nesc_r->mean_latency_us);
    EXPECT_LT(nesc_r->mean_latency_us, virtio->mean_latency_us);
}

TEST_F(VirtTest, FileBackedGuestsShareTheHypervisorFilesystem)
{
    auto vm = bed_->create_virtio_guest_file("/vimg.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    std::vector<std::byte> data(1024, std::byte{0x5d});
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(42, 1, data).is_ok());
    ASSERT_TRUE((*vm)->device().flush().is_ok());

    auto ino = bed_->hv_fs().resolve("/vimg.img");
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> back(1024);
    auto got = bed_->hv_fs().read(*ino, 42 * 1024, back);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(back, data);
}

} // namespace
} // namespace nesc::virt
