/**
 * @file
 * End-to-end data integrity tests (PR 9): the CRC32C kernel, the
 * per-pLBA sidecar (storage::IntegrityMap), sticky media corruption in
 * the fault injector, the controller's verifying read path and
 * recovery ladder, the background scrubber, checksummed extent-tree
 * images (format v2), and nestfs metadata checksums with fsck
 * verification of seeded corruption.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "blocklayer/device_block_io.h"
#include "drivers/function_driver.h"
#include "drivers/pf_driver.h"
#include "extent/tree_image.h"
#include "extent/walker.h"
#include "fs/nestfs.h"
#include "nesc/controller.h"
#include "repl/replica_set.h"
#include "sim/simulator.h"
#include "storage/faulty_block_device.h"
#include "storage/integrity_map.h"
#include "storage/mem_block_device.h"
#include "util/crc32c.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

// --- CRC32C kernel -------------------------------------------------------

TEST(Crc32c, MatchesCastagnoliCheckValue)
{
    // The standard CRC-32C check value for "123456789".
    const char digits[] = "123456789";
    EXPECT_EQ(util::crc32c(digits, 9), 0xe3069283u);
}

TEST(Crc32c, EmptyInputIsZero)
{
    EXPECT_EQ(util::crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SeedChainingEqualsOneShot)
{
    std::vector<std::byte> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::byte>(i * 31 + 7);
    const std::uint32_t whole = util::crc32c(data);
    for (std::size_t split : {std::size_t{1}, std::size_t{63},
                              std::size_t{512}, std::size_t{1023}}) {
        const std::uint32_t first = util::crc32c(data.data(), split);
        const std::uint32_t chained =
            util::crc32c(data.data() + split, data.size() - split, first);
        EXPECT_EQ(chained, whole) << "split at " << split;
    }
}

TEST(Crc32c, SensitiveToSingleBitFlips)
{
    std::vector<std::byte> data(1024, std::byte{0x5a});
    const std::uint32_t clean = util::crc32c(data);
    for (std::size_t bit : {std::size_t{0}, std::size_t{17},
                            std::size_t{4000}, std::size_t{8191}}) {
        std::vector<std::byte> damaged = data;
        damaged[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        EXPECT_NE(util::crc32c(damaged), clean) << "bit " << bit;
    }
}

// --- IntegrityMap --------------------------------------------------------

storage::MemBlockDeviceConfig
small_media(std::uint64_t capacity_bytes = 4 << 20)
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = capacity_bytes;
    return cfg;
}

TEST(IntegrityMap, FormatCoversDataRegionOnly)
{
    storage::MemBlockDevice dev(small_media());
    const std::uint64_t total = dev.geometry().num_blocks();
    const std::uint64_t sidecar = storage::IntegrityMap::sidecar_blocks(
        total - 8, dev.geometry().logical_block_size);
    const std::uint64_t data_blocks = total - sidecar;
    auto map = storage::IntegrityMap::format(dev, data_blocks);
    ASSERT_TRUE(map.is_ok()) << map.status().to_string();
    EXPECT_EQ((*map)->data_blocks(), data_blocks);
    EXPECT_TRUE((*map)->covers(0));
    EXPECT_TRUE((*map)->covers(data_blocks - 1));
    EXPECT_FALSE((*map)->covers(data_blocks));
}

TEST(IntegrityMap, PreexistingDataVerifiesCleanAfterFormat)
{
    storage::MemBlockDevice dev(small_media());
    std::vector<std::byte> block(1024);
    wl::fill_pattern(3, 0, block);
    ASSERT_TRUE(dev.write(17 * 1024, block).is_ok());
    auto map = storage::IntegrityMap::format(dev, 1024);
    ASSERT_TRUE(map.is_ok());
    EXPECT_TRUE((*map)->verify(17, block));
    EXPECT_EQ((*map)->mismatches(), 0u);
}

TEST(IntegrityMap, DetectsEveryFlippedBlock)
{
    storage::MemBlockDevice dev(small_media());
    auto map_or = storage::IntegrityMap::format(dev, 1024);
    ASSERT_TRUE(map_or.is_ok());
    auto &map = **map_or;
    std::vector<std::byte> block(1024);
    wl::fill_pattern(9, 0, block);
    ASSERT_TRUE(map.record(5, block).is_ok());
    EXPECT_TRUE(map.verify(5, block));
    std::vector<std::byte> damaged = block;
    damaged[511] ^= std::byte{0x01};
    EXPECT_FALSE(map.verify(5, damaged));
    EXPECT_EQ(map.mismatches(), 1u);
    // Uncovered blocks always verify clean (no false positives past
    // the formatted region).
    EXPECT_TRUE(map.verify(100'000, damaged));
}

TEST(IntegrityMap, LoadRoundTripsRecordedChecksums)
{
    storage::MemBlockDevice dev(small_media());
    std::vector<std::byte> block(1024);
    wl::fill_pattern(41, 0, block);
    {
        auto map = storage::IntegrityMap::format(dev, 512);
        ASSERT_TRUE(map.is_ok());
        ASSERT_TRUE((*map)->record(7, block).is_ok());
    }
    auto reloaded = storage::IntegrityMap::load(dev, 512);
    ASSERT_TRUE(reloaded.is_ok()) << reloaded.status().to_string();
    EXPECT_TRUE((*reloaded)->verify(7, block));
    std::vector<std::byte> damaged = block;
    damaged[0] ^= std::byte{0x80};
    EXPECT_FALSE((*reloaded)->verify(7, damaged));
    // Geometry mismatch is a hard load failure, not silent reuse.
    EXPECT_FALSE(storage::IntegrityMap::load(dev, 513).is_ok());
}

// --- Sticky corruption in the fault injector -----------------------------

TEST(StickyCorruption, PersistsAcrossRereads)
{
    storage::MemBlockDevice inner(small_media());
    storage::FaultPlan plan;
    plan.seed = 77;
    plan.schedule.push_back({1, storage::InjectedFault::kCorruptSticky});
    storage::FaultyBlockDevice dev(inner, plan);

    std::vector<std::byte> block(1024), back(1024);
    wl::fill_pattern(5, 0, block);
    ASSERT_TRUE(dev.write(0, block).is_ok());   // op 0: clean write
    ASSERT_TRUE(dev.read(0, back).is_ok());     // op 1: sticky strike
    EXPECT_NE(back, block);
    EXPECT_EQ(dev.counters().get("sticky_corruptions"), 1u);
    // The damage lives in the stored block: every later read (and a
    // direct read of the inner device) returns the same damaged data.
    std::vector<std::byte> again(1024);
    ASSERT_TRUE(dev.read(0, again).is_ok());
    EXPECT_EQ(again, back);
    std::vector<std::byte> raw(1024);
    ASSERT_TRUE(inner.read(0, raw).is_ok());
    EXPECT_EQ(raw, back);
}

TEST(StickyCorruption, OwnRngStreamLeavesOtherDrawsUntouched)
{
    // The same seed must inject hard read errors at the same op
    // indices whether or not sticky corruption is also enabled.
    auto run = [](double sticky_prob) {
        storage::MemBlockDevice inner(small_media());
        storage::FaultPlan plan;
        plan.seed = 1234;
        plan.read_error_prob = 0.2;
        plan.corrupt_sticky_prob = sticky_prob;
        storage::FaultyBlockDevice dev(inner, plan);
        std::vector<std::byte> block(1024);
        std::vector<int> errors;
        for (int i = 0; i < 200; ++i)
            errors.push_back(dev.read(0, block).is_ok() ? 0 : 1);
        return errors;
    };
    EXPECT_EQ(run(0.0), run(0.5));
}

TEST(StickyCorruption, DeterministicUnderFixedSeed)
{
    auto run = [] {
        storage::MemBlockDevice inner(small_media());
        storage::FaultPlan plan;
        plan.seed = 9;
        plan.corrupt_sticky_prob = 0.05;
        storage::FaultyBlockDevice dev(inner, plan);
        std::vector<std::byte> block(1024);
        wl::fill_pattern(1, 0, block);
        for (int i = 0; i < 100; ++i)
            (void)dev.write((i % 32) * 1024, block);
        std::vector<std::uint32_t> crcs;
        for (int i = 0; i < 32; ++i) {
            (void)dev.read(i * 1024, block);
            crcs.push_back(util::crc32c(block));
        }
        return std::make_pair(dev.counters().get("sticky_corruptions"),
                              crcs);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_GT(a.first, 0u);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace nesc

// --- Controller: verifying read path -------------------------------------

namespace nesc::ctrl {
namespace {

/** Bare-metal controller with a checksum sidecar on the local media. */
class IntegrityHarness {
  public:
    explicit IntegrityHarness(std::uint64_t data_blocks = 4096)
        : host_memory_(32 << 20), device_(media(data_blocks)), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_, config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
        auto map = storage::IntegrityMap::format(device_, data_blocks);
        EXPECT_TRUE(map.is_ok()) << map.status().to_string();
        map_ = std::move(map).value();
        controller_.attach_integrity(map_.get());
    }

    static storage::MemBlockDeviceConfig
    media(std::uint64_t data_blocks)
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes =
            (data_blocks +
             storage::IntegrityMap::sidecar_blocks(data_blocks, 1024)) *
            1024;
        return cfg;
    }

    static ControllerConfig
    config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        return cfg;
    }

    /** Identity-mapped VF: vLBA == pLBA over [0, size_blocks). */
    pcie::FunctionId
    create_identity_vf(std::uint64_t size_blocks, pcie::FunctionId fn = 1)
    {
        extent::ExtentList extents{{0, size_blocks, 0}};
        auto image = extent::ExtentTreeImage::build(host_memory_, extents);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        EXPECT_TRUE(
            controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtExtentRoot,
                                    trees_.back().root(), 8)
                        .is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtDeviceSize, size_blocks, 8)
                        .is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtCommand,
                                    static_cast<std::uint64_t>(
                                        MgmtCommand::kCreateVf),
                                    8)
                        .is_ok());
        EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
        return fn;
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn)
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn,
            drv::FunctionDriverConfig{});
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    /** Flips one stored bit of pLBA @p plba behind the controller. */
    void
    damage_block(std::uint64_t plba, std::size_t byte = 100)
    {
        std::vector<std::byte> raw(1024);
        ASSERT_TRUE(device_.read(plba * 1024, raw).is_ok());
        raw[byte] ^= std::byte{0x04};
        ASSERT_TRUE(device_.write(plba * 1024, raw).is_ok());
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::unique_ptr<storage::IntegrityMap> map_;
    std::vector<extent::ExtentTreeImage> trees_;
};

TEST(ControllerIntegrity, CleanPathRecordsAndVerifies)
{
    IntegrityHarness h;
    auto vf = h.create_identity_vf(256);
    auto drv = h.make_driver(vf);
    std::vector<std::byte> out(8 * 1024), in(8 * 1024);
    wl::fill_pattern(2, 0, out);
    ASSERT_TRUE(drv->write_sync(0, 8, out).is_ok());
    ASSERT_TRUE(drv->read_sync(0, 8, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_GT(h.map_->records(), 0u);
    EXPECT_GT(h.map_->verifies(), 0u);
    EXPECT_EQ(h.controller_.integrity_mismatches(), 0u);
    EXPECT_EQ(h.controller_.stats(vf).checksum_errors, 0u);
}

TEST(ControllerIntegrity, PersistentDamageFailsWithChecksumError)
{
    IntegrityHarness h;
    auto vf = h.create_identity_vf(256);
    auto drv = h.make_driver(vf);
    std::vector<std::byte> out(1024), in(1024);
    wl::fill_pattern(4, 0, out);
    ASSERT_TRUE(drv->write_sync(9, 1, out).is_ok());
    h.damage_block(9);

    // Single-device path: re-reads cannot heal bitrot, so the guest
    // sees a distinct checksum failure, never the corrupt payload.
    util::Status status = drv->read_sync(9, 1, in);
    EXPECT_FALSE(status.is_ok());
    // >= 1: the driver retries retryable statuses, and every retry
    // detects the same persistent damage.
    EXPECT_GE(h.controller_.stats(vf).checksum_errors, 1u);
    EXPECT_GE(h.controller_.integrity_mismatches(), 1u);
    EXPECT_GT(h.controller_.counters().get("checksum_rereads"), 0u);
    EXPECT_GT(h.controller_.counters().get("checksum_mismatches"), 0u);
}

TEST(ControllerIntegrity, DisabledIntegrityDeliversDataUnchecked)
{
    IntegrityHarness h;
    auto vf = h.create_identity_vf(256);
    auto drv = h.make_driver(vf);
    std::vector<std::byte> out(1024), in(1024);
    wl::fill_pattern(6, 0, out);
    ASSERT_TRUE(drv->write_sync(3, 1, out).is_ok());
    h.damage_block(3);
    // Turn verification off through the PF register: the damaged
    // payload now flows through (the pre-integrity behaviour).
    ASSERT_TRUE(
        h.controller_.mmio_write(0, reg::kIntegrityCtrl, 0, 8).is_ok());
    ASSERT_TRUE(drv->read_sync(3, 1, in).is_ok());
    EXPECT_NE(out, in);
    EXPECT_EQ(h.controller_.stats(vf).checksum_errors, 0u);
}

TEST(ControllerIntegrity, RegistersArePfOnlyAndMasterAbortUnattached)
{
    IntegrityHarness h;
    auto vf = h.create_identity_vf(64);
    // VF access to the integrity block is a permission fault.
    EXPECT_FALSE(h.controller_.mmio_read(vf, reg::kIntegrityCtrl, 8)
                     .is_ok());
    EXPECT_FALSE(
        h.controller_.mmio_write(vf, reg::kIntegrityCtrl, 1, 8).is_ok());
    // The PF reads back its own configuration.
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kIntegrityCtrl, 8), 1u);
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kIntegrityRereadLimit, 8),
              1u);
    // Per-VF mismatch counter is visible on the VF's own page.
    EXPECT_EQ(*h.controller_.mmio_read(vf, reg::kStatChecksumErrors, 8),
              0u);

    // Detached: the whole block master-aborts (all-ones).
    h.controller_.attach_integrity(nullptr);
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kIntegrityCtrl, 8),
              ~std::uint64_t{0});
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kScrubStatus, 8),
              ~std::uint64_t{0});
}

TEST(ControllerIntegrity, ScrubFindsColdDamageOnLocalMedia)
{
    IntegrityHarness h;
    auto vf = h.create_identity_vf(256);
    auto drv = h.make_driver(vf);
    std::vector<std::byte> out(32 * 1024);
    wl::fill_pattern(8, 0, out);
    ASSERT_TRUE(drv->write_sync(0, 32, out).is_ok());
    h.damage_block(20);
    (void)vf;

    // No guest read touches block 20; only the scrubber can find it.
    ASSERT_TRUE(h.controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kScrubStart),
                                8)
                    .is_ok());
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
    EXPECT_TRUE(h.controller_.scrub_running());
    h.sim_.run_until_idle();
    EXPECT_FALSE(h.controller_.scrub_running());
    EXPECT_EQ(h.controller_.scrub_progress(), 4096u);
    EXPECT_GE(h.controller_.integrity_mismatches(), 1u);
    // Local media has no second copy: the damage is uncorrectable.
    EXPECT_EQ(h.controller_.scrub_errors(), 1u);
    EXPECT_EQ(h.controller_.counters().get("scrubs_completed"), 1u);
}

TEST(ControllerIntegrity, ScrubAbortStopsThePass)
{
    IntegrityHarness h;
    ASSERT_TRUE(h.controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kScrubStart),
                                8)
                    .is_ok());
    ASSERT_TRUE(h.controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kScrubAbort),
                                8)
                    .is_ok());
    EXPECT_FALSE(h.controller_.scrub_running());
    h.sim_.run_until_idle();
    // The epoch guard kept any in-flight batch from resurrecting it.
    EXPECT_FALSE(h.controller_.scrub_running());
    EXPECT_EQ(h.controller_.counters().get("scrubs_aborted"), 1u);
}

} // namespace
} // namespace nesc::ctrl

// --- Replicated recovery ladder and scrub repair -------------------------

namespace nesc::virt {
namespace {

TestbedConfig
integrity_config()
{
    TestbedConfig config;
    config.device.capacity_bytes = 32ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    config.integrity = TestbedIntegrityConfig{};
    TestbedReplicationConfig repl;
    repl.backends = 3;
    repl.media = storage::MemBlockDeviceConfig::ramdisk(
        0, 1); // rate 0 = fast; capacity auto-resized by the testbed
    config.replication = repl;
    return config;
}

/** Flips a stored bit of @p plba on backend @p index's raw media. */
void
damage_backend_block(Testbed &bed, std::size_t index, std::uint64_t plba)
{
    storage::BlockDevice &media = bed.replica_media(index);
    std::vector<std::byte> raw(1024);
    ASSERT_TRUE(media.read(plba * 1024, raw).is_ok());
    raw[50] ^= std::byte{0x10};
    ASSERT_TRUE(media.write(plba * 1024, raw).is_ok());
}

/**
 * Finds the pLBA backing the guest image's first block by scanning
 * backend 0's media for the marker block written through the guest.
 */
std::uint64_t
find_plba(Testbed &bed, std::span<const std::byte> marker)
{
    storage::BlockDevice &media = bed.replica_media(0);
    std::vector<std::byte> raw(1024);
    const std::uint64_t blocks = media.geometry().num_blocks();
    for (std::uint64_t b = 0; b < blocks; ++b) {
        if (!media.read(b * 1024, raw).is_ok())
            continue;
        if (std::memcmp(raw.data(), marker.data(), marker.size()) == 0)
            return b;
    }
    return ~std::uint64_t{0};
}

TEST(ReplicatedIntegrity, LadderRepairsDamagedReplicaInline)
{
    auto bed = Testbed::create(integrity_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    ASSERT_NE((*bed)->integrity_map(), nullptr);
    auto vm = (*bed)->create_nesc_guest("/ladder.img", 64);
    ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();

    std::vector<std::byte> out(1024), in(1024);
    wl::fill_pattern(99, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 1, out).is_ok());
    (*bed)->sim().run_until_idle();

    const std::uint64_t plba = find_plba(**bed, out);
    ASSERT_NE(plba, ~std::uint64_t{0});
    // Damage two of the three copies: whichever backend serves the
    // read, the ladder must locate the last verified copy and repair
    // the damaged serving copy in place.
    damage_backend_block(**bed, 0, plba);
    damage_backend_block(**bed, 1, plba);

    ASSERT_TRUE((*vm)->raw_disk().read_blocks(0, 1, in).is_ok());
    EXPECT_EQ(out, in); // never the corrupt payload
    drv::PfDriver &pf = (*bed)->pf();
    EXPECT_TRUE(pf.integrity_attached());
    auto mismatches = pf.integrity_mismatches();
    ASSERT_TRUE(mismatches.is_ok());
    auto repairs = pf.integrity_repairs();
    ASSERT_TRUE(repairs.is_ok());
    // If the read happened to route to the undamaged backend no
    // mismatch fires; otherwise the ladder must have repaired.
    if (*mismatches > 0)
        EXPECT_GE(*repairs, 1u);

    // A follow-up scrub heals every remaining damaged copy.
    ASSERT_TRUE(pf.scrub_start().is_ok());
    ASSERT_TRUE(pf.scrub_wait().is_ok());
    repl::ReplicaSet *set = (*bed)->replicas();
    EXPECT_TRUE(*set->verify_equal(0, 1));
    EXPECT_TRUE(*set->verify_equal(0, 2));
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(0, 1, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST(ReplicatedIntegrity, ScrubRepairsColdDamageFromReplica)
{
    auto bed = Testbed::create(integrity_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    auto vm = (*bed)->create_nesc_guest("/scrub.img", 64);
    ASSERT_TRUE(vm.is_ok());

    std::vector<std::byte> out(8 * 1024);
    wl::fill_pattern(31, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 8, out).is_ok());
    (*bed)->sim().run_until_idle();

    const std::uint64_t plba =
        find_plba(**bed, std::span<const std::byte>(out).first(1024));
    ASSERT_NE(plba, ~std::uint64_t{0});
    damage_backend_block(**bed, 2, plba);
    repl::ReplicaSet *set = (*bed)->replicas();
    EXPECT_FALSE(*set->verify_equal(0, 2));

    drv::PfDriver &pf = (*bed)->pf();
    ASSERT_TRUE(pf.set_scrub_rate(128, 50'000).is_ok());
    ASSERT_TRUE(pf.scrub_start().is_ok());
    auto polls = pf.scrub_wait();
    ASSERT_TRUE(polls.is_ok()) << polls.status().to_string();
    EXPECT_FALSE(*pf.scrub_running());

    // The scrubber verified every backend's copy and repaired the
    // damaged one from a verified peer: bit-identity restored.
    EXPECT_TRUE(*set->verify_equal(0, 2));
    EXPECT_TRUE(*set->verify_equal(0, 1));
    auto repairs = pf.integrity_repairs();
    ASSERT_TRUE(repairs.is_ok());
    EXPECT_GE(*repairs, 1u);
    EXPECT_EQ(*pf.scrub_errors(), 0u);
    EXPECT_EQ(set->repairs(), *repairs);
}

TEST(ReplicatedIntegrity, ScrubReadRefusesStaleCopies)
{
    sim::Simulator sim;
    repl::ReplicaSetConfig cfg;
    cfg.quorum = 1;
    repl::ReplicaSet set(sim, cfg);
    repl::BackendConfig backend;
    backend.link_bytes_per_sec = 0;
    backend.link_latency = 1'000;
    backend.journal_blocks = 16;
    const storage::MemBlockDeviceConfig media =
        storage::MemBlockDeviceConfig::ramdisk(0, 1 << 20);
    std::vector<std::unique_ptr<storage::MemBlockDevice>> devs;
    for (int i = 0; i < 2; ++i) {
        devs.push_back(std::make_unique<storage::MemBlockDevice>(media));
        set.add_backend(*devs.back(), backend);
    }
    std::vector<std::byte> data(1024), in(1024);
    wl::fill_pattern(12, 0, data);
    bool fired = false;
    set.write(4, data, [&](util::Status s) {
        EXPECT_TRUE(s.is_ok());
        fired = true;
    });
    sim.run_until_idle();
    ASSERT_TRUE(fired);

    EXPECT_TRUE(set.scrub_read(0, 4, in).is_ok());
    EXPECT_EQ(in, data);
    // A demoted backend must be refused as a scrub source, as must an
    // out-of-range backend index.
    set.demote_backend(1);
    EXPECT_FALSE(set.scrub_read(1, 4, in).is_ok());
    EXPECT_FALSE(set.scrub_read(9, 4, in).is_ok());
}

} // namespace
} // namespace nesc::virt

// --- Extent-tree format v2 (checksummed nodes) ---------------------------

namespace nesc::extent {
namespace {

ExtentList
many_extents(std::size_t count)
{
    ExtentList list;
    for (std::size_t i = 0; i < count; ++i)
        list.push_back(Extent{i * 8, 4, 1000 + i * 4});
    return list;
}

TEST(ChecksummedTree, BuildsVerifiesAndLooksUp)
{
    pcie::HostMemory memory(8 << 20);
    TreeConfig config;
    config.fanout = 8;
    config.checksummed = true;
    auto image = ExtentTreeImage::build(memory, many_extents(200), config);
    ASSERT_TRUE(image.is_ok()) << image.status().to_string();
    // Walks verify every node's trailer silently on the good path.
    auto hit = lookup(memory, image->root(), 3 * 8 + 1);
    ASSERT_TRUE(hit.is_ok()) << hit.status().to_string();
    EXPECT_EQ(hit->outcome, LookupOutcome::kMapped);
    EXPECT_EQ(hit->extent.first_pblock, 1000u + 3 * 4);
    auto all = enumerate(memory, image->root());
    ASSERT_TRUE(all.is_ok());
    EXPECT_EQ(all->size(), 200u);
}

TEST(ChecksummedTree, FlippedChildPointerFaultsInsteadOfWalkingOff)
{
    pcie::HostMemory memory(8 << 20);
    TreeConfig config;
    config.fanout = 8;
    config.checksummed = true;
    auto image = ExtentTreeImage::build(memory, many_extents(200), config);
    ASSERT_TRUE(image.is_ok());

    // Corrupt entry 0 of the root: point its child somewhere
    // plausible but wrong. Without the trailer this descends into
    // unrelated memory; with it the walk faults immediately.
    auto rec = memory.read_pod<NodePtrRecord>(entry_addr(image->root(), 0));
    ASSERT_TRUE(rec.is_ok());
    NodePtrRecord bad = *rec;
    bad.child ^= 0x40;
    ASSERT_TRUE(
        memory.write_pod(entry_addr(image->root(), 0), bad).is_ok());

    auto hit = lookup(memory, image->root(), 0);
    EXPECT_FALSE(hit.is_ok());
    EXPECT_EQ(hit.status().code(), util::ErrorCode::kDataLoss);
}

TEST(ChecksummedTree, PruneResealsTheParentNode)
{
    pcie::HostMemory memory(8 << 20);
    TreeConfig config;
    config.fanout = 8;
    config.checksummed = true;
    auto image = ExtentTreeImage::build(memory, many_extents(200), config);
    ASSERT_TRUE(image.is_ok());
    auto pruned = image->prune_range(0, 64);
    ASSERT_TRUE(pruned.is_ok());
    EXPECT_GT(*pruned, 0u);
    // The pruned region reads as kPruned (a legal, verified outcome),
    // not as a checksum fault; untouched regions still resolve.
    auto hole = lookup(memory, image->root(), 0);
    ASSERT_TRUE(hole.is_ok()) << hole.status().to_string();
    EXPECT_EQ(hole->outcome, LookupOutcome::kPruned);
    auto hit = lookup(memory, image->root(), 100 * 8);
    ASSERT_TRUE(hit.is_ok());
    EXPECT_EQ(hit->outcome, LookupOutcome::kMapped);
}

TEST(ChecksummedTree, V1ImagesAreByteIdenticalToBefore)
{
    // The default config must keep writing v1 magic with no trailer:
    // golden figures depend on the unchanged layout.
    pcie::HostMemory memory(1 << 20);
    auto image = ExtentTreeImage::build(memory, many_extents(4));
    ASSERT_TRUE(image.is_ok());
    auto header = memory.read_pod<NodeHeaderRecord>(image->root());
    ASSERT_TRUE(header.is_ok());
    EXPECT_EQ(header->magic, kNodeMagic);
    EXPECT_EQ(image->footprint_bytes(), node_footprint(64));
}

} // namespace
} // namespace nesc::extent

// --- nestfs metadata checksums + fsck seeded corruption ------------------

namespace nesc::fs {
namespace {

storage::MemBlockDeviceConfig
fast_fs_media()
{
    return storage::MemBlockDeviceConfig::ramdisk(0, 8 << 20);
}

NestFsConfig
checksummed_config()
{
    NestFsConfig cfg;
    cfg.meta_checksums = true;
    return cfg;
}

/**
 * Populated volume with a directory tree and four 8-block files,
 * cleanly unmounted, plus raw-media corruption helpers for seeding
 * fsck findings.
 */
class SeededVolume {
  public:
    explicit SeededVolume(NestFsConfig cfg)
        : device_(fast_fs_media()), io_(sim_, device_)
    {
        // No journal: mount-time replay would paper over the raw
        // corruption these tests seed (fsck is exactly for the damage
        // classes journaling cannot undo).
        cfg.journal_mode = JournalMode::kNone;
        auto fs = NestFs::format(io_, cfg);
        EXPECT_TRUE(fs.is_ok()) << fs.status().to_string();
        EXPECT_TRUE((*fs)->mkdir_p("/a/b", 0755).is_ok());
        for (int i = 0; i < 4; ++i) {
            auto ino =
                (*fs)->create("/a/b/f" + std::to_string(i), 0644);
            EXPECT_TRUE(ino.is_ok());
            inodes_.push_back(*ino);
            EXPECT_TRUE(
                (*fs)->truncate(*ino, 8 * kFsBlockSize).is_ok());
            EXPECT_TRUE((*fs)->allocate_range(*ino, 0, 8).is_ok());
            auto extents = (*fs)->fiemap(*ino);
            EXPECT_TRUE(extents.is_ok());
            EXPECT_FALSE(extents->empty());
            first_pblock_.push_back(extents->front().first_pblock);
        }
        EXPECT_TRUE((*fs)->unmount().is_ok());
    }

    SuperBlock
    read_super()
    {
        std::vector<std::byte> raw(kFsBlockSize);
        EXPECT_TRUE(device_.read(0, raw).is_ok());
        SuperBlock sb;
        std::memcpy(&sb, raw.data(), sizeof(sb));
        return sb;
    }

    /** Rewrites one on-disk inode through @p mutate (no CRC fixup). */
    void
    patch_inode(InodeId ino, void (*mutate)(DiskInode &))
    {
        const SuperBlock sb = read_super();
        const std::uint64_t blockno =
            sb.itable_start + (ino - 1) / kInodesPerBlock;
        const std::uint32_t slot = (ino - 1) % kInodesPerBlock;
        std::vector<std::byte> raw(kFsBlockSize);
        ASSERT_TRUE(device_.read(blockno * kFsBlockSize, raw).is_ok());
        DiskInode di;
        std::memcpy(&di, raw.data() + slot * kInodeSize, sizeof(di));
        mutate(di);
        std::memcpy(raw.data() + slot * kInodeSize, &di, sizeof(di));
        ASSERT_TRUE(device_.write(blockno * kFsBlockSize, raw).is_ok());
    }

    /** Marks one currently-free data block allocated in the bitmap. */
    std::uint64_t
    seed_bitmap_leak()
    {
        const SuperBlock sb = read_super();
        std::vector<std::byte> raw(kFsBlockSize);
        for (std::uint64_t b = sb.total_blocks - 1; b >= sb.data_start;
             --b) {
            const std::uint64_t blockno =
                sb.bitmap_start + b / (8 * kFsBlockSize);
            const std::uint64_t bit = b % (8 * kFsBlockSize);
            EXPECT_TRUE(
                device_.read(blockno * kFsBlockSize, raw).is_ok());
            const auto mask =
                static_cast<std::byte>(1u << (bit % 8));
            if ((raw[bit / 8] & mask) == std::byte{0}) {
                raw[bit / 8] |= mask;
                EXPECT_TRUE(
                    device_.write(blockno * kFsBlockSize, raw).is_ok());
                return b;
            }
        }
        return 0;
    }

    util::Result<std::unique_ptr<NestFs>>
    mount()
    {
        return NestFs::mount(io_);
    }

    sim::Simulator sim_;
    storage::MemBlockDevice device_;
    blk::DeviceBlockIo io_;
    std::vector<InodeId> inodes_;
    std::vector<std::uint64_t> first_pblock_;
};

TEST(NestFsMetaChecksums, CleanVolumeMountsAndFscksClean)
{
    SeededVolume vol(checksummed_config());
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok()) << fs.status().to_string();
    EXPECT_TRUE((*fs)->meta_checksums());
    EXPECT_EQ((*fs)->superblock().version, kSuperVersionChecksummed);
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_TRUE(report->clean)
        << (report->errors.empty() ? "" : report->errors.front());
    EXPECT_EQ(report->checksum_errors, 0u);
}

TEST(NestFsMetaChecksums, V1VolumesStayUncheckedAndCompatible)
{
    SeededVolume vol(NestFsConfig{});
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok());
    EXPECT_FALSE((*fs)->meta_checksums());
    EXPECT_EQ((*fs)->superblock().version, kSuperVersionBase);
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report->clean);
    EXPECT_EQ(report->checksum_errors, 0u);
}

TEST(NestFsMetaChecksums, CorruptSuperblockRefusesToMount)
{
    SeededVolume vol(checksummed_config());
    // Flip a geometry field the magic check would never notice.
    std::vector<std::byte> raw(kFsBlockSize);
    ASSERT_TRUE(vol.device_.read(0, raw).is_ok());
    SuperBlock sb;
    std::memcpy(&sb, raw.data(), sizeof(sb));
    sb.data_start += 1;
    std::memcpy(raw.data(), &sb, sizeof(sb));
    ASSERT_TRUE(vol.device_.write(0, raw).is_ok());
    auto fs = vol.mount();
    ASSERT_FALSE(fs.is_ok());
    EXPECT_EQ(fs.status().code(), util::ErrorCode::kDataLoss);
}

TEST(NestFsMetaChecksums, FsckFlagsInodeBitrot)
{
    SeededVolume vol(checksummed_config());
    // Damage a file inode's size field directly in the inode table;
    // the stale CRC convicts it.
    vol.patch_inode(vol.inodes_[2],
                    [](DiskInode &di) { di.size_bytes += kFsBlockSize; });
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok()) << fs.status().to_string();
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_FALSE(report->clean);
    EXPECT_GE(report->checksum_errors, 1u);
    bool named = false;
    for (const auto &e : report->errors)
        named |= e.find("checksum") != std::string::npos;
    EXPECT_TRUE(named);
}

// --- fsck against seeded structural corruption ---------------------------

TEST(FsckSeededCorruption, DetectsBitmapLeak)
{
    SeededVolume vol(NestFsConfig{});
    const std::uint64_t leaked = vol.seed_bitmap_leak();
    ASSERT_NE(leaked, 0u);
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok());
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_FALSE(report->clean);
    EXPECT_EQ(report->leaked_blocks, 1u);
}

namespace {
std::uint64_t g_patch_pblock = 0;
} // namespace

TEST(FsckSeededCorruption, DetectsDoubleAllocatedBlock)
{
    SeededVolume vol(NestFsConfig{});
    // Point f1's first extent at f0's allocation: that block is now
    // referenced twice (and f1's own blocks leak).
    g_patch_pblock = vol.first_pblock_[0];
    vol.patch_inode(vol.inodes_[1], [](DiskInode &di) {
        di.extents[0].first_pblock = g_patch_pblock;
    });
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok());
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_FALSE(report->clean);
    bool found = false;
    for (const auto &e : report->errors)
        found |= e.find("referenced more than once") != std::string::npos;
    EXPECT_TRUE(found);
    EXPECT_GT(report->leaked_blocks, 0u);
}

TEST(FsckSeededCorruption, DetectsOutOfRangeExtent)
{
    SeededVolume vol(NestFsConfig{});
    // Point f3's first extent past the end of the volume.
    const SuperBlock sb = vol.read_super();
    g_patch_pblock = sb.total_blocks + 100;
    vol.patch_inode(vol.inodes_[3], [](DiskInode &di) {
        di.extents[0].first_pblock = g_patch_pblock;
    });
    auto fs = vol.mount();
    ASSERT_TRUE(fs.is_ok());
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_FALSE(report->clean);
    bool found = false;
    for (const auto &e : report->errors)
        found |= e.find("out-of-area") != std::string::npos;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace nesc::fs
