/**
 * @file
 * Unit and register-level tests for the always-on telemetry plane:
 * SloWatch (windowed accounting, adaptive sampling, breach directory),
 * FlightRecorder (rings, postmortems), TimeSeriesSampler, the
 * Prometheus exposition, the PF-only observability register block and
 * its PfDriver helpers, plus the pinned LogHistogram percentile edge
 * cases and the simulator's timer-lane ordering invariance.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "drivers/function_driver.h"
#include "nesc/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

// --- LogHistogram percentile edge cases (pinned) ----------------------

TEST(LogHistogramEdges, EmptyReturnsZeroForEveryP)
{
    obs::LogHistogram h;
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(50.0), 0.0);
    EXPECT_EQ(h.percentile(100.0), 0.0);
    EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(LogHistogramEdges, OutOfRangePClampsToMinMax)
{
    obs::LogHistogram h;
    h.observe(100);
    h.observe(1000);
    h.observe(10000);
    EXPECT_EQ(h.percentile(0.0), 100.0);
    EXPECT_EQ(h.percentile(-5.0), 100.0);
    EXPECT_EQ(h.percentile(100.0), 10000.0);
    EXPECT_EQ(h.percentile(250.0), 10000.0);
}

TEST(LogHistogramEdges, NanPResolvesToMin)
{
    obs::LogHistogram h;
    h.observe(7);
    h.observe(900);
    EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), 7.0);
}

TEST(LogHistogramEdges, SingleSampleIsEveryPercentile)
{
    obs::LogHistogram h;
    h.observe(4242);
    for (const double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0})
        EXPECT_EQ(h.percentile(p), 4242.0) << "p=" << p;
}

TEST(LogHistogramEdges, ObserveBatchMatchesPerElementObserve)
{
    obs::LogHistogram one, batch;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 300; ++i)
        values.push_back((i * 2654435761u) % 1'000'000);
    for (const std::uint64_t v : values)
        one.observe(v);
    batch.observe_batch(values.data(), values.size());
    EXPECT_EQ(batch.count(), one.count());
    EXPECT_EQ(batch.sum(), one.sum());
    EXPECT_EQ(batch.min(), one.min());
    EXPECT_EQ(batch.max(), one.max());
    for (const double p : {1.0, 50.0, 99.0, 99.9})
        EXPECT_EQ(batch.percentile(p), one.percentile(p)) << "p=" << p;
}

TEST(LogHistogramEdges, ObserveStridedFoldsOneAosField)
{
    // Array-of-structs with 4 u64 fields; fold field 2 only.
    struct Rec {
        std::uint64_t v[4];
    };
    std::vector<Rec> recs;
    obs::LogHistogram expect;
    for (std::uint64_t i = 0; i < 100; ++i) {
        recs.push_back({{i, i * 10, i * 100 + 5, i * 1000}});
        expect.observe(i * 100 + 5);
    }
    obs::LogHistogram strided;
    strided.observe_strided(&recs[0].v[2], 4, recs.size());
    EXPECT_EQ(strided.count(), expect.count());
    EXPECT_EQ(strided.sum(), expect.sum());
    EXPECT_EQ(strided.min(), expect.min());
    EXPECT_EQ(strided.max(), expect.max());
}

// --- SloWatch ---------------------------------------------------------

TEST(SloWatch, DisabledIsInert)
{
    obs::SloWatch slo;
    EXPECT_FALSE(slo.enabled());
    slo.observe_ok(1, 100, 10, 20, 70);
    slo.note_op(1, true);
    slo.rotate(1000);
    EXPECT_EQ(slo.window(1, 0), nullptr);
    EXPECT_EQ(slo.window_ops(1), 0u);
    EXPECT_EQ(slo.windows_rotated(), 0u);
    EXPECT_EQ(slo.limits(1).max_p99_ns, 0u);
}

TEST(SloWatch, RotationExposesClosedSnapshot)
{
    obs::SloWatch slo;
    slo.enable(4, 0);
    for (int i = 0; i < 5; ++i)
        slo.observe_ok(2, 1000 + i, 100, 200, 700);
    // Nothing readable before rotation: the staged samples belong to
    // the still-open current window.
    EXPECT_EQ(slo.window_ops(2), 0u);
    slo.rotate(1'000'000);
    ASSERT_NE(slo.window(2, obs::SloWatch::kEndToEnd), nullptr);
    EXPECT_EQ(slo.window(2, obs::SloWatch::kEndToEnd)->count(), 5u);
    EXPECT_EQ(slo.window_ops(2), 5u);
    EXPECT_EQ(slo.window_errors(2), 0u);
    EXPECT_EQ(slo.window_start(2), 0u);
    // An idle window hides the stale snapshot behind the epoch check.
    slo.rotate(2'000'000);
    EXPECT_EQ(slo.window(2, obs::SloWatch::kEndToEnd)->count(), 0u);
    EXPECT_EQ(slo.window_ops(2), 0u);
}

TEST(SloWatch, StagingDrainsAtRotationAndAtBatchBoundary)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    // Exactly one full staging batch drains mid-window...
    for (std::size_t i = 0; i < obs::SloWatch::kStageBatch; ++i)
        slo.observe_ok(1, 500, 50, 100, 350);
    // ...plus a partial batch that only rotation may fold.
    slo.observe_ok(1, 9000, 50, 100, 350);
    slo.rotate(1'000'000);
    const auto *e2e = slo.window(1, obs::SloWatch::kEndToEnd);
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->count(), obs::SloWatch::kStageBatch + 1);
    EXPECT_EQ(e2e->max(), 9000u);
    EXPECT_EQ(slo.window_ops(1), obs::SloWatch::kStageBatch + 1);
}

TEST(SloWatch, AdaptiveSamplingExactPrefixThenOneInEight)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    const std::uint32_t beyond = 800;
    const std::uint32_t total = obs::SloWatch::kExactPerWindow + beyond;
    for (std::uint32_t i = 0; i < total; ++i)
        slo.observe_ok(1, 1000, 100, 200, 700);
    slo.rotate(1'000'000);
    // Ops count is always exact; only the histograms thin out.
    EXPECT_EQ(slo.window_ops(1), total);
    const auto *e2e = slo.window(1, obs::SloWatch::kEndToEnd);
    ASSERT_NE(e2e, nullptr);
    const std::uint64_t sampled =
        obs::SloWatch::kExactPerWindow +
        (beyond + obs::SloWatch::kSampleMask) /
            (obs::SloWatch::kSampleMask + 1);
    EXPECT_EQ(e2e->count(), sampled);
    // Every per-stage histogram sampled the same schedule.
    EXPECT_EQ(slo.window(1, obs::SloWatch::kQueue)->count(), sampled);
    EXPECT_EQ(slo.window(1, obs::SloWatch::kTransfer)->count(), sampled);
}

TEST(SloWatch, SamplingGateResetsEachWindow)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    for (int i = 0; i < 500; ++i)
        slo.observe_ok(1, 1000, 100, 200, 700);
    slo.rotate(1'000'000);
    // A lightly loaded next window is back to full fidelity.
    for (int i = 0; i < 10; ++i)
        slo.observe_ok(1, 2000, 100, 200, 1700);
    slo.rotate(2'000'000);
    EXPECT_EQ(slo.window(1, obs::SloWatch::kEndToEnd)->count(), 10u);
    EXPECT_EQ(slo.window_ops(1), 10u);
}

TEST(SloWatch, LatencyBreachOncePerWindow)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    slo.set_limits(1, {1'000, 0});
    int hook_calls = 0;
    slo.set_breach_hook([&](const obs::SloBreach &b) {
        ++hook_calls;
        EXPECT_EQ(b.fn, 1u);
        EXPECT_EQ(b.metric, obs::SloMetric::kLatencyP99);
        EXPECT_EQ(b.threshold, 1'000u);
        EXPECT_GT(b.observed, 1'000u);
    });
    // Hundreds of violating ops in one window raise exactly one
    // breach: evaluation happens only at rotation.
    for (int i = 0; i < 300; ++i)
        slo.observe_ok(1, 50'000, 100, 200, 700);
    slo.rotate(1'000'000);
    EXPECT_EQ(hook_calls, 1);
    EXPECT_EQ(slo.breaches_raised(), 1u);
    ASSERT_EQ(slo.breaches().size(), 1u);
    EXPECT_EQ(slo.breaches().front().window_start, 0u);
    // A healthy next window raises nothing.
    for (int i = 0; i < 10; ++i)
        slo.observe_ok(1, 100, 10, 20, 70);
    slo.rotate(2'000'000);
    EXPECT_EQ(hook_calls, 1);
}

TEST(SloWatch, ErrorRateBreach)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    slo.set_limits(1, {0, 100'000}); // 10% error ceiling
    for (int i = 0; i < 8; ++i)
        slo.observe_ok(1, 100, 10, 20, 70);
    slo.note_op(1, true);
    slo.note_op(1, true); // 2 errors in 10 ops = 200000 ppm
    slo.rotate(1'000'000);
    ASSERT_EQ(slo.breaches().size(), 1u);
    EXPECT_EQ(slo.breaches().front().metric, obs::SloMetric::kErrorRate);
    EXPECT_EQ(slo.breaches().front().observed, 200'000u);
    EXPECT_EQ(slo.window_errors(1), 2u);
    EXPECT_EQ(slo.window_ops(1), 10u);
}

TEST(SloWatch, BreachDirectoryDropsOldest)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    slo.set_limits(1, {1, 0});
    const std::size_t rounds = obs::SloWatch::kMaxBreaches + 5;
    for (std::size_t i = 0; i < rounds; ++i) {
        slo.observe_ok(1, 1'000'000, 100, 200, 700);
        slo.rotate((i + 1) * 1'000'000);
    }
    EXPECT_EQ(slo.breaches_raised(), rounds);
    EXPECT_EQ(slo.breaches().size(), obs::SloWatch::kMaxBreaches);
    EXPECT_EQ(slo.breaches_dropped(), 5u);
    // Oldest entries were dropped: the head is the 6th breach.
    EXPECT_EQ(slo.breaches().front().window_start, 5'000'000u);
    slo.clear_breaches();
    EXPECT_EQ(slo.breaches().size(), 0u);
}

TEST(SloWatch, DisableGatesReadersAndKeepsBreachForensics)
{
    obs::SloWatch slo;
    slo.enable(2, 0);
    slo.set_limits(1, {1, 0});
    slo.observe_ok(1, 1'000'000, 100, 200, 700);
    slo.rotate(1'000'000);
    ASSERT_EQ(slo.breaches().size(), 1u);
    slo.disable();
    EXPECT_FALSE(slo.enabled());
    EXPECT_EQ(slo.window(1, 0), nullptr);
    EXPECT_EQ(slo.window_ops(1), 0u);
    EXPECT_EQ(slo.limits(1).max_p99_ns, 0u);
    // The breach directory survives the plane being turned off.
    EXPECT_EQ(slo.breaches().size(), 1u);
    // Re-enable starts from fresh windows.
    slo.enable(2, 2'000'000);
    EXPECT_EQ(slo.window_ops(1), 0u);
    EXPECT_EQ(slo.windows_rotated(), 0u);
}

// --- FlightRecorder ---------------------------------------------------

TEST(FlightRecorder, DisabledIsInert)
{
    obs::FlightRecorder fr;
    fr.record(0, obs::FlightEventType::kDoorbell, 10, 1, 0, 0);
    fr.snapshot(0, obs::PostmortemReason::kFault, 10);
    EXPECT_EQ(fr.retained(0), 0u);
    EXPECT_EQ(fr.postmortems().size(), 0u);
}

TEST(FlightRecorder, DepthRoundsUpToPowerOfTwo)
{
    obs::FlightRecorder fr;
    fr.enable(2, 33);
    EXPECT_EQ(fr.depth(), 64u);
    fr.enable(2, 1);
    EXPECT_EQ(fr.depth(), 1u);
    fr.enable(2, 0); // clamps to at least one slot
    EXPECT_EQ(fr.depth(), 1u);
}

TEST(FlightRecorder, RingWrapRetainsLatestEvents)
{
    obs::FlightRecorder fr;
    fr.enable(2, 4);
    for (std::uint32_t i = 0; i < 10; ++i)
        fr.record(1, obs::FlightEventType::kFetch, 100 + i, i, i * 8, 0);
    EXPECT_EQ(fr.retained(1), 4u);
    fr.snapshot(1, obs::PostmortemReason::kQuarantine, 500, 7);
    ASSERT_EQ(fr.postmortems().size(), 1u);
    const obs::Postmortem &pm = fr.postmortems().front();
    EXPECT_EQ(pm.reason, obs::PostmortemReason::kQuarantine);
    EXPECT_EQ(pm.detail, 7u);
    ASSERT_EQ(pm.events.size(), 4u);
    // Oldest first, and only the latest depth events survive.
    EXPECT_EQ(pm.events.front().tag, 6u);
    EXPECT_EQ(pm.events.back().tag, 9u);
}

TEST(FlightRecorder, SameShapeReenableRewindsRings)
{
    obs::FlightRecorder fr;
    fr.enable(4, 8);
    fr.record(2, obs::FlightEventType::kComplete, 10, 5, 0, 0);
    fr.snapshot(2, obs::PostmortemReason::kFault, 20);
    fr.disable();
    EXPECT_FALSE(fr.enabled());
    EXPECT_EQ(fr.retained(2), 0u);
    // Postmortems survive the disable/enable cycle; the rings do not.
    fr.enable(4, 8);
    EXPECT_EQ(fr.retained(2), 0u);
    EXPECT_EQ(fr.postmortems().size(), 1u);
    fr.record(2, obs::FlightEventType::kDoorbell, 30, 6, 0, 0);
    EXPECT_EQ(fr.retained(2), 1u);
}

TEST(FlightRecorder, PostmortemBufferDropsOldest)
{
    obs::FlightRecorder fr;
    fr.enable(1, 2);
    const std::size_t extra = 3;
    for (std::size_t i = 0;
         i < obs::FlightRecorder::kMaxPostmortems + extra; ++i) {
        fr.record(0, obs::FlightEventType::kFault, i, i, 0, 0);
        fr.snapshot(0, obs::PostmortemReason::kFault, i, i);
    }
    EXPECT_EQ(fr.postmortems().size(),
              obs::FlightRecorder::kMaxPostmortems);
    EXPECT_EQ(fr.postmortems_taken(),
              obs::FlightRecorder::kMaxPostmortems + extra);
    EXPECT_EQ(fr.postmortems_dropped(), extra);
    EXPECT_EQ(fr.postmortems().front().detail, extra);
    fr.clear_postmortems();
    EXPECT_EQ(fr.postmortems().size(), 0u);
}

TEST(FlightRecorder, PostmortemJsonIsBalancedAndNamed)
{
    obs::FlightRecorder fr;
    fr.enable(1, 4);
    fr.record(0, obs::FlightEventType::kDoorbell, 10, 42, 0, 3);
    fr.record(0, obs::FlightEventType::kFault, 20, 42, 128, 1);
    fr.snapshot(0, obs::PostmortemReason::kChecksumError, 30, 128);
    const std::string json = fr.postmortem_json();
    long depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(json.find("\"reason\": \"checksum_error\""),
              std::string::npos);
    EXPECT_NE(json.find("\"type\": \"doorbell\""), std::string::npos);
    EXPECT_NE(json.find("\"type\": \"fault\""), std::string::npos);
    EXPECT_NE(json.find("\"tag\": 42"), std::string::npos);
}

// --- TimeSeriesSampler ------------------------------------------------

TEST(TimeSeriesSampler, SnapshotsCountersAndGauges)
{
    obs::MetricsRegistry reg;
    const auto c = reg.counter("requests");
    const auto g = reg.gauge("inflight");
    reg.add(c, 5);
    reg.set(g, 2);
    obs::TimeSeriesSampler sampler(reg);
    sampler.sample(100);
    reg.add(c, 5);
    reg.set(g, 7);
    sampler.sample(200);
    EXPECT_EQ(sampler.size(), 2u);
    EXPECT_EQ(sampler.taken(), 2u);
    EXPECT_EQ(sampler.dropped(), 0u);
    const std::string json = sampler.to_json();
    EXPECT_NE(json.find("\"t\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"t\": 200"), std::string::npos);
    EXPECT_NE(json.find("\"requests\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"inflight\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"taken\": 2"), std::string::npos);
}

TEST(TimeSeriesSampler, CapacityDropsOldest)
{
    obs::MetricsRegistry reg;
    reg.add(reg.counter("x"), 1);
    obs::TimeSeriesSampler sampler(reg);
    sampler.set_capacity(4);
    for (sim::Time t = 0; t < 10; ++t)
        sampler.sample(t);
    EXPECT_EQ(sampler.size(), 4u);
    EXPECT_EQ(sampler.taken(), 10u);
    EXPECT_EQ(sampler.dropped(), 6u);
    // Shrinking trims the series in place.
    sampler.set_capacity(2);
    EXPECT_EQ(sampler.size(), 2u);
    sampler.clear();
    EXPECT_EQ(sampler.size(), 0u);
}

TEST(TimeSeriesSampler, LateRegisteredMetricsJoinLaterSamples)
{
    obs::MetricsRegistry reg;
    reg.add(reg.counter("early"), 1);
    obs::TimeSeriesSampler sampler(reg);
    sampler.sample(1);
    reg.add(reg.counter("late"), 9);
    sampler.sample(2);
    const std::string json = sampler.to_json();
    // The first sample predates "late"; only the second carries it.
    EXPECT_EQ(json.find("\"late\": 9"), json.rfind("\"late\": 9"));
    EXPECT_NE(json.find("\"late\": 9"), std::string::npos);
}

// --- Prometheus exposition --------------------------------------------

TEST(Prometheus, ExposesCountersGaugesAndSummaries)
{
    obs::MetricsRegistry reg;
    reg.add(reg.counter("total_ops"), 17);
    reg.add(reg.counter("faults", 3), 2);
    reg.add(reg.counter("faults", 5), 4);
    reg.set(reg.gauge("queue_depth"), 11);
    const auto h = reg.histogram("lat.ns");
    for (int i = 1; i <= 100; ++i)
        reg.observe(h, i * 100);
    const std::string prom = reg.to_prometheus();
    EXPECT_NE(prom.find("# TYPE nesc_total_ops counter\n"),
              std::string::npos);
    EXPECT_NE(prom.find("nesc_total_ops 17\n"), std::string::npos);
    // Scoped counters are one family with fn labels...
    EXPECT_NE(prom.find("nesc_faults{fn=\"3\"} 2\n"), std::string::npos);
    EXPECT_NE(prom.find("nesc_faults{fn=\"5\"} 4\n"), std::string::npos);
    // ...and exactly one TYPE line for it.
    const std::string type_faults = "# TYPE nesc_faults counter\n";
    EXPECT_EQ(prom.find(type_faults), prom.rfind(type_faults));
    EXPECT_NE(prom.find("# TYPE nesc_queue_depth gauge\n"),
              std::string::npos);
    // Histogram name is sanitized and exported as a summary.
    EXPECT_NE(prom.find("# TYPE nesc_lat_ns summary\n"),
              std::string::npos);
    EXPECT_NE(prom.find("nesc_lat_ns{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("nesc_lat_ns{quantile=\"0.999\"}"),
              std::string::npos);
    EXPECT_NE(prom.find("nesc_lat_ns_count 100\n"), std::string::npos);
    EXPECT_NE(prom.find("nesc_lat_ns_sum 505000\n"), std::string::npos);
}

TEST(Prometheus, HandleKeysRoundTrip)
{
    obs::MetricsRegistry reg;
    const auto plain = reg.counter("doorbells");
    const auto scoped = reg.counter("faults", 9);
    const auto g = reg.gauge("depth", 2);
    EXPECT_EQ(reg.counter_key(plain), "doorbells");
    EXPECT_EQ(reg.counter_key(scoped), "fn9/faults");
    EXPECT_EQ(reg.gauge_key(g), "fn2/depth");
    EXPECT_EQ(reg.counter_key(static_cast<obs::MetricsRegistry::Handle>(
                  reg.counter_count() + 100)),
              "");
}

// --- Simulator timer-lane invariance ----------------------------------

TEST(TimerLane, FarEventsExecuteInGlobalTimeOrder)
{
    // Far-future events are parked on an internal lane; execution
    // order must remain globally (when, seq) regardless.
    sim::Simulator s;
    const auto lane = s.register_lane();
    std::vector<int> order;
    s.schedule_in(2 * sim::Simulator::kTimerHorizon,
                  [&]() { order.push_back(1); }); // parked
    s.schedule_at_lane(lane, sim::Simulator::kTimerHorizon / 2,
                       [&]() { order.push_back(0); });
    s.schedule_in(3 * sim::Simulator::kTimerHorizon, [&]() {
        order.push_back(2);
        // Rescheduling from inside a parked event keeps working.
        s.schedule_in(10, [&]() { order.push_back(3); });
    });
    s.run_until_idle();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(s.now(), 3 * sim::Simulator::kTimerHorizon + 10);
}

TEST(TimerLane, TieOnWhenResolvesBySequence)
{
    sim::Simulator s;
    std::vector<int> order;
    const sim::Time when = 4 * sim::Simulator::kTimerHorizon;
    // One parked, one scheduled near the deadline from a near event:
    // both fire at the same instant; schedule order must win.
    s.schedule_at(when, [&]() { order.push_back(0); }); // parked
    s.schedule_at(when - 5, [&]() {
        s.schedule_in(5, [&]() { order.push_back(1); }); // not parked
    });
    s.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TimerLane, WeakEventsDoNotKeepTheSimulationAlive)
{
    // A self-rescheduling weak timer (the telemetry-plane idiom) ticks
    // in global order while strong work remains, fires during
    // run_until(), and never makes run_until_idle() spin.
    sim::Simulator s;
    int ticks = 0;
    std::function<void()> tick = [&]() {
        ++ticks;
        s.schedule_weak_in(100, tick);
    };
    s.schedule_weak_in(100, tick);
    int work = 0;
    s.schedule_in(250, [&]() { ++work; });
    EXPECT_FALSE(s.idle()); // strong event pending
    s.run_until_idle();     // runs the two ticks before t=250, stops
    EXPECT_EQ(work, 1);
    EXPECT_EQ(ticks, 2);
    EXPECT_TRUE(s.idle()); // armed weak timer does not count
    EXPECT_EQ(s.weak_pending(), 1u);
    s.run_until(s.now() + 1000); // deadline-driven runs still tick
    EXPECT_EQ(ticks, 12);
    EXPECT_TRUE(s.idle());
}

TEST(TimerLane, LaneCountExcludesTheInternalLane)
{
    sim::Simulator s;
    EXPECT_EQ(s.lane_count(), 1u); // default lane only
    const auto lane = s.register_lane();
    EXPECT_EQ(s.lane_count(), 2u);
    s.schedule_in(10 * sim::Simulator::kTimerHorizon, []() {});
    EXPECT_EQ(s.lane_count(), 2u); // parking is not a registered lane
    s.run_until_idle();
    s.release_lane(lane);
    EXPECT_EQ(s.lane_count(), 1u);
}

// --- Observability registers (controller + PfDriver) ------------------

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class ObsRegisterTest : public ::testing::Test {
  protected:
    ObsRegisterTest()
    {
        auto bed = virt::Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
    }

    util::Result<std::uint64_t>
    pf_read(std::uint64_t offset)
    {
        return bed_->bar().read(
            bed_->bar().function_base(pcie::kPhysicalFunctionId) + offset,
            8);
    }

    util::Status
    pf_write(std::uint64_t offset, std::uint64_t value)
    {
        return bed_->bar().write(
            bed_->bar().function_base(pcie::kPhysicalFunctionId) + offset,
            value, 8);
    }

    std::unique_ptr<virt::Testbed> bed_;
};

TEST_F(ObsRegisterTest, EverythingOffAtReset)
{
    for (const std::uint64_t off :
         {ctrl::reg::kObsWindowNs, ctrl::reg::kFlightCtrl,
          ctrl::reg::kSamplerIntervalNs, ctrl::reg::kSamplerCount,
          ctrl::reg::kPostmortemCount, ctrl::reg::kSloBreachCount}) {
        auto v = pf_read(off);
        ASSERT_TRUE(v.is_ok()) << "offset " << off;
        EXPECT_EQ(*v, 0u) << "offset " << off;
    }
    // With accounting off the window registers master-abort.
    auto p50 = pf_read(ctrl::reg::kSloP50);
    ASSERT_TRUE(p50.is_ok());
    EXPECT_EQ(*p50, ~std::uint64_t{0});
    EXPECT_FALSE(bed_->controller().slo_watch().enabled());
    EXPECT_FALSE(bed_->controller().flight_recorder().enabled());
    EXPECT_EQ(bed_->controller().obs_window_ns(), 0);
}

TEST_F(ObsRegisterTest, ObservabilityRegistersArePfOnly)
{
    auto vm = bed_->create_nesc_guest("/vfobs.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    const std::uint64_t vf_base = bed_->bar().function_base(*fn);
    const auto before = bed_->controller().stats(*fn).reg_violations;
    for (const std::uint64_t off :
         {ctrl::reg::kObsWindowNs, ctrl::reg::kSloSelect,
          ctrl::reg::kFlightCtrl, ctrl::reg::kSamplerIntervalNs}) {
        EXPECT_FALSE(bed_->bar().read(vf_base + off, 8).is_ok());
        EXPECT_FALSE(bed_->bar().write(vf_base + off, 1, 8).is_ok());
    }
    EXPECT_GT(bed_->controller().stats(*fn).reg_violations, before);
    // The plane must not have been armed by the rejected writes.
    EXPECT_EQ(bed_->controller().obs_window_ns(), 0);
    EXPECT_FALSE(bed_->controller().flight_recorder().enabled());
}

TEST_F(ObsRegisterTest, TelemetryDirectoryGrewBySloBreaches)
{
    auto count = pf_read(ctrl::reg::kTelemetryCount);
    ASSERT_TRUE(count.is_ok());
    EXPECT_EQ(*count, ctrl::kTelemetryCounters.size());
    EXPECT_EQ(*count, 18u);
    // The new last entry reads back by name over MMIO...
    const std::uint32_t last =
        static_cast<std::uint32_t>(ctrl::kTelemetryCounters.size()) - 1;
    ASSERT_TRUE(pf_write(ctrl::reg::kTelemetrySelect,
                         static_cast<std::uint64_t>(last) << 16)
                    .is_ok());
    std::string name;
    for (std::size_t chunk = 0; chunk < 3; ++chunk) {
        auto packed = pf_read(ctrl::reg::kTelemetryName0 + 8 * chunk);
        ASSERT_TRUE(packed.is_ok());
        for (unsigned shift = 0; shift < 64; shift += 8) {
            const char ch = static_cast<char>((*packed >> shift) & 0xff);
            if (ch == '\0')
                break;
            name.push_back(ch);
        }
    }
    EXPECT_EQ(name, "slo_breaches");
    // ...and one past the last master-aborts, value and name alike.
    ASSERT_TRUE(pf_write(ctrl::reg::kTelemetrySelect,
                         static_cast<std::uint64_t>(last + 1) << 16)
                    .is_ok());
    auto value = pf_read(ctrl::reg::kTelemetryValue);
    ASSERT_TRUE(value.is_ok());
    EXPECT_EQ(*value, ~std::uint64_t{0});
    auto name0 = pf_read(ctrl::reg::kTelemetryName0);
    ASSERT_TRUE(name0.is_ok());
    EXPECT_EQ(*name0, ~std::uint64_t{0});
}

TEST_F(ObsRegisterTest, SloWindowReadableThroughRegisters)
{
    auto vm = bed_->create_nesc_guest("/slow.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    ASSERT_TRUE(bed_->pf().set_obs_window(1'000'000).is_ok());
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 256 * 4096;
    ASSERT_TRUE(
        wl::run_dd_raw(bed_->sim(), (*vm)->raw_disk(), dd).is_ok());
    // Let at least one rotation close a window over the activity.
    bed_->sim().run_until_idle();

    auto window = bed_->pf().slo_window(*fn, obs::SloWatch::kEndToEnd);
    ASSERT_TRUE(window.is_ok()) << window.status().to_string();
    EXPECT_GT(window->ops, 0u);
    EXPECT_EQ(window->errors, 0u);
    EXPECT_GT(window->p50, 0u);
    EXPECT_LE(window->p50, window->p99);
    EXPECT_LE(window->p99, window->p999);
    // Stage selector out of range master-aborts.
    ASSERT_TRUE(pf_write(ctrl::reg::kSloSelect,
                         (std::uint64_t{9} << 16) | *fn)
                    .is_ok());
    auto p50 = pf_read(ctrl::reg::kSloP50);
    ASSERT_TRUE(p50.is_ok());
    EXPECT_EQ(*p50, ~std::uint64_t{0});
    // Turning accounting off gates the whole window block again.
    ASSERT_TRUE(bed_->pf().set_obs_window(0).is_ok());
    EXPECT_FALSE(bed_->pf().slo_window(*fn).is_ok());
}

TEST_F(ObsRegisterTest, SloBreachDirectoryViaMgmtAndRegisters)
{
    auto vm = bed_->create_nesc_guest("/breach.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    ASSERT_TRUE(bed_->pf().set_obs_window(1'000'000).is_ok());
    // A 1 ns p99 ceiling: every non-empty window breaches.
    ASSERT_TRUE(bed_->pf().set_slo(*fn, 1, 0).is_ok());
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 128 * 4096;
    ASSERT_TRUE(
        wl::run_dd_raw(bed_->sim(), (*vm)->raw_disk(), dd).is_ok());
    bed_->sim().run_until_idle();

    const std::uint64_t stat_breaches =
        bed_->controller().stats(*fn).slo_breaches;
    EXPECT_GT(stat_breaches, 0u);
    auto breaches = bed_->pf().slo_breaches();
    ASSERT_TRUE(breaches.is_ok());
    ASSERT_GT(breaches->size(), 0u);
    for (const auto &entry : *breaches) {
        EXPECT_EQ(entry.fn, *fn);
        EXPECT_EQ(entry.metric,
                  static_cast<std::uint8_t>(obs::SloMetric::kLatencyP99));
        EXPECT_GT(entry.observed, entry.threshold);
        EXPECT_EQ(entry.threshold, 1u);
    }
    // The directory is retained across disarming the plane...
    ASSERT_TRUE(bed_->pf().set_obs_window(0).is_ok());
    auto still = bed_->pf().slo_breaches();
    ASSERT_TRUE(still.is_ok());
    EXPECT_EQ(still->size(), breaches->size());
    // ...until the PF clears it through the mgmt command.
    ASSERT_TRUE(bed_->pf().clear_slo_breaches().is_ok());
    auto cleared = bed_->pf().slo_breaches();
    ASSERT_TRUE(cleared.is_ok());
    EXPECT_EQ(cleared->size(), 0u);
    // Stats survive the clear: the counter is monotonic.
    EXPECT_EQ(bed_->controller().stats(*fn).slo_breaches, stat_breaches);
}

TEST_F(ObsRegisterTest, SetSloRequiresExistingFunction)
{
    EXPECT_FALSE(bed_->pf().set_slo(0x7fff, 1000, 0).is_ok());
}

TEST_F(ObsRegisterTest, PostmortemCaptureOnQuarantine)
{
    ASSERT_TRUE(bed_->pf().set_flight_recorder(true).is_ok());
    auto vm = bed_->create_nesc_guest("/pm.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    drv::FunctionDriver driver(bed_->sim(), bed_->host_memory(),
                               bed_->bar(), bed_->irq(), *fn,
                               bed_->config().vf_driver);
    ASSERT_TRUE(driver.init().is_ok());
    // A malformed-descriptor storm crosses the quarantine threshold.
    const std::uint32_t storm =
        bed_->controller().config().quarantine_threshold;
    for (std::uint32_t i = 0; i < storm; ++i) {
        ASSERT_TRUE(driver
                        .submit(static_cast<ctrl::Opcode>(99), 0, 1,
                                pcie::kNullHostAddr,
                                [](ctrl::CompletionStatus) {})
                        .is_ok());
    }
    bed_->sim().run_until_idle();
    ASSERT_TRUE(bed_->controller().quarantined(*fn));

    auto count = bed_->pf().postmortem_count();
    ASSERT_TRUE(count.is_ok());
    EXPECT_GE(*count, 1u);
    auto json = bed_->pf().dump_postmortem();
    ASSERT_TRUE(json.is_ok()) << json.status().to_string();
    EXPECT_NE(json->find("\"reason\": \"quarantine\""),
              std::string::npos);
    EXPECT_NE(json->find("\"type\": \"fault\""), std::string::npos);
    // The postmortem directory registers survive the recorder being
    // turned off (forensics outlive the plane)...
    ASSERT_TRUE(bed_->pf().set_flight_recorder(false).is_ok());
    auto still = bed_->pf().postmortem_count();
    ASSERT_TRUE(still.is_ok());
    EXPECT_EQ(*still, *count);
    // ...until cleared through the mgmt command.
    ASSERT_TRUE(bed_->pf().clear_postmortems().is_ok());
    auto cleared = bed_->pf().postmortem_count();
    ASSERT_TRUE(cleared.is_ok());
    EXPECT_EQ(*cleared, 0u);
}

TEST_F(ObsRegisterTest, FlightDepthAppliesAtEnable)
{
    ASSERT_TRUE(pf_write(ctrl::reg::kFlightDepth, 10).is_ok());
    ASSERT_TRUE(pf_write(ctrl::reg::kFlightCtrl, 1).is_ok());
    EXPECT_TRUE(bed_->controller().flight_recorder().enabled());
    // Rounded up to the next power of two.
    EXPECT_EQ(bed_->controller().flight_recorder().depth(), 16u);
    ASSERT_TRUE(pf_write(ctrl::reg::kFlightCtrl, 0).is_ok());
    EXPECT_FALSE(bed_->controller().flight_recorder().enabled());
}

TEST_F(ObsRegisterTest, SamplerTicksAtProgrammedInterval)
{
    // Arming takes one immediate baseline sample.
    ASSERT_TRUE(bed_->pf().set_sampler_interval(1'000'000).is_ok());
    auto count = pf_read(ctrl::reg::kSamplerCount);
    ASSERT_TRUE(count.is_ok());
    EXPECT_EQ(*count, 1u);
    bed_->sim().run_until(bed_->sim().now() + 5'500'000);
    count = pf_read(ctrl::reg::kSamplerCount);
    ASSERT_TRUE(count.is_ok());
    EXPECT_GE(*count, 5u);
    const std::uint64_t armed_count = *count;
    // Disarming stops the series where it is.
    ASSERT_TRUE(bed_->pf().set_sampler_interval(0).is_ok());
    bed_->sim().run_until(bed_->sim().now() + 5'000'000);
    bed_->sim().run_until_idle();
    count = pf_read(ctrl::reg::kSamplerCount);
    ASSERT_TRUE(count.is_ok());
    EXPECT_EQ(*count, armed_count);
    // The series itself is valid JSON-ish (balanced) and non-empty.
    const std::string json = bed_->controller().sampler().to_json();
    EXPECT_NE(json.find("\"samples\""), std::string::npos);
}

} // namespace
} // namespace nesc
