/**
 * @file
 * Nested virtualization composition test.
 *
 * The paper notes VFs could "in principle" support nested
 * virtualization (§IV.A). The library composes that today at the
 * hypervisor level: an L1 guest gets a NeSC VF, formats a filesystem
 * inside it, stores an L2 image file there, and an L2 guest attaches
 * to that file through a (paravirtual) disk whose backing store is
 * the L1 filesystem. Data written by L2 must be recoverable through
 * every layer: L2 FS -> L2 disk -> L1 FS -> L1 VF -> extent tree ->
 * physical device -> hypervisor file.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "virt/testbed.h"
#include "virt/virtual_disk.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

/** BlockIo over a file in an L1 guest's filesystem (the L2 virtual
 * disk's backing store). */
class GuestFileBlockIo : public blk::BlockIo {
  public:
    GuestFileBlockIo(virt::GuestVm &vm, fs::InodeId ino,
                     std::uint64_t size_blocks)
        : vm_(vm), ino_(ino), size_blocks_(size_blocks)
    {
    }

    std::uint32_t block_size() const override { return fs::kFsBlockSize; }
    std::uint64_t num_blocks() const override { return size_blocks_; }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        (void)count;
        vm_.charge_file_syscall();
        NESC_ASSIGN_OR_RETURN(
            std::uint64_t got,
            vm_.fs()->read(ino_, blockno * fs::kFsBlockSize, out));
        if (got < out.size())
            std::fill(out.begin() + static_cast<std::ptrdiff_t>(got),
                      out.end(), std::byte{0});
        return util::Status::ok();
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        (void)count;
        vm_.charge_file_syscall();
        return vm_.fs()->write(ino_, blockno * fs::kFsBlockSize, in);
    }

    util::Status flush() override { return vm_.fs()->fsync(ino_); }

  private:
    virt::GuestVm &vm_;
    fs::InodeId ino_;
    std::uint64_t size_blocks_;
};

TEST(NestedVirtualization, L2GuestDataSurvivesAllLayers)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 96ULL << 20;
    config.host_memory_bytes = 96ULL << 20;
    auto bed = std::move(virt::Testbed::create(config)).value();

    // L1: NeSC guest with its own filesystem.
    auto l1 = std::move(bed->create_nesc_guest("/l1.img", 32768, true))
                  .value();
    ASSERT_TRUE(l1->format_fs().is_ok());

    // L2 image file inside L1's filesystem (sparse).
    auto l2_ino = l1->fs()->create("/l2.img", 0644);
    ASSERT_TRUE(l2_ino.is_ok());
    const std::uint64_t l2_blocks = 8192;
    ASSERT_TRUE(
        l1->fs()->truncate(*l2_ino, l2_blocks * fs::kFsBlockSize).is_ok());

    // L2 guest: virtio-style disk whose backing is the L1 file.
    auto backing = std::make_shared<GuestFileBlockIo>(*l1, *l2_ino,
                                                      l2_blocks);
    virt::GuestVm l2(bed->sim(),
                     std::make_unique<virt::VirtioDisk>(
                         bed->sim(), *backing, bed->costs()),
                     "l2-vm");
    l2.hold(backing);

    // L2 formats ITS own filesystem and writes a file: three nested
    // filesystems deep (hypervisor, L1, L2).
    ASSERT_TRUE(l2.format_fs().is_ok());
    auto deep = l2.fs()->create("/deep.txt", 0644);
    ASSERT_TRUE(deep.is_ok());
    const std::string text = "three filesystems down";
    ASSERT_TRUE(l2.fs()
                    ->write(*deep, 0,
                            std::span<const std::byte>(
                                reinterpret_cast<const std::byte *>(
                                    text.data()),
                                text.size()))
                    .is_ok());
    ASSERT_TRUE(l2.fs()->fsync(*deep).is_ok());

    // Read back through L2.
    std::vector<std::byte> back(text.size());
    ASSERT_EQ(*l2.fs()->read(*deep, 0, back), text.size());
    EXPECT_EQ(std::memcmp(back.data(), text.data(), text.size()), 0);

    // L2 raw-device latency is strictly worse than L1's (each layer
    // adds its stack), and both move correct data.
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 64 * 1024;
    dd.write = true;
    dd.start_offset = 4ULL << 20;
    auto l1_dd = wl::run_dd_raw(bed->sim(), l1->raw_disk(), dd);
    ASSERT_TRUE(l1_dd.is_ok());
    auto l2_dd = wl::run_dd_raw(bed->sim(), l2.raw_disk(), dd);
    ASSERT_TRUE(l2_dd.is_ok());
    EXPECT_GT(l2_dd->mean_latency_us, l1_dd->mean_latency_us);

    // Integrity through every layer: flush L2 and L1, then find the
    // L2 filesystem's superblock magic inside the physical device at
    // the composed offset (L1 extent tree maps it; the hv file holds
    // L1's image).
    ASSERT_TRUE(l2.unmount_fs().is_ok());
    ASSERT_TRUE(l1->fs()->sync().is_ok());
    auto hv_ino = bed->hv_fs().resolve("/l1.img");
    ASSERT_TRUE(hv_ino.is_ok());
    // L2's image starts at some L1 file offset; read L1's view of the
    // L2 superblock through the hypervisor file via the L1 mapping.
    auto l1_extents = l1->fs()->fiemap(*l2_ino);
    ASSERT_TRUE(l1_extents.is_ok());
    ASSERT_FALSE(l1_extents->empty());
    // The L2 superblock lives at L2 block 0 => L1 file block
    // l1_extents[0].first_pblock within the L1 virtual disk.
    std::vector<std::byte> sb(fs::kFsBlockSize);
    ASSERT_TRUE(l1->raw_disk()
                    .read_blocks((*l1_extents)[0].first_pblock, 1, sb)
                    .is_ok());
    std::uint32_t magic;
    std::memcpy(&magic, sb.data(), sizeof(magic));
    EXPECT_EQ(magic, fs::kSuperMagic);
}

} // namespace
} // namespace nesc
