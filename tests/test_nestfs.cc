/**
 * @file
 * Unit tests for nestfs: lifecycle, namespace, data path (holes,
 * partial blocks, truncate), permissions, extent-chain spill, FIEMAP,
 * allocate_range, crash recovery, and resource exhaustion.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "blocklayer/device_block_io.h"
#include "fs/extent_map.h"
#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"
#include "util/rng.h"

namespace nesc::fs {
namespace {

storage::MemBlockDeviceConfig
fast_device(std::uint64_t capacity = 8 << 20)
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    return cfg;
}

std::vector<std::byte>
bytes_of(std::string_view text)
{
    std::vector<std::byte> out(text.size());
    std::memcpy(out.data(), text.data(), text.size());
    return out;
}

class NestFsTest : public ::testing::Test {
  protected:
    NestFsTest() : device_(fast_device()), io_(sim_, device_)
    {
        auto fs = NestFs::format(io_);
        EXPECT_TRUE(fs.is_ok()) << fs.status().to_string();
        fs_ = std::move(fs).value();
    }

    sim::Simulator sim_;
    storage::MemBlockDevice device_;
    blk::DeviceBlockIo io_;
    std::unique_ptr<NestFs> fs_;
};

// --- Lifecycle -----------------------------------------------------------

TEST_F(NestFsTest, FormatCreatesRootDirectory)
{
    auto st = fs_->stat(kRootInode);
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ(st->type, FileType::kDirectory);
    EXPECT_EQ(st->perm, 0755);
    auto entries = fs_->readdir("/");
    ASSERT_TRUE(entries.is_ok());
    EXPECT_TRUE(entries->empty());
}

TEST_F(NestFsTest, MountRejectsUnformattedVolume)
{
    storage::MemBlockDevice raw(fast_device());
    blk::DeviceBlockIo raw_io(sim_, raw);
    EXPECT_EQ(NestFs::mount(raw_io).status().code(),
              util::ErrorCode::kDataLoss);
}

TEST_F(NestFsTest, UnmountThenMountPreservesEverything)
{
    auto ino = fs_->create("/persist.txt", 0640);
    ASSERT_TRUE(ino.is_ok());
    auto data = bytes_of("survives remount");
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    ASSERT_TRUE(fs_->unmount().is_ok());
    fs_.reset();

    auto remounted = NestFs::mount(io_);
    ASSERT_TRUE(remounted.is_ok()) << remounted.status().to_string();
    auto again = (*remounted)->resolve("/persist.txt");
    ASSERT_TRUE(again.is_ok());
    std::vector<std::byte> back(data.size());
    auto got = (*remounted)->read(*again, 0, back);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(back, data);
    auto st = (*remounted)->stat(*again);
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ(st->perm, 0640);
}

TEST_F(NestFsTest, FormatRejectsTinyVolume)
{
    storage::MemBlockDevice tiny(fast_device(16 * 1024));
    blk::DeviceBlockIo tiny_io(sim_, tiny);
    EXPECT_FALSE(NestFs::format(tiny_io).is_ok());
}

// --- Namespace ------------------------------------------------------------

TEST_F(NestFsTest, CreateResolveUnlink)
{
    auto ino = fs_->create("/a.txt", 0644);
    ASSERT_TRUE(ino.is_ok());
    EXPECT_EQ(*fs_->resolve("/a.txt"), *ino);
    ASSERT_TRUE(fs_->unlink("/a.txt").is_ok());
    EXPECT_EQ(fs_->resolve("/a.txt").status().code(),
              util::ErrorCode::kNotFound);
}

TEST_F(NestFsTest, DuplicateCreateRejected)
{
    ASSERT_TRUE(fs_->create("/dup", 0644).is_ok());
    EXPECT_EQ(fs_->create("/dup", 0644).status().code(),
              util::ErrorCode::kAlreadyExists);
}

TEST_F(NestFsTest, NestedDirectories)
{
    ASSERT_TRUE(fs_->mkdir("/a", 0755).is_ok());
    ASSERT_TRUE(fs_->mkdir("/a/b", 0755).is_ok());
    auto ino = fs_->create("/a/b/c.txt", 0644);
    ASSERT_TRUE(ino.is_ok());
    EXPECT_EQ(*fs_->resolve("/a/b/c.txt"), *ino);
    auto entries = fs_->readdir("/a/b");
    ASSERT_TRUE(entries.is_ok());
    ASSERT_EQ(entries->size(), 1u);
    EXPECT_EQ((*entries)[0].name, "c.txt");
    EXPECT_EQ((*entries)[0].type, FileType::kRegular);
}

TEST_F(NestFsTest, MkdirPCreatesChain)
{
    auto ino = fs_->mkdir_p("/x/y/z", 0755);
    ASSERT_TRUE(ino.is_ok());
    EXPECT_TRUE(fs_->resolve("/x/y/z").is_ok());
    // Idempotent.
    EXPECT_TRUE(fs_->mkdir_p("/x/y/z", 0755).is_ok());
}

TEST_F(NestFsTest, RmdirOnlyWhenEmpty)
{
    ASSERT_TRUE(fs_->mkdir("/d", 0755).is_ok());
    ASSERT_TRUE(fs_->create("/d/f", 0644).is_ok());
    EXPECT_EQ(fs_->rmdir("/d").code(),
              util::ErrorCode::kFailedPrecondition);
    ASSERT_TRUE(fs_->unlink("/d/f").is_ok());
    EXPECT_TRUE(fs_->rmdir("/d").is_ok());
    EXPECT_FALSE(fs_->resolve("/d").is_ok());
}

TEST_F(NestFsTest, PathValidation)
{
    EXPECT_FALSE(fs_->create("relative/path", 0644).is_ok());
    EXPECT_FALSE(fs_->create("/a/../b", 0644).is_ok());
    EXPECT_FALSE(fs_->resolve("").is_ok());
    const std::string long_name(100, 'x');
    EXPECT_FALSE(fs_->create("/" + long_name, 0644).is_ok());
}

TEST_F(NestFsTest, UnlinkDirectoryRejected)
{
    ASSERT_TRUE(fs_->mkdir("/dir", 0755).is_ok());
    EXPECT_FALSE(fs_->unlink("/dir").is_ok());
    ASSERT_TRUE(fs_->create("/file", 0644).is_ok());
    EXPECT_FALSE(fs_->rmdir("/file").is_ok());
}

TEST_F(NestFsTest, ManyFilesInOneDirectory)
{
    // Forces the directory file to grow beyond one block (16 entries
    // per block).
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(
            fs_->create("/f" + std::to_string(i), 0644).is_ok());
    }
    auto entries = fs_->readdir("/");
    ASSERT_TRUE(entries.is_ok());
    EXPECT_EQ(entries->size(), 100u);
    // Deleting reuses slots.
    ASSERT_TRUE(fs_->unlink("/f50").is_ok());
    ASSERT_TRUE(fs_->create("/f50b", 0644).is_ok());
    EXPECT_EQ(fs_->readdir("/")->size(), 100u);
}

// --- Data path --------------------------------------------------------------

TEST_F(NestFsTest, WriteReadRoundTrip)
{
    auto ino = fs_->create("/data", 0644);
    ASSERT_TRUE(ino.is_ok());
    auto data = bytes_of("hello nested storage controller");
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    std::vector<std::byte> back(data.size());
    auto got = fs_->read(*ino, 0, back);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, data.size());
    EXPECT_EQ(back, data);
    EXPECT_EQ(fs_->stat(*ino)->size_bytes, data.size());
}

TEST_F(NestFsTest, ShortReadAtEof)
{
    auto ino = fs_->create("/short", 0644);
    ASSERT_TRUE(fs_->write(*ino, 0, bytes_of("12345")).is_ok());
    std::vector<std::byte> buf(100);
    EXPECT_EQ(*fs_->read(*ino, 0, buf), 5u);
    EXPECT_EQ(*fs_->read(*ino, 5, buf), 0u);
    EXPECT_EQ(*fs_->read(*ino, 1000, buf), 0u);
}

TEST_F(NestFsTest, UnalignedWritesAcrossBlockBoundaries)
{
    auto ino = fs_->create("/unaligned", 0644);
    // Write 3000 bytes at offset 500: straddles blocks 0..3.
    std::vector<std::byte> data(3000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::byte>(i * 7);
    ASSERT_TRUE(fs_->write(*ino, 500, data).is_ok());
    std::vector<std::byte> back(3000);
    ASSERT_EQ(*fs_->read(*ino, 500, back), 3000u);
    EXPECT_EQ(back, data);
    // Bytes before the write read as zeros (hole head of block 0).
    std::vector<std::byte> head(500);
    ASSERT_EQ(*fs_->read(*ino, 0, head), 500u);
    for (std::byte b : head)
        EXPECT_EQ(b, std::byte{0});
}

TEST_F(NestFsTest, OverwriteDoesNotGrow)
{
    auto ino = fs_->create("/ow", 0644);
    ASSERT_TRUE(fs_->write(*ino, 0, bytes_of("aaaaaaaa")).is_ok());
    const auto blocks_before = fs_->free_blocks();
    ASSERT_TRUE(fs_->write(*ino, 0, bytes_of("bbbbbbbb")).is_ok());
    EXPECT_EQ(fs_->free_blocks(), blocks_before);
    std::vector<std::byte> back(8);
    ASSERT_EQ(*fs_->read(*ino, 0, back), 8u);
    EXPECT_EQ(back, bytes_of("bbbbbbbb"));
}

TEST_F(NestFsTest, SparseWriteLeavesHole)
{
    auto ino = fs_->create("/sparse", 0644);
    ASSERT_TRUE(fs_->write(*ino, 100 * kFsBlockSize,
                           bytes_of("tail")).is_ok());
    EXPECT_EQ(fs_->stat(*ino)->size_bytes, 100u * kFsBlockSize + 4);
    // Only ~1 data block allocated.
    auto extents = fs_->fiemap(*ino);
    ASSERT_TRUE(extents.is_ok());
    EXPECT_EQ(extent::total_mapped_blocks(*extents), 1u);
    // The hole reads as zeros.
    std::vector<std::byte> buf(kFsBlockSize, std::byte{0xff});
    ASSERT_EQ(*fs_->read(*ino, 50 * kFsBlockSize, buf), kFsBlockSize);
    for (std::byte b : buf)
        EXPECT_EQ(b, std::byte{0});
}

TEST_F(NestFsTest, TruncateShrinkFreesBlocks)
{
    auto ino = fs_->create("/trunc", 0644);
    std::vector<std::byte> data(10 * kFsBlockSize, std::byte{0x42});
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    const auto free_small = fs_->free_blocks();
    ASSERT_TRUE(fs_->truncate(*ino, 2 * kFsBlockSize).is_ok());
    EXPECT_EQ(fs_->free_blocks(), free_small + 8);
    EXPECT_EQ(fs_->stat(*ino)->size_bytes, 2u * kFsBlockSize);
}

TEST_F(NestFsTest, TruncatePartialBlockZeroesTail)
{
    auto ino = fs_->create("/tailzero", 0644);
    std::vector<std::byte> data(kFsBlockSize, std::byte{0x42});
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    ASSERT_TRUE(fs_->truncate(*ino, 100).is_ok());
    ASSERT_TRUE(fs_->truncate(*ino, kFsBlockSize).is_ok()); // grow back
    std::vector<std::byte> back(kFsBlockSize);
    ASSERT_EQ(*fs_->read(*ino, 0, back), kFsBlockSize);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(back[i], std::byte{0x42});
    for (std::size_t i = 100; i < kFsBlockSize; ++i)
        EXPECT_EQ(back[i], std::byte{0}) << i;
}

TEST_F(NestFsTest, TruncateGrowIsSparse)
{
    auto ino = fs_->create("/grow", 0644);
    const auto free_before = fs_->free_blocks();
    ASSERT_TRUE(fs_->truncate(*ino, 1000 * kFsBlockSize).is_ok());
    EXPECT_EQ(fs_->free_blocks(), free_before); // no allocation
    EXPECT_EQ(fs_->stat(*ino)->size_bytes, 1000u * kFsBlockSize);
}

TEST_F(NestFsTest, UnlinkFreesAllBlocks)
{
    // Force the root directory's first block to exist up front; it
    // stays allocated after the unlink (directories do not shrink).
    ASSERT_TRUE(fs_->create("/placeholder", 0644).is_ok());
    const auto free_before = fs_->free_blocks();
    auto ino = fs_->create("/big", 0644);
    std::vector<std::byte> data(64 * kFsBlockSize, std::byte{1});
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    EXPECT_LT(fs_->free_blocks(), free_before);
    ASSERT_TRUE(fs_->unlink("/big").is_ok());
    EXPECT_EQ(fs_->free_blocks(), free_before);
}

TEST_F(NestFsTest, WriteToDirectoryRejected)
{
    ASSERT_TRUE(fs_->mkdir("/dir", 0755).is_ok());
    auto ino = fs_->resolve("/dir");
    EXPECT_FALSE(fs_->write(*ino, 0, bytes_of("x")).is_ok());
}

// --- rename -----------------------------------------------------------------

TEST_F(NestFsTest, RenameWithinDirectory)
{
    auto ino = fs_->create("/old", 0644);
    ASSERT_TRUE(ino.is_ok());
    ASSERT_TRUE(fs_->write(*ino, 0, bytes_of("payload")).is_ok());
    ASSERT_TRUE(fs_->rename("/old", "/new").is_ok());
    EXPECT_FALSE(fs_->resolve("/old").is_ok());
    auto moved = fs_->resolve("/new");
    ASSERT_TRUE(moved.is_ok());
    EXPECT_EQ(*moved, *ino); // same inode, same data
    std::vector<std::byte> back(7);
    ASSERT_EQ(*fs_->read(*moved, 0, back), 7u);
    EXPECT_EQ(back, bytes_of("payload"));
}

TEST_F(NestFsTest, RenameAcrossDirectories)
{
    ASSERT_TRUE(fs_->mkdir("/a", 0755).is_ok());
    ASSERT_TRUE(fs_->mkdir("/b", 0755).is_ok());
    ASSERT_TRUE(fs_->create("/a/f", 0644).is_ok());
    ASSERT_TRUE(fs_->rename("/a/f", "/b/g").is_ok());
    EXPECT_FALSE(fs_->resolve("/a/f").is_ok());
    EXPECT_TRUE(fs_->resolve("/b/g").is_ok());
}

TEST_F(NestFsTest, RenameReplacesExistingFile)
{
    auto a = fs_->create("/ra", 0644);
    auto b = fs_->create("/rb", 0644);
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    ASSERT_TRUE(fs_->write(*a, 0, bytes_of("AAA")).is_ok());
    ASSERT_TRUE(fs_->write(*b, 0, bytes_of("BBB")).is_ok());
    const auto free_before = fs_->free_blocks();
    ASSERT_TRUE(fs_->rename("/ra", "/rb").is_ok());
    auto now = fs_->resolve("/rb");
    ASSERT_TRUE(now.is_ok());
    EXPECT_EQ(*now, *a);
    std::vector<std::byte> back(3);
    ASSERT_EQ(*fs_->read(*now, 0, back), 3u);
    EXPECT_EQ(back, bytes_of("AAA"));
    // The replaced file's block was freed.
    EXPECT_EQ(fs_->free_blocks(), free_before + 1);
}

TEST_F(NestFsTest, RenameDirectoryAndRejectIntoItself)
{
    ASSERT_TRUE(fs_->mkdir("/dir", 0755).is_ok());
    ASSERT_TRUE(fs_->create("/dir/f", 0644).is_ok());
    ASSERT_TRUE(fs_->rename("/dir", "/moved").is_ok());
    EXPECT_TRUE(fs_->resolve("/moved/f").is_ok());
    // Into its own subtree: rejected.
    ASSERT_TRUE(fs_->mkdir("/moved/sub", 0755).is_ok());
    EXPECT_FALSE(fs_->rename("/moved", "/moved/sub/x").is_ok());
    // Directory cannot replace a file, nor a file a directory.
    ASSERT_TRUE(fs_->create("/plain", 0644).is_ok());
    EXPECT_FALSE(fs_->rename("/moved", "/plain").is_ok());
    EXPECT_FALSE(fs_->rename("/plain", "/moved").is_ok());
}

TEST_F(NestFsTest, RenameToItselfIsNoop)
{
    auto ino = fs_->create("/same", 0644);
    ASSERT_TRUE(ino.is_ok());
    ASSERT_TRUE(fs_->rename("/same", "/same").is_ok());
    EXPECT_EQ(*fs_->resolve("/same"), *ino);
}

// --- Permissions ---------------------------------------------------------

TEST_F(NestFsTest, OwnerPermissionBits)
{
    const Credentials owner{10, 20};
    const Credentials other{30, 40};
    const Credentials same_group{31, 20};
    ASSERT_TRUE(fs_->mkdir("/home", 0777).is_ok());
    auto ino = fs_->create("/home/secret", 0640, owner);
    ASSERT_TRUE(ino.is_ok());

    EXPECT_TRUE(fs_->check_access(*ino, Access::kRead, owner).is_ok());
    EXPECT_TRUE(fs_->check_access(*ino, Access::kWrite, owner).is_ok());
    EXPECT_TRUE(
        fs_->check_access(*ino, Access::kRead, same_group).is_ok());
    EXPECT_EQ(
        fs_->check_access(*ino, Access::kWrite, same_group).code(),
        util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(fs_->check_access(*ino, Access::kRead, other).code(),
              util::ErrorCode::kPermissionDenied);
}

TEST_F(NestFsTest, SuperuserBypassesChecks)
{
    const Credentials owner{10, 20};
    ASSERT_TRUE(fs_->mkdir("/home", 0777).is_ok());
    auto ino = fs_->create("/home/locked", 0000, owner);
    ASSERT_TRUE(ino.is_ok());
    EXPECT_TRUE(fs_->check_access(*ino, Access::kRead,
                                  Credentials{0, 0}).is_ok());
    std::vector<std::byte> buf(4);
    EXPECT_TRUE(fs_->read(*ino, 0, buf, Credentials{0, 0}).is_ok());
}

TEST_F(NestFsTest, ReadWriteEnforcePermissions)
{
    const Credentials owner{10, 20};
    const Credentials other{11, 21};
    ASSERT_TRUE(fs_->mkdir("/home", 0777).is_ok());
    auto ino = fs_->create("/home/f", 0600, owner);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> buf(4);
    EXPECT_FALSE(fs_->read(*ino, 0, buf, other).is_ok());
    EXPECT_FALSE(fs_->write(*ino, 0, buf, other).is_ok());
    EXPECT_TRUE(fs_->write(*ino, 0, buf, owner).is_ok());
}

TEST_F(NestFsTest, CreateRequiresParentWritePermission)
{
    const Credentials owner{10, 20};
    const Credentials other{11, 21};
    // Root creates the directory and hands it to `owner`.
    auto dir = fs_->mkdir("/locked", 0755);
    ASSERT_TRUE(dir.is_ok());
    ASSERT_TRUE(fs_->chown(*dir, owner.uid, owner.gid).is_ok());
    EXPECT_EQ(fs_->create("/locked/f", 0644, other).status().code(),
              util::ErrorCode::kPermissionDenied);
    EXPECT_TRUE(fs_->create("/locked/f", 0644, owner).is_ok());
}

TEST_F(NestFsTest, ChmodChown)
{
    const Credentials owner{10, 20};
    const Credentials other{11, 21};
    ASSERT_TRUE(fs_->mkdir("/home", 0777).is_ok());
    auto ino = fs_->create("/home/f", 0600, owner);
    ASSERT_TRUE(ino.is_ok());
    EXPECT_FALSE(fs_->chmod(*ino, 0644, other).is_ok());
    ASSERT_TRUE(fs_->chmod(*ino, 0644, owner).is_ok());
    EXPECT_EQ(fs_->stat(*ino)->perm, 0644);
    EXPECT_FALSE(fs_->chown(*ino, 11, 21, other).is_ok());
    ASSERT_TRUE(fs_->chown(*ino, 11, 21, Credentials{0, 0}).is_ok());
    EXPECT_EQ(fs_->stat(*ino)->uid, 11);
}

// --- FIEMAP & allocate_range -----------------------------------------------

TEST_F(NestFsTest, FiemapMatchesWrites)
{
    auto ino = fs_->create("/map", 0644);
    std::vector<std::byte> data(8 * kFsBlockSize, std::byte{1});
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    auto extents = fs_->fiemap(*ino);
    ASSERT_TRUE(extents.is_ok());
    EXPECT_TRUE(extent::is_valid_extent_list(*extents));
    EXPECT_EQ(extent::total_mapped_blocks(*extents), 8u);
    // Sequential writes should coalesce well: far fewer extents than
    // blocks.
    EXPECT_LE(extents->size(), 2u);
}

TEST_F(NestFsTest, AllocateRangeMapsWithoutData)
{
    auto ino = fs_->create("/alloc", 0644);
    ASSERT_TRUE(fs_->allocate_range(*ino, 10, 20).is_ok());
    auto extents = fs_->fiemap(*ino);
    ASSERT_TRUE(extents.is_ok());
    EXPECT_EQ(extent::total_mapped_blocks(*extents), 20u);
    EXPECT_TRUE(map_lookup(*extents, 10).has_value());
    EXPECT_TRUE(map_lookup(*extents, 29).has_value());
    EXPECT_FALSE(map_lookup(*extents, 9).has_value());
    EXPECT_EQ(fs_->stat(*ino)->size_bytes, 30u * kFsBlockSize);
}

TEST_F(NestFsTest, AllocateRangeIdempotent)
{
    auto ino = fs_->create("/alloc2", 0644);
    ASSERT_TRUE(fs_->allocate_range(*ino, 0, 16).is_ok());
    const auto free_after = fs_->free_blocks();
    ASSERT_TRUE(fs_->allocate_range(*ino, 0, 16).is_ok());
    EXPECT_EQ(fs_->free_blocks(), free_after);
}

TEST_F(NestFsTest, ExtentChainSpillAndReload)
{
    // Force far more extents than fit inline (8): fragment by
    // alternating allocation between two files.
    auto a = fs_->create("/chainA", 0644);
    auto b = fs_->create("/chainB", 0644);
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    const std::uint64_t n = 200;
    for (std::uint64_t vb = 0; vb < n; ++vb) {
        ASSERT_TRUE(fs_->allocate_range(*a, vb, 1).is_ok());
        ASSERT_TRUE(fs_->allocate_range(*b, vb, 1).is_ok());
    }
    auto extents = fs_->fiemap(*a);
    ASSERT_TRUE(extents.is_ok());
    EXPECT_EQ(extents->size(), n); // fully fragmented
    EXPECT_EQ(fs_->stat(*a)->extent_count, n);

    // Persist through a remount (the chain lives on disk).
    ASSERT_TRUE(fs_->unmount().is_ok());
    fs_.reset();
    auto remounted = NestFs::mount(io_);
    ASSERT_TRUE(remounted.is_ok());
    auto ino2 = (*remounted)->resolve("/chainA");
    ASSERT_TRUE(ino2.is_ok());
    auto extents2 = (*remounted)->fiemap(*ino2);
    ASSERT_TRUE(extents2.is_ok());
    EXPECT_EQ(*extents2, *extents);
}

// --- Crash recovery -----------------------------------------------------------

TEST_F(NestFsTest, JournalReplayAfterCrash)
{
    // Do metadata-heavy work and "crash" (drop the NestFs without
    // unmount, leaving clean_shutdown unset and possibly un-replayed
    // journal state). Mount must produce a consistent tree.
    auto ino = fs_->create("/crash1", 0644);
    ASSERT_TRUE(ino.is_ok());
    ASSERT_TRUE(fs_->write(*ino, 0, bytes_of("committed data")).is_ok());
    ASSERT_TRUE(fs_->create("/crash2", 0644).is_ok());
    // No unmount: crash.
    fs_.reset();

    auto remounted = NestFs::mount(io_);
    ASSERT_TRUE(remounted.is_ok()) << remounted.status().to_string();
    EXPECT_TRUE((*remounted)->resolve("/crash1").is_ok());
    EXPECT_TRUE((*remounted)->resolve("/crash2").is_ok());
    auto again = (*remounted)->resolve("/crash1");
    std::vector<std::byte> back(14);
    ASSERT_EQ(*(*remounted)->read(*again, 0, back), 14u);
    EXPECT_EQ(back, bytes_of("committed data"));
}

TEST_F(NestFsTest, RecoveredFreeCountsAreConsistent)
{
    ASSERT_TRUE(fs_->create("/placeholder", 0644).is_ok());
    auto free0 = fs_->free_blocks();
    auto ino = fs_->create("/f", 0644);
    std::vector<std::byte> data(32 * kFsBlockSize, std::byte{1});
    ASSERT_TRUE(fs_->write(*ino, 0, data).is_ok());
    auto free1 = fs_->free_blocks();
    fs_.reset(); // crash
    auto remounted = NestFs::mount(io_);
    ASSERT_TRUE(remounted.is_ok());
    EXPECT_EQ((*remounted)->free_blocks(), free1);
    ASSERT_TRUE((*remounted)->unlink("/f").is_ok());
    EXPECT_EQ((*remounted)->free_blocks(), free0);
}

// --- Resource exhaustion ----------------------------------------------------

TEST_F(NestFsTest, OutOfInodes)
{
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo io(sim_, dev);
    NestFsConfig config;
    config.inode_count = 4; // root + 3
    auto fs = NestFs::format(io, config);
    ASSERT_TRUE(fs.is_ok());
    ASSERT_TRUE((*fs)->create("/a", 0644).is_ok());
    ASSERT_TRUE((*fs)->create("/b", 0644).is_ok());
    ASSERT_TRUE((*fs)->create("/c", 0644).is_ok());
    EXPECT_EQ((*fs)->create("/d", 0644).status().code(),
              util::ErrorCode::kResourceExhausted);
    // Deleting frees the inode for reuse.
    ASSERT_TRUE((*fs)->unlink("/b").is_ok());
    EXPECT_TRUE((*fs)->create("/d", 0644).is_ok());
}

TEST_F(NestFsTest, OutOfBlocks)
{
    storage::MemBlockDevice dev(fast_device(1 << 20)); // 1 MiB volume
    blk::DeviceBlockIo io(sim_, dev);
    auto fs = NestFs::format(io);
    ASSERT_TRUE(fs.is_ok());
    auto ino = (*fs)->create("/huge", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> chunk(64 * kFsBlockSize, std::byte{1});
    util::Status status = util::Status::ok();
    std::uint64_t offset = 0;
    while (status.is_ok()) {
        status = (*fs)->write(*ino, offset, chunk);
        offset += chunk.size();
        ASSERT_LT(offset, 4ULL << 20) << "should exhaust before 4 MiB";
    }
    EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
}

// --- Randomized property test against an in-memory reference -----------------

TEST_F(NestFsTest, RandomOpsMatchReferenceModel)
{
    util::Rng rng(1234);
    auto ino = fs_->create("/model", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> reference; // authoritative file image

    for (int op = 0; op < 150; ++op) {
        const int kind = static_cast<int>(rng.next_below(10));
        if (kind < 5) { // write
            const std::uint64_t offset = rng.next_below(48 * 1024);
            std::vector<std::byte> data(1 + rng.next_below(6000));
            for (auto &b : data)
                b = static_cast<std::byte>(rng.next());
            ASSERT_TRUE(fs_->write(*ino, offset, data).is_ok());
            if (reference.size() < offset + data.size())
                reference.resize(offset + data.size());
            std::copy(data.begin(), data.end(),
                      reference.begin() + static_cast<long>(offset));
        } else if (kind < 8) { // read & compare
            const std::uint64_t offset = rng.next_below(64 * 1024);
            std::vector<std::byte> buf(1 + rng.next_below(8000));
            auto got = fs_->read(*ino, offset, buf);
            ASSERT_TRUE(got.is_ok());
            const std::uint64_t want =
                offset >= reference.size()
                    ? 0
                    : std::min<std::uint64_t>(buf.size(),
                                              reference.size() - offset);
            ASSERT_EQ(*got, want);
            for (std::uint64_t i = 0; i < want; ++i)
                ASSERT_EQ(buf[i], reference[offset + i])
                    << "op=" << op << " i=" << i;
        } else { // truncate
            const std::uint64_t new_size = rng.next_below(64 * 1024);
            ASSERT_TRUE(fs_->truncate(*ino, new_size).is_ok());
            const std::size_t old = reference.size();
            reference.resize(new_size);
            for (std::size_t i = old; i < reference.size(); ++i)
                reference[i] = std::byte{0};
        }
    }
}

} // namespace
} // namespace nesc::fs
