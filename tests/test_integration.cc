/**
 * @file
 * End-to-end integration tests: full testbed, guests attached via each
 * virtualization technique, data integrity across the whole stack, and
 * the paper's qualitative performance ordering.
 */
#include <gtest/gtest.h>

#include "util/units.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

using virt::Testbed;
using virt::TestbedConfig;

TestbedConfig
small_config()
{
    TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20; // 64 MiB device
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

TEST(Integration, TestbedComesUp)
{
    auto bed = Testbed::create(small_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    EXPECT_TRUE((*bed)->controller().is_active(pcie::kPhysicalFunctionId));
    EXPECT_GT((*bed)->hv_fs().free_blocks(), 0u);
}

TEST(Integration, HostRawPathMovesData)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok()) << bed_or.status().to_string();
    auto &bed = **bed_or;

    // Write a pattern through the Host baseline and read it back.
    blk::BlockIo &io = bed.host_raw_io();
    std::vector<std::byte> out(16 * 1024), in(16 * 1024);
    wl::fill_pattern(3, 0, out);
    // Use blocks far from the hypervisor FS metadata.
    const std::uint64_t base = io.num_blocks() - 64;
    ASSERT_TRUE(io.write_blocks(base, 16, out).is_ok());
    ASSERT_TRUE(io.read_blocks(base, 16, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_GT(bed.sim().now(), 0u);
}

TEST(Integration, NescGuestReadsWritesThroughVf)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok()) << bed_or.status().to_string();
    auto &bed = **bed_or;

    auto vm_or = bed.create_nesc_guest("/images/vm0.img", 8192,
                                       /*preallocate=*/true);
    ASSERT_TRUE(vm_or.is_ok()) << vm_or.status().to_string();
    auto &vm = **vm_or;

    std::vector<std::byte> out(8 * 1024), in(8 * 1024);
    wl::fill_pattern(7, 0, out);
    ASSERT_TRUE(vm.raw_disk().write_blocks(100, 8, out).is_ok());
    ASSERT_TRUE(vm.raw_disk().read_blocks(100, 8, in).is_ok());
    EXPECT_EQ(out, in);

    // The data must have landed in the backing file, translated through
    // the extent tree: read it via the hypervisor filesystem.
    auto ino = bed.hv_fs().resolve("/images/vm0.img");
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> via_fs(8 * 1024);
    auto got = bed.hv_fs().read(*ino, 100 * 1024, via_fs);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(*got, via_fs.size());
    EXPECT_EQ(out, via_fs);
}

TEST(Integration, NescGuestLazyAllocationFaultPath)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok());
    auto &bed = **bed_or;

    // No preallocation: the first write to each region must fault,
    // interrupt the hypervisor, allocate, and rewalk.
    auto vm_or = bed.create_nesc_guest("/images/lazy.img", 8192,
                                       /*preallocate=*/false);
    ASSERT_TRUE(vm_or.is_ok()) << vm_or.status().to_string();
    auto &vm = **vm_or;

    std::vector<std::byte> out(4 * 1024), in(4 * 1024);
    wl::fill_pattern(9, 0, out);
    ASSERT_TRUE(vm.raw_disk().write_blocks(500, 4, out).is_ok());
    ASSERT_TRUE(vm.raw_disk().read_blocks(500, 4, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_GE(bed.pf().write_misses_serviced(), 1u);
    EXPECT_GE(bed.controller().counters().get("write_miss_faults"), 1u);
}

TEST(Integration, NescGuestHolesReadAsZeros)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok());
    auto &bed = **bed_or;
    auto vm_or = bed.create_nesc_guest("/images/holey.img", 8192,
                                       /*preallocate=*/false);
    ASSERT_TRUE(vm_or.is_ok());
    auto &vm = **vm_or;

    std::vector<std::byte> in(4 * 1024, std::byte{0xff});
    ASSERT_TRUE(vm.raw_disk().read_blocks(1000, 4, in).is_ok());
    for (std::byte b : in)
        EXPECT_EQ(b, std::byte{0});
    EXPECT_GE(bed.controller().counters().get("holes_zero_filled"), 1u);
}

TEST(Integration, VirtioAndEmulatedGuestsMoveData)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok());
    auto &bed = **bed_or;

    for (auto maker : {&Testbed::create_virtio_guest_raw,
                       &Testbed::create_emulated_guest_raw}) {
        auto vm_or = (bed.*maker)();
        ASSERT_TRUE(vm_or.is_ok()) << vm_or.status().to_string();
        auto &vm = **vm_or;
        std::vector<std::byte> out(4 * 1024), in(4 * 1024);
        wl::fill_pattern(11, 0, out);
        const std::uint64_t base = vm.device().num_blocks() - 32;
        ASSERT_TRUE(vm.raw_disk().write_blocks(base, 4, out).is_ok());
        ASSERT_TRUE(vm.raw_disk().read_blocks(base, 4, in).is_ok());
        EXPECT_EQ(out, in);
    }
}

TEST(Integration, PerformanceOrderingMatchesPaper)
{
    // The paper's core result (Figs. 9/10): NeSC ~= Host, substantially
    // faster than virtio, which is substantially faster than emulation.
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok());
    auto &bed = **bed_or;

    auto nesc_vm = bed.create_nesc_guest("/images/perf.img", 8192, true);
    ASSERT_TRUE(nesc_vm.is_ok());
    auto virtio_vm = bed.create_virtio_guest_raw();
    ASSERT_TRUE(virtio_vm.is_ok());
    auto emu_vm = bed.create_emulated_guest_raw();
    ASSERT_TRUE(emu_vm.is_ok());

    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 256 * 1024;
    dd.write = true;

    auto host = wl::run_dd_raw(bed.sim(), bed.host_raw_io(), dd);
    ASSERT_TRUE(host.is_ok());
    auto nesc = wl::run_dd_raw(bed.sim(), (*nesc_vm)->raw_disk(), dd);
    ASSERT_TRUE(nesc.is_ok());
    dd.start_offset = (bed.device().geometry().num_blocks() - 2048) * 1024;
    auto virtio = wl::run_dd_raw(bed.sim(), (*virtio_vm)->raw_disk(), dd);
    ASSERT_TRUE(virtio.is_ok());
    auto emu = wl::run_dd_raw(bed.sim(), (*emu_vm)->raw_disk(), dd);
    ASSERT_TRUE(emu.is_ok());

    // NeSC within 2x of host; virtio at least 2x slower than NeSC;
    // emulation at least 2x slower than virtio (loose bounds — the
    // bench binaries report exact ratios).
    EXPECT_LT(nesc->mean_latency_us, host->mean_latency_us * 2.0);
    EXPECT_GT(virtio->mean_latency_us, nesc->mean_latency_us * 2.0);
    EXPECT_GT(emu->mean_latency_us, virtio->mean_latency_us * 2.0);
}

TEST(Integration, NestedFilesystemInsideNescGuest)
{
    auto bed_or = Testbed::create(small_config());
    ASSERT_TRUE(bed_or.is_ok());
    auto &bed = **bed_or;
    auto vm_or = bed.create_nesc_guest("/images/fsvm.img", 16384, true);
    ASSERT_TRUE(vm_or.is_ok());
    auto &vm = **vm_or;

    ASSERT_TRUE(vm.format_fs().is_ok());
    auto ino = vm.fs()->create("/hello.txt", 0644);
    ASSERT_TRUE(ino.is_ok()) << ino.status().to_string();
    const std::string text = "nested filesystems, hardware-mapped";
    ASSERT_TRUE(vm.fs()
                    ->write(*ino, 0,
                            std::span<const std::byte>(
                                reinterpret_cast<const std::byte *>(
                                    text.data()),
                                text.size()))
                    .is_ok());
    ASSERT_TRUE(vm.fs()->fsync(*ino).is_ok());

    std::vector<std::byte> back(text.size());
    auto got = vm.fs()->read(*ino, 0, back);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(*got, text.size());
    EXPECT_EQ(std::memcmp(back.data(), text.data(), text.size()), 0);
}

} // namespace
} // namespace nesc
