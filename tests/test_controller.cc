/**
 * @file
 * Unit tests for the NeSC controller: register interface, VF
 * lifecycle, request pipeline (translation, holes, faults, rewalk,
 * write failure), the PF out-of-band channel, and isolation.
 */
#include <gtest/gtest.h>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "workloads/dd.h"

namespace nesc::ctrl {
namespace {

/** Bare-metal controller harness (no hypervisor software). */
class ControllerTest : public ::testing::Test {
  protected:
    ControllerTest()
        : host_memory_(32 << 20), device_(device_config()), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_,
                      controller_config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    device_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 16 << 20;
        return cfg;
    }

    static ControllerConfig
    controller_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        return cfg;
    }

    /** Creates a VF mapped by @p extents through the PF mgmt regs. */
    pcie::FunctionId
    create_vf(const extent::ExtentList &extents,
              std::uint64_t size_blocks, pcie::FunctionId fn = 1)
    {
        auto image = extent::ExtentTreeImage::build(host_memory_, extents);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        EXPECT_TRUE(
            controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtExtentRoot,
                                    trees_.back().root(), 8)
                        .is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtDeviceSize, size_blocks, 8)
                        .is_ok());
        EXPECT_TRUE(
            controller_
                .mmio_write(0, reg::kMgmtCommand,
                            static_cast<std::uint64_t>(
                                MgmtCommand::kCreateVf),
                            8)
                .is_ok());
        EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
        return fn;
    }

    /** A driver bound to @p fn. */
    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn)
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn,
            drv::FunctionDriverConfig{});
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

// --- Registers & lifecycle --------------------------------------------------

TEST_F(ControllerTest, PfActiveFromBoot)
{
    EXPECT_TRUE(controller_.is_active(0));
    EXPECT_FALSE(controller_.is_active(1));
    EXPECT_EQ(*controller_.mmio_read(0, reg::kDeviceSize, 8),
              device_.geometry().num_blocks());
}

TEST_F(ControllerTest, UnknownRegisterRejected)
{
    EXPECT_FALSE(controller_.mmio_read(0, 0x7000, 8).is_ok());
    EXPECT_FALSE(controller_.mmio_write(0, 0x7000, 1, 8).is_ok());
    EXPECT_FALSE(controller_.mmio_read(999, 0, 8).is_ok());
}

TEST_F(ControllerTest, MgmtRegistersArePfOnly)
{
    create_vf({{0, 100, 1000}}, 100);
    EXPECT_EQ(controller_.mmio_write(1, reg::kMgmtCommand, 1, 4).code(),
              util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(controller_.mmio_read(1, reg::kMgmtStatus, 4)
                  .status()
                  .code(),
              util::ErrorCode::kPermissionDenied);
}

TEST_F(ControllerTest, VfLifecycle)
{
    const auto fn = create_vf({{0, 64, 1000}}, 64);
    EXPECT_TRUE(controller_.is_active(fn));
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kDeviceSize, 8), 64u);

    // Double create of the same slot fails.
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kCreateVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kError));

    // Delete.
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kDeleteVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
    EXPECT_FALSE(controller_.is_active(fn));
}

TEST_F(ControllerTest, InvalidVfSlotRejected)
{
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, 0, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kCreateVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kError));
    ASSERT_TRUE(
        controller_.mmio_write(0, reg::kMgmtVfId, 99, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kCreateVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kError));
}

TEST_F(ControllerTest, DoorbellOnInactiveFunctionFails)
{
    EXPECT_FALSE(controller_.mmio_write(2, reg::kDoorbell, 1, 4).is_ok());
}

// --- Data path ----------------------------------------------------------------

TEST_F(ControllerTest, VfTranslatedWriteLandsAtPhysicalBlocks)
{
    // VF maps vLBA 0..63 -> pLBA 1000..1063.
    const auto fn = create_vf({{0, 64, 1000}}, 64);
    auto driver = make_driver(fn);

    std::vector<std::byte> out(4 * 1024), in(4 * 1024);
    wl::fill_pattern(1, 0, out);
    ASSERT_TRUE(driver->write_sync(8, 4, out).is_ok());

    // The data must be at physical offset 1008 KiB on the media.
    ASSERT_TRUE(device_.read(1008 * 1024, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_EQ(controller_.stats(fn).blocks_written, 4u);
}

TEST_F(ControllerTest, VfReadSeesOnlyItsOwnMapping)
{
    // Two VFs with disjoint mappings over the same device.
    const auto fn1 = create_vf({{0, 32, 1000}}, 32, 1);
    const auto fn2 = create_vf({{0, 32, 2000}}, 32, 2);
    auto d1 = make_driver(fn1);
    auto d2 = make_driver(fn2);

    std::vector<std::byte> a(1024, std::byte{0xaa});
    std::vector<std::byte> b(1024, std::byte{0xbb});
    ASSERT_TRUE(d1->write_sync(0, 1, a).is_ok());
    ASSERT_TRUE(d2->write_sync(0, 1, b).is_ok());

    std::vector<std::byte> back(1024);
    ASSERT_TRUE(d1->read_sync(0, 1, back).is_ok());
    EXPECT_EQ(back, a);
    ASSERT_TRUE(d2->read_sync(0, 1, back).is_ok());
    EXPECT_EQ(back, b);
    // Physical placement confirms isolation.
    ASSERT_TRUE(device_.read(1000 * 1024, back).is_ok());
    EXPECT_EQ(back, a);
    ASSERT_TRUE(device_.read(2000 * 1024, back).is_ok());
    EXPECT_EQ(back, b);
}

TEST_F(ControllerTest, OutOfRangeVlbaCompletesWithError)
{
    const auto fn = create_vf({{0, 16, 1000}}, 16);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    auto status = driver->read_sync(16, 1, buf); // vLBA == size
    EXPECT_FALSE(status.is_ok());
}

TEST_F(ControllerTest, HoleReadReturnsZeros)
{
    // Mapping covers blocks 0..7 only; device size is 32.
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024, std::byte{0xff});
    ASSERT_TRUE(driver->read_sync(20, 1, buf).is_ok());
    for (std::byte b : buf)
        EXPECT_EQ(b, std::byte{0});
    EXPECT_EQ(controller_.stats(fn).holes_zero_filled, 1u);
}

TEST_F(ControllerTest, WriteMissRaisesFaultAndStalls)
{
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto driver = make_driver(fn);

    bool completed = false;
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [&](CompletionStatus) { completed = true; })
                    .is_ok());
    sim_.run_until_idle();

    // No hypervisor handler is installed in this harness: the VF must
    // be stalled with the fault latched in the registers.
    EXPECT_FALSE(completed);
    EXPECT_EQ(controller_.fault_kind(fn), FaultKind::kWriteMiss);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kMissAddress, 8),
              20u * kDeviceBlockSize);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kMissSize, 4),
              kDeviceBlockSize);

    // Service the fault by hand: extend the mapping, repoint the root
    // through the PF mgmt block, and rewalk.
    auto image = extent::ExtentTreeImage::build(
        host_memory_, {{0, 8, 1000}, {20, 1, 3000}});
    ASSERT_TRUE(image.is_ok());
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtExtentRoot, image->root(), 8)
                    .is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kSetExtentRoot),
                                8)
                    .is_ok());
    ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
    ASSERT_TRUE(
        controller_.mmio_write(fn, reg::kRewalkTree, 1, 4).is_ok());
    sim_.run_until_idle();
    EXPECT_TRUE(completed);
    EXPECT_EQ(controller_.fault_kind(fn), FaultKind::kNone);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kMissSize, 4), 0u);
}

TEST_F(ControllerTest, PrunedSubtreeFaultsOnRead)
{
    extent::ExtentList extents;
    for (std::uint64_t i = 0; i < 64; ++i)
        extents.push_back(extent::Extent{i, 1, 1000 + i * 2});
    auto image_or = extent::ExtentTreeImage::build(
        host_memory_, extents, extent::TreeConfig{.fanout = 4});
    ASSERT_TRUE(image_or.is_ok());
    trees_.push_back(std::move(image_or).value());
    extent::ExtentTreeImage &image = trees_.back();
    ASSERT_TRUE(image.prune_range(16, 16).is_ok());

    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, 1, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtExtentRoot, image.root(), 8)
                    .is_ok());
    ASSERT_TRUE(
        controller_.mmio_write(0, reg::kMgmtDeviceSize, 64, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kCreateVf),
                                8)
                    .is_ok());
    auto driver = make_driver(1);

    bool completed = false;
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kRead, 20, 1, *buffer,
                             [&](CompletionStatus) { completed = true; })
                    .is_ok());
    sim_.run_until_idle();
    EXPECT_FALSE(completed);
    EXPECT_EQ(controller_.fault_kind(1), FaultKind::kPruned);
    EXPECT_EQ(controller_.counters().get("prune_faults"), 1u);
}

TEST_F(ControllerTest, FailMissCompletesStalledWritesWithError)
{
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto driver = make_driver(fn);
    CompletionStatus status = CompletionStatus::kOk;
    bool completed = false;
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [&](CompletionStatus s) {
                                 completed = true;
                                 status = s;
                             })
                    .is_ok());
    sim_.run_until_idle();
    ASSERT_FALSE(completed);

    // Hypervisor cannot allocate: fail the miss (Fig. 5b error leg).
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kFailMiss),
                                8)
                    .is_ok());
    sim_.run_until_idle();
    EXPECT_TRUE(completed);
    EXPECT_EQ(status, CompletionStatus::kWriteFailed);
    EXPECT_EQ(controller_.counters().get("write_failures"), 1u);
}

TEST_F(ControllerTest, OobChannelBypassesStalledVf)
{
    // Stall VF 1 on a write miss, then verify the PF still serves I/O
    // (the out-of-band channel of §V.A).
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto vf_driver = make_driver(fn);
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(vf_driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [](CompletionStatus) {})
                    .is_ok());
    sim_.run_until_idle();
    ASSERT_EQ(controller_.fault_kind(fn), FaultKind::kWriteMiss);

    auto pf_driver = make_driver(0);
    std::vector<std::byte> data(1024, std::byte{0x3c});
    ASSERT_TRUE(pf_driver->write_sync(500, 1, data).is_ok());
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(pf_driver->read_sync(500, 1, back).is_ok());
    EXPECT_EQ(back, data);
    EXPECT_GT(controller_.counters().get("oob_requests"), 0u);
}

TEST_F(ControllerTest, BtlbCachesAcrossRequests)
{
    const auto fn = create_vf({{0, 64, 1000}}, 64);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    const auto misses_after_first = controller_.btlb().misses();
    ASSERT_TRUE(driver->read_sync(1, 1, buf).is_ok());
    ASSERT_TRUE(driver->read_sync(63, 1, buf).is_ok());
    EXPECT_EQ(controller_.btlb().misses(), misses_after_first);
    EXPECT_GE(controller_.btlb().hits(), 2u);
}

TEST_F(ControllerTest, MgmtBtlbFlush)
{
    const auto fn = create_vf({{0, 64, 1000}}, 64);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_GT(controller_.btlb().size(), 0u);
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kFlushBtlb),
                                8)
                    .is_ok());
    EXPECT_EQ(controller_.btlb().size(), 0u);
}

TEST_F(ControllerTest, DeleteBusyVfRefused)
{
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto driver = make_driver(fn);
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    // Stall the VF so it stays busy.
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [](CompletionStatus) {})
                    .is_ok());
    sim_.run_until_idle();
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kDeleteVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kError));
}

TEST_F(ControllerTest, VfExtentRootWriteDenied)
{
    // Isolation: a guest must not be able to repoint its own extent
    // tree at a self-crafted mapping covering other VFs' blocks.
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    const std::uint64_t root =
        *controller_.mmio_read(fn, reg::kExtentTreeRoot, 8);
    EXPECT_EQ(controller_.mmio_write(fn, reg::kExtentTreeRoot, 0xdead00, 8)
                  .code(),
              util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kExtentTreeRoot, 8), root);

    // The sanctioned path — PF mgmt kSetExtentRoot — does work.
    auto image = extent::ExtentTreeImage::build(host_memory_,
                                                {{0, 8, 2000}});
    ASSERT_TRUE(image.is_ok());
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtExtentRoot, image->root(), 8)
                    .is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kSetExtentRoot),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kExtentTreeRoot, 8),
              image->root());
}

TEST_F(ControllerTest, DeleteVfWithPendingFetchRefused)
{
    // A doorbell whose fetch has not landed yet must also count as
    // busy: deleting then would strand the command with no completion.
    const auto fn = create_vf({{0, 8, 1000}}, 8);
    auto driver = make_driver(fn);
    auto buffer = host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    bool completed = false;
    ASSERT_TRUE(driver
                    ->submit(Opcode::kRead, 0, 1, *buffer,
                             [&](CompletionStatus) { completed = true; })
                    .is_ok());
    // Doorbell rung, fetch still in flight (doorbell_latency pending).
    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kDeleteVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kError));

    sim_.run_until_idle();
    EXPECT_TRUE(completed);
    // Quiescent now: the delete goes through.
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kDeleteVf),
                                8)
                    .is_ok());
    EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
}

TEST_F(ControllerTest, FailMissFailsWritesAndResumesReads)
{
    // Park two unmapped writes and one mapped read behind the fault,
    // then FailMiss: the writes complete kWriteFailed, the read is
    // requeued and completes kOk, and the VF keeps working.
    const auto fn = create_vf({{0, 8, 1000}}, 32);
    auto driver = make_driver(fn);
    auto buffer = host_memory_.alloc(4 * 1024, 64);
    ASSERT_TRUE(buffer.is_ok());

    // Back-to-back: the two unmapped writes occupy both walkers; the
    // read arrives while they are busy, so when the first write
    // faults the read is parked in the stalled queue behind it.
    CompletionStatus w1 = CompletionStatus::kOk, w2 = w1, r1 = w1;
    bool w1_done = false, w2_done = false, r1_done = false;
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [&](CompletionStatus s) {
                                 w1 = s;
                                 w1_done = true;
                             })
                    .is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 21, 1, *buffer,
                             [&](CompletionStatus s) {
                                 w2 = s;
                                 w2_done = true;
                             })
                    .is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kRead, 0, 1, *buffer,
                             [&](CompletionStatus s) {
                                 r1 = s;
                                 r1_done = true;
                             })
                    .is_ok());
    sim_.run_until_idle();
    ASSERT_EQ(controller_.fault_kind(fn), FaultKind::kWriteMiss);
    ASSERT_FALSE(w1_done);
    ASSERT_FALSE(w2_done);
    ASSERT_FALSE(r1_done);

    ASSERT_TRUE(controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(0, reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    MgmtCommand::kFailMiss),
                                8)
                    .is_ok());
    sim_.run_until_idle();
    EXPECT_TRUE(w1_done && w2_done && r1_done);
    EXPECT_EQ(w1, CompletionStatus::kWriteFailed);
    EXPECT_EQ(w2, CompletionStatus::kWriteFailed);
    EXPECT_EQ(r1, CompletionStatus::kOk);
    EXPECT_EQ(controller_.fault_kind(fn), FaultKind::kNone);

    // The VF resumed cleanly: a mapped write goes through.
    std::vector<std::byte> data(1024, std::byte{0x5a});
    EXPECT_TRUE(driver->write_sync(0, 1, data).is_ok());
}

TEST_F(ControllerTest, QuiescentReflectsPipelineState)
{
    EXPECT_TRUE(controller_.quiescent());
    const auto fn = create_vf({{0, 8, 1000}}, 8);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    sim_.run_until_idle();
    EXPECT_TRUE(controller_.quiescent());
}

TEST_F(ControllerTest, LargeCommandSplitIntoDeviceBlocks)
{
    const auto fn = create_vf({{0, 256, 1000}}, 256);
    auto driver = make_driver(fn);
    std::vector<std::byte> out(64 * 1024), in(64 * 1024);
    wl::fill_pattern(3, 0, out);
    ASSERT_TRUE(driver->write_sync(0, 64, out).is_ok());
    ASSERT_TRUE(driver->read_sync(0, 64, in).is_ok());
    EXPECT_EQ(out, in);
    // 64 blocks in 4-block driver chunks => 16 commands.
    EXPECT_EQ(controller_.stats(fn).commands, 32u); // writes + reads
    EXPECT_EQ(controller_.stats(fn).blocks_written, 64u);
    EXPECT_EQ(controller_.stats(fn).blocks_read, 64u);
}

} // namespace
} // namespace nesc::ctrl
