/**
 * @file
 * Unit tests for the block layer: device adapter, cost decorator,
 * buffer cache, I/O scheduler, and the assembled OS stack.
 */
#include <gtest/gtest.h>

#include "blocklayer/buffer_cache.h"
#include "blocklayer/costed_block_io.h"
#include "blocklayer/device_block_io.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/os_block_stack.h"
#include "storage/mem_block_device.h"

namespace nesc::blk {
namespace {

storage::MemBlockDeviceConfig
timed_device()
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 4 << 20;
    cfg.read_bytes_per_sec = 1'000'000'000;
    cfg.write_bytes_per_sec = 1'000'000'000;
    cfg.access_latency = 1000;
    return cfg;
}

std::vector<std::byte>
blocks_of(std::uint32_t count, std::uint8_t fill)
{
    return std::vector<std::byte>(count * 1024,
                                  static_cast<std::byte>(fill));
}

// --- DeviceBlockIo -----------------------------------------------------

TEST(DeviceBlockIo, AdvancesClockByServiceTime)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(timed_device());
    DeviceBlockIo io(sim, dev);
    auto data = blocks_of(1, 0x11);
    ASSERT_TRUE(io.write_blocks(0, 1, data).is_ok());
    // 1024 B at 1 GB/s = 1024 ns + 1000 ns latency.
    EXPECT_EQ(sim.now(), 2024u);
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(io.read_blocks(0, 1, back).is_ok());
    EXPECT_EQ(back, data);
}

TEST(DeviceBlockIo, SizeMismatchRejected)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(timed_device());
    DeviceBlockIo io(sim, dev);
    std::vector<std::byte> wrong(100);
    EXPECT_FALSE(io.read_blocks(0, 1, wrong).is_ok());
    EXPECT_FALSE(io.write_blocks(0, 1, wrong).is_ok());
}

// --- CostedBlockIo ------------------------------------------------------

TEST(CostedBlockIo, ChargesPerOpAndPerPage)
{
    sim::Simulator sim;
    storage::MemBlockDeviceConfig cfg = timed_device();
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    storage::MemBlockDevice dev(cfg);
    DeviceBlockIo base(sim, dev);
    CostedBlockIo costed(sim, base, "test", 500, 100);
    auto data = blocks_of(8, 0); // 8 KiB = two 4 KiB pages
    ASSERT_TRUE(costed.write_blocks(0, 8, data).is_ok());
    EXPECT_EQ(sim.now(), 500u + 2 * 100u);
    EXPECT_EQ(costed.ops(), 1u);
    EXPECT_EQ(costed.cpu_charged(), 700u);
}

// --- BufferCache --------------------------------------------------------

class BufferCacheTest : public ::testing::Test {
  protected:
    BufferCacheTest() : dev_(timed_device()), base_(sim_, dev_)
    {
        config_.capacity_blocks = 4;
        config_.hit_cost = 10;
        config_.miss_cost = 20;
        cache_ = std::make_unique<BufferCache>(sim_, base_, config_);
    }

    sim::Simulator sim_;
    storage::MemBlockDevice dev_;
    DeviceBlockIo base_;
    BufferCacheConfig config_;
    std::unique_ptr<BufferCache> cache_;
};

TEST_F(BufferCacheTest, ReadMissThenHit)
{
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(cache_->read_blocks(5, 1, buf).is_ok());
    EXPECT_EQ(cache_->misses(), 1u);
    const sim::Time after_miss = sim_.now();
    ASSERT_TRUE(cache_->read_blocks(5, 1, buf).is_ok());
    EXPECT_EQ(cache_->hits(), 1u);
    // A hit costs only the lookup, no device access.
    EXPECT_EQ(sim_.now(), after_miss + 10);
}

TEST_F(BufferCacheTest, WriteBackDefersDeviceWrite)
{
    auto data = blocks_of(1, 0x77);
    ASSERT_TRUE(cache_->write_blocks(3, 1, data).is_ok());
    EXPECT_EQ(cache_->dirty_blocks(), 1u);
    EXPECT_EQ(dev_.bytes_written(), 0u);
    ASSERT_TRUE(cache_->flush().is_ok());
    EXPECT_EQ(cache_->dirty_blocks(), 0u);
    EXPECT_EQ(dev_.bytes_written(), 1024u);
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(dev_.read(3 * 1024, back).is_ok());
    EXPECT_EQ(back, data);
}

TEST_F(BufferCacheTest, EvictionWritesBackDirtyVictim)
{
    auto data = blocks_of(1, 0x42);
    ASSERT_TRUE(cache_->write_blocks(0, 1, data).is_ok());
    // Fill the 4-entry cache past capacity with clean reads.
    std::vector<std::byte> buf(1024);
    for (std::uint64_t b = 10; b < 15; ++b)
        ASSERT_TRUE(cache_->read_blocks(b, 1, buf).is_ok());
    EXPECT_GE(cache_->evictions(), 1u);
    // The dirty block 0 was LRU and must have been written back.
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(dev_.read(0, back).is_ok());
    EXPECT_EQ(back, data);
}

TEST_F(BufferCacheTest, ReadMissClustersContiguousRuns)
{
    std::vector<std::byte> buf(4 * 1024);
    ASSERT_TRUE(cache_->read_blocks(0, 4, buf).is_ok());
    // One downstream access for the whole run, 4 misses counted.
    EXPECT_EQ(cache_->misses(), 4u);
    EXPECT_EQ(dev_.bytes_read(), 4096u);
}

TEST_F(BufferCacheTest, WriteThroughForwardsImmediately)
{
    BufferCacheConfig wt = config_;
    wt.write_through = true;
    BufferCache cache(sim_, base_, wt);
    auto data = blocks_of(1, 0x11);
    ASSERT_TRUE(cache.write_blocks(7, 1, data).is_ok());
    EXPECT_EQ(dev_.bytes_written(), 1024u);
    EXPECT_EQ(cache.dirty_blocks(), 0u);
}

TEST_F(BufferCacheTest, FlushMergesAdjacentDirtyBlocks)
{
    auto data = blocks_of(1, 1);
    // Dirty blocks 2,3,4 written individually.
    for (std::uint64_t b = 2; b <= 4; ++b)
        ASSERT_TRUE(cache_->write_blocks(b, 1, data).is_ok());
    const std::uint64_t writes_before = dev_.bytes_written();
    ASSERT_TRUE(cache_->flush().is_ok());
    EXPECT_EQ(dev_.bytes_written() - writes_before, 3 * 1024u);
    EXPECT_EQ(cache_->writebacks(), 3u);
}

TEST_F(BufferCacheTest, InvalidateRequiresCleanCache)
{
    auto data = blocks_of(1, 1);
    ASSERT_TRUE(cache_->write_blocks(1, 1, data).is_ok());
    EXPECT_FALSE(cache_->invalidate().is_ok());
    ASSERT_TRUE(cache_->flush().is_ok());
    ASSERT_TRUE(cache_->invalidate().is_ok());
    EXPECT_EQ(cache_->cached_blocks(), 0u);
}

TEST_F(BufferCacheTest, ReadAfterWriteSeesCachedData)
{
    auto data = blocks_of(1, 0x99);
    ASSERT_TRUE(cache_->write_blocks(2, 1, data).is_ok());
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(cache_->read_blocks(2, 1, back).is_ok());
    EXPECT_EQ(back, data);
}

// --- IoScheduler -------------------------------------------------------------

class IoSchedulerTest : public ::testing::Test {
  protected:
    IoSchedulerTest() : dev_(timed_device()), base_(sim_, dev_)
    {
        config_.per_request_cost = 100;
        sched_ = std::make_unique<IoScheduler>(sim_, base_, config_);
    }

    sim::Simulator sim_;
    storage::MemBlockDevice dev_;
    DeviceBlockIo base_;
    IoSchedulerConfig config_;
    std::unique_ptr<IoScheduler> sched_;
};

TEST_F(IoSchedulerTest, UnpluggedForwardsImmediately)
{
    auto data = blocks_of(1, 3);
    ASSERT_TRUE(sched_->write_blocks(0, 1, data).is_ok());
    EXPECT_EQ(dev_.bytes_written(), 1024u);
    EXPECT_EQ(sched_->dispatched(), 1u);
}

TEST_F(IoSchedulerTest, PluggedWritesMergeOnUnplug)
{
    sched_->plug();
    auto data = blocks_of(1, 4);
    for (std::uint64_t b = 0; b < 4; ++b)
        ASSERT_TRUE(sched_->write_blocks(b, 1, data).is_ok());
    EXPECT_EQ(dev_.bytes_written(), 0u);
    ASSERT_TRUE(sched_->unplug().is_ok());
    EXPECT_EQ(dev_.bytes_written(), 4 * 1024u);
    EXPECT_EQ(sched_->merges(), 3u);
    EXPECT_EQ(sched_->dispatched(), 1u); // one merged op
}

TEST_F(IoSchedulerTest, OutOfOrderWritesSortedAndMerged)
{
    sched_->plug();
    auto data = blocks_of(1, 5);
    for (std::uint64_t b : {3u, 1u, 0u, 2u})
        ASSERT_TRUE(sched_->write_blocks(b, 1, data).is_ok());
    ASSERT_TRUE(sched_->unplug().is_ok());
    // Elevator order: sorted into a single 4-block write.
    EXPECT_EQ(sched_->dispatched(), 1u);
    EXPECT_EQ(sched_->merges(), 3u);
}

TEST_F(IoSchedulerTest, ReadFlushesOverlappingPluggedWrites)
{
    sched_->plug();
    auto data = blocks_of(1, 6);
    ASSERT_TRUE(sched_->write_blocks(5, 1, data).is_ok());
    std::vector<std::byte> back(1024);
    ASSERT_TRUE(sched_->read_blocks(5, 1, back).is_ok());
    EXPECT_EQ(back, data); // read observed the plugged write
}

TEST_F(IoSchedulerTest, AutoDispatchAtThreshold)
{
    IoSchedulerConfig cfg = config_;
    cfg.max_plugged = 2;
    IoScheduler sched(sim_, base_, cfg);
    sched.plug();
    auto data = blocks_of(1, 7);
    ASSERT_TRUE(sched.write_blocks(0, 1, data).is_ok());
    ASSERT_TRUE(sched.write_blocks(10, 1, data).is_ok());
    // Threshold reached: dispatched without unplug.
    EXPECT_EQ(dev_.bytes_written(), 2 * 1024u);
}

// --- OsBlockStack --------------------------------------------------------------

TEST(OsBlockStack, DirectIoBypassesCache)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(timed_device());
    DeviceBlockIo base(sim, dev);
    OsStackConfig cfg;
    cfg.direct_io = true;
    OsBlockStack stack(sim, base, "t", cfg);
    EXPECT_EQ(stack.cache(), nullptr);
    auto data = blocks_of(1, 9);
    ASSERT_TRUE(stack.write_blocks(0, 1, data).is_ok());
    EXPECT_EQ(dev.bytes_written(), 1024u); // straight through
}

TEST(OsBlockStack, CachedStackAbsorbsRereads)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(timed_device());
    DeviceBlockIo base(sim, dev);
    OsStackConfig cfg;
    OsBlockStack stack(sim, base, "t", cfg);
    ASSERT_NE(stack.cache(), nullptr);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(stack.read_blocks(0, 1, buf).is_ok());
    ASSERT_TRUE(stack.read_blocks(0, 1, buf).is_ok());
    EXPECT_EQ(dev.bytes_read(), 1024u); // second read from cache
    EXPECT_EQ(stack.cache()->hits(), 1u);
}

TEST(OsBlockStack, RoundTripThroughAllLayers)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(timed_device());
    DeviceBlockIo base(sim, dev);
    OsBlockStack stack(sim, base, "t", OsStackConfig{});
    auto data = blocks_of(4, 0x5c);
    ASSERT_TRUE(stack.write_blocks(8, 4, data).is_ok());
    ASSERT_TRUE(stack.flush().is_ok());
    std::vector<std::byte> back(4 * 1024);
    ASSERT_TRUE(stack.read_blocks(8, 4, back).is_ok());
    EXPECT_EQ(back, data);
    EXPECT_GT(sim.now(), 0u); // costs were charged
}

} // namespace
} // namespace nesc::blk
