/**
 * @file
 * Cross-module randomized property tests:
 *  - multi-VF random traffic against a per-VF reference image
 *    (isolation + durability through the whole stack),
 *  - random lazy-allocation traffic exercising the fault path,
 *  - fragmented-file traffic exercising deep tree walks and the BTLB,
 *  - hypervisor-view consistency (VF writes land in the backing file).
 */
#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 96ULL << 20;
    config.host_memory_bytes = 96ULL << 20;
    return config;
}

/** Byte-image reference model of one virtual disk. */
class ReferenceDisk {
  public:
    explicit ReferenceDisk(std::uint64_t blocks) : image_(blocks * 1024) {}

    void
    write(std::uint64_t blockno, std::span<const std::byte> data)
    {
        std::copy(data.begin(), data.end(),
                  image_.begin() + static_cast<long>(blockno * 1024));
    }

    void
    check(std::uint64_t blockno, std::span<const std::byte> data) const
    {
        for (std::size_t i = 0; i < data.size(); ++i) {
            ASSERT_EQ(data[i], image_[blockno * 1024 + i])
                << "block " << blockno << " byte " << i;
        }
    }

  private:
    std::vector<std::byte> image_;
};

class StackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackProperty, MultiVfRandomTrafficMatchesReference)
{
    const std::uint64_t seed = GetParam();
    auto bed = std::move(virt::Testbed::create(small_config())).value();

    constexpr int kVms = 3;
    constexpr std::uint64_t kBlocks = 2048;
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    std::vector<ReferenceDisk> refs;
    for (int i = 0; i < kVms; ++i) {
        // Mix preallocated and lazy images so both translation paths
        // (mapped and fault-service) are exercised.
        auto vm = bed->create_nesc_guest(
            "/p" + std::to_string(i) + ".img", kBlocks, i % 2 == 0);
        ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
        vms.push_back(std::move(vm).value());
        refs.emplace_back(kBlocks);
    }

    util::Rng rng(seed);
    std::vector<std::byte> buf;
    for (int op = 0; op < 400; ++op) {
        const int vm = static_cast<int>(rng.next_below(kVms));
        const std::uint32_t count =
            static_cast<std::uint32_t>(1 + rng.next_below(8));
        const std::uint64_t blockno = rng.next_below(kBlocks - count);
        buf.resize(count * 1024);
        if (rng.next_bool(0.5)) {
            for (auto &b : buf)
                b = static_cast<std::byte>(rng.next());
            ASSERT_TRUE(vms[vm]
                            ->raw_disk()
                            .write_blocks(blockno, count, buf)
                            .is_ok())
                << "op " << op;
            refs[vm].write(blockno, buf);
        } else {
            ASSERT_TRUE(vms[vm]
                            ->raw_disk()
                            .read_blocks(blockno, count, buf)
                            .is_ok())
                << "op " << op;
            refs[vm].check(blockno, buf);
        }
    }

    // Final sweep: every VM's full image matches its reference.
    for (int vm = 0; vm < kVms; ++vm) {
        buf.resize(kBlocks * 1024);
        ASSERT_TRUE(vms[vm]
                        ->raw_disk()
                        .read_blocks(0, static_cast<std::uint32_t>(kBlocks),
                                     buf)
                        .is_ok());
        refs[vm].check(0, buf);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackProperty,
                         ::testing::Values(1, 2, 3, 42));

TEST(StackPropertyExtra, FragmentedImageDeepWalks)
{
    // Fragment the backing file into 2-block extents, disable the
    // BTLB-friendly case by using a small BTLB, and verify data
    // integrity through genuinely deep tree walks.
    virt::TestbedConfig config = small_config();
    config.controller.btlb_entries = 2;
    config.pf.tree.fanout = 4;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto &fs = bed->hv_fs();
    const std::uint64_t blocks = 1024;
    auto ino = std::move(fs.create("/frag.img", 0644)).value();
    auto decoy = std::move(fs.create("/decoy", 0644)).value();
    for (std::uint64_t vb = 0; vb < blocks; vb += 2) {
        ASSERT_TRUE(fs.allocate_range(ino, vb, 2).is_ok());
        ASSERT_TRUE(fs.allocate_range(decoy, vb, 2).is_ok());
    }
    auto vm =
        std::move(bed->create_nesc_guest("/frag.img", blocks)).value();

    util::Rng rng(9);
    ReferenceDisk ref(blocks);
    std::vector<std::byte> buf;
    for (int op = 0; op < 200; ++op) {
        const std::uint32_t count =
            static_cast<std::uint32_t>(1 + rng.next_below(4));
        const std::uint64_t blockno = rng.next_below(blocks - count);
        buf.resize(count * 1024);
        if (rng.next_bool(0.5)) {
            for (auto &b : buf)
                b = static_cast<std::byte>(rng.next());
            ASSERT_TRUE(
                vm->raw_disk().write_blocks(blockno, count, buf).is_ok());
            ref.write(blockno, buf);
        } else {
            ASSERT_TRUE(
                vm->raw_disk().read_blocks(blockno, count, buf).is_ok());
            ref.check(blockno, buf);
        }
    }
    // Walks actually happened (the tree is deep and the BTLB tiny).
    EXPECT_GT(bed->controller().counters().get("walk_node_reads"), 100u);
}

TEST(StackPropertyExtra, HypervisorSeesExactGuestBytes)
{
    // Every byte a guest writes must be readable — identical — from
    // the hypervisor's view of the backing file (modulo hv cache
    // coherence, handled by sync()). This is the paper's correctness
    // contract: the VF is just a window onto the file.
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm = std::move(bed->create_nesc_guest("/w.img", 1024, false))
                  .value();
    util::Rng rng(31);
    std::map<std::uint64_t, std::vector<std::byte>> written;
    std::vector<std::byte> buf(1024);
    for (int op = 0; op < 100; ++op) {
        const std::uint64_t blockno = rng.next_below(1024);
        for (auto &b : buf)
            b = static_cast<std::byte>(rng.next());
        ASSERT_TRUE(vm->raw_disk().write_blocks(blockno, 1, buf).is_ok());
        written[blockno] = buf;
    }
    ASSERT_TRUE(bed->hv_fs().sync().is_ok());
    auto ino = std::move(bed->hv_fs().resolve("/w.img")).value();
    for (const auto &[blockno, data] : written) {
        std::vector<std::byte> back(1024);
        auto got = bed->hv_fs().read(ino, blockno * 1024, back);
        ASSERT_TRUE(got.is_ok());
        ASSERT_EQ(*got, 1024u);
        ASSERT_EQ(back, data) << "block " << blockno;
    }
}

} // namespace
} // namespace nesc
