/**
 * @file
 * Adversarial-guest hardening tests: descriptor validation, ring
 * sanitization, PF-only register protection, per-VF DMA windows,
 * quarantine entry/release, and the deterministic misbehavior fuzzer
 * (a seeded HostileDriver hammering one VF while a well-behaved
 * neighbor keeps running with verified data integrity).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/host_ring.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "virt/hostile_driver.h"

namespace nesc::ctrl {
namespace {

/** Bare-metal harness: controller + BAR router over DRAM media. */
class AdvHarness {
  public:
    AdvHarness()
        : host_memory_(64 << 20), device_(device_config()), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_,
                      controller_config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    device_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 16 << 20;
        return cfg;
    }

    static ControllerConfig
    controller_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        return cfg;
    }

    pcie::FunctionId
    create_vf(const extent::ExtentList &extents, std::uint64_t size_blocks,
              pcie::FunctionId fn = 1)
    {
        auto image = extent::ExtentTreeImage::build(host_memory_, extents);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        pf_write(reg::kMgmtVfId, fn);
        pf_write(reg::kMgmtExtentRoot, trees_.back().root());
        pf_write(reg::kMgmtDeviceSize, size_blocks);
        mgmt(MgmtCommand::kCreateVf);
        return fn;
    }

    void
    pf_write(std::uint64_t offset, std::uint64_t value)
    {
        ASSERT_TRUE(controller_.mmio_write(0, offset, value, 8).is_ok());
    }

    void
    mgmt(MgmtCommand command)
    {
        ASSERT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtCommand,
                                    static_cast<std::uint64_t>(command), 8)
                        .is_ok());
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
    }

    /** PF grants @p fn DMA access to [base, base+size). */
    void
    add_window(pcie::FunctionId fn, pcie::HostAddr base,
               std::uint64_t size)
    {
        pf_write(reg::kMgmtVfId, fn);
        pf_write(reg::kDmaWindowBase, base);
        pf_write(reg::kDmaWindowSize, size);
        mgmt(MgmtCommand::kAddDmaWindow);
    }

    /** Windows covering @p fn's extent tree (latest created tree). */
    void
    window_tree(pcie::FunctionId fn, const extent::ExtentTreeImage &tree)
    {
        const auto [base, size] = tree.bounds();
        if (size != 0)
            add_window(fn, base, size);
    }

    void
    release_quarantine(pcie::FunctionId fn)
    {
        pf_write(reg::kMgmtVfId, fn);
        mgmt(MgmtCommand::kReleaseQuarantine);
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn,
                const drv::FunctionDriverConfig &config = {})
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn, config);
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

/**
 * Hand-rolled guest rings with raw record control: lets a test submit
 * byte-exact descriptors (including invalid ones no driver would
 * build) and inspect the raw completions.
 */
struct RawGuest {
    RawGuest(AdvHarness &h, pcie::FunctionId fn,
             std::uint32_t entries = 32)
        : h_(h), fn_(fn)
    {
        const auto cmd_fp =
            pcie::HostRing::footprint(entries, sizeof(CommandRecord));
        const auto comp_fp = pcie::HostRing::footprint(
            entries * 2, sizeof(CompletionRecord));
        cmd_base_ = *h.host_memory_.alloc(cmd_fp, 64);
        comp_base_ = *h.host_memory_.alloc(comp_fp, 64);
        buffer_ = *h.host_memory_.alloc(64 * 1024, 4096);
        EXPECT_TRUE(pcie::HostRing::create(h.host_memory_, cmd_base_,
                                           entries, sizeof(CommandRecord))
                        .is_ok());
        EXPECT_TRUE(pcie::HostRing::create(h.host_memory_, comp_base_,
                                           entries * 2,
                                           sizeof(CompletionRecord))
                        .is_ok());
        program_rings();
    }

    void
    program_rings()
    {
        EXPECT_TRUE(h_.controller_
                        .mmio_write(fn_, reg::kCmdRingBase, cmd_base_, 8)
                        .is_ok());
        EXPECT_TRUE(h_.controller_
                        .mmio_write(fn_, reg::kCompRingBase, comp_base_, 8)
                        .is_ok());
    }

    void
    push(const CommandRecord &rec)
    {
        auto ring = pcie::HostRing::attach(h_.host_memory_, cmd_base_);
        ASSERT_TRUE(ring.is_ok());
        std::vector<std::byte> buf(sizeof(rec));
        std::memcpy(buf.data(), &rec, sizeof(rec));
        ASSERT_TRUE(ring.value().push(buf).is_ok());
    }

    void
    doorbell()
    {
        EXPECT_TRUE(
            h_.controller_.mmio_write(fn_, reg::kDoorbell, 1, 8).is_ok());
    }

    std::vector<CompletionRecord>
    drain_completions()
    {
        std::vector<CompletionRecord> out;
        auto ring = pcie::HostRing::attach(h_.host_memory_, comp_base_);
        if (!ring.is_ok())
            return out;
        std::vector<std::byte> buf(sizeof(CompletionRecord));
        for (;;) {
            auto popped = ring.value().pop(buf);
            if (!popped.is_ok() || !popped.value())
                break;
            CompletionRecord rec;
            std::memcpy(&rec, buf.data(), sizeof(rec));
            out.push_back(rec);
        }
        return out;
    }

    AdvHarness &h_;
    pcie::FunctionId fn_;
    pcie::HostAddr cmd_base_ = pcie::kNullHostAddr;
    pcie::HostAddr comp_base_ = pcie::kNullHostAddr;
    pcie::HostAddr buffer_ = pcie::kNullHostAddr;
    std::uint64_t next_tag_ = 1;
};

CommandRecord
valid_write(RawGuest &g, std::uint64_t vlba = 0)
{
    CommandRecord rec{};
    rec.vlba = vlba;
    rec.nblocks = 1;
    rec.opcode = static_cast<std::uint8_t>(Opcode::kWrite);
    rec.host_buffer = g.buffer_;
    rec.tag = g.next_tag_++;
    return rec;
}

// --- Retryability contract (driver-facing API) ----------------------

TEST(CompletionStatusTest, RetryabilityCoversEveryEnumerator)
{
    // Exactly the transient classes are retryable; everything the
    // validator emits is a deterministic rejection and must not be.
    EXPECT_FALSE(completion_status_retryable(CompletionStatus::kOk));
    EXPECT_FALSE(
        completion_status_retryable(CompletionStatus::kOutOfRange));
    EXPECT_FALSE(
        completion_status_retryable(CompletionStatus::kWriteFailed));
    EXPECT_FALSE(
        completion_status_retryable(CompletionStatus::kInternalError));
    EXPECT_TRUE(
        completion_status_retryable(CompletionStatus::kReadMediaError));
    EXPECT_TRUE(
        completion_status_retryable(CompletionStatus::kWriteMediaError));
    EXPECT_TRUE(completion_status_retryable(CompletionStatus::kAborted));
    EXPECT_FALSE(
        completion_status_retryable(CompletionStatus::kMalformed));
    EXPECT_FALSE(
        completion_status_retryable(CompletionStatus::kDmaFault));
}

TEST(CompletionStatusTest, SyncHelpersFailFastOnOutOfRange)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    auto driver = h.make_driver(fn);
    std::vector<std::byte> buf(1024);
    // Beyond the virtual device: a deterministic rejection must come
    // back as OUT_OF_RANGE (not the retryable kUnavailable class).
    util::Status status = driver->read_sync(1000, 1, buf);
    EXPECT_EQ(status.code(), util::ErrorCode::kOutOfRange);
}

// --- Descriptor validation ------------------------------------------

TEST(DescriptorValidation, MalformedFieldsCompleteKMalformed)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);

    CommandRecord bomb = valid_write(g);
    bomb.nblocks = 0x40000000; // would expand to a billion block ops
    CommandRecord misaligned = valid_write(g);
    misaligned.host_buffer = g.buffer_ + 1;
    CommandRecord null_buf = valid_write(g);
    null_buf.host_buffer = pcie::kNullHostAddr;
    CommandRecord bad_op = valid_write(g);
    bad_op.opcode = 99;
    CommandRecord wrap = valid_write(g);
    wrap.vlba = ~std::uint64_t{0} - 2;
    wrap.nblocks = 8;

    g.push(bomb);
    g.push(misaligned);
    g.push(null_buf);
    g.push(bad_op);
    g.push(wrap);
    g.push(valid_write(g, 3)); // a good command rides along
    g.doorbell();
    h.sim_.run_until_idle();

    auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 6u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(comps[i].status,
                  static_cast<std::uint32_t>(CompletionStatus::kMalformed))
            << "descriptor " << i;
    EXPECT_EQ(comps[5].status,
              static_cast<std::uint32_t>(CompletionStatus::kOk));
    EXPECT_EQ(h.controller_.stats(fn).malformed, 5u);
    EXPECT_EQ(*h.controller_.mmio_read(fn, reg::kStatMalformed, 8), 5u);
    // Five faults < threshold (8): the function is NOT quarantined.
    EXPECT_FALSE(h.controller_.quarantined(fn));
}

TEST(DescriptorValidation, FullyOutOfRangeRejectedAtFetch)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    CommandRecord rec = valid_write(g, /*vlba=*/64); // first block OOR
    g.push(rec);
    g.doorbell();
    h.sim_.run_until_idle();
    auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kOutOfRange));
    // Out-of-range is driver error, not hostility: no quarantine fuel.
    EXPECT_EQ(h.controller_.stats(fn).malformed, 0u);
}

TEST(DescriptorValidation, MalformedStormQuarantines)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    const std::uint32_t threshold =
        h.controller_.config().quarantine_threshold;
    for (std::uint32_t i = 0; i < threshold; ++i) {
        CommandRecord rec = valid_write(g);
        rec.opcode = 200;
        g.push(rec);
    }
    g.doorbell();
    h.sim_.run_until_idle();

    EXPECT_TRUE(h.controller_.quarantined(fn));
    EXPECT_EQ(h.controller_.quarantine_cause(fn),
              QuarantineCause::kMalformedStorm);
    EXPECT_EQ(*h.controller_.mmio_read(fn, reg::kQuarantineStatus, 8), 1u);
    EXPECT_EQ(*h.controller_.mmio_read(fn, reg::kQuarantineCause, 8),
              static_cast<std::uint64_t>(QuarantineCause::kMalformedStorm));

    // Doorbells are dropped and counted while quarantined.
    const std::uint64_t before =
        h.controller_.stats(fn).doorbells_ignored;
    g.doorbell();
    h.sim_.run_until_idle();
    EXPECT_EQ(h.controller_.stats(fn).doorbells_ignored, before + 1);

    // The guest's own FnReset must NOT lift the quarantine.
    EXPECT_TRUE(
        h.controller_.mmio_write(fn, reg::kFnReset, 1, 8).is_ok());
    EXPECT_TRUE(h.controller_.quarantined(fn));

    // Only the PF release path does — and it leaves a reset, working fn.
    h.release_quarantine(fn);
    EXPECT_FALSE(h.controller_.quarantined(fn));
    EXPECT_EQ(h.controller_.quarantine_cause(fn), QuarantineCause::kNone);
    RawGuest g2(h, fn); // FLR detached the old rings; re-program
    g2.push(valid_write(g2, 5));
    g2.doorbell();
    h.sim_.run_until_idle();
    auto comps = g2.drain_completions();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kOk));
}

// --- Ring sanitization ----------------------------------------------

TEST(RingSanitization, SizeSurfacesCorruptCounters)
{
    pcie::HostMemory memory(1 << 20);
    const pcie::HostAddr base = *memory.alloc(
        pcie::HostRing::footprint(16, 32), 64);
    ASSERT_TRUE(pcie::HostRing::create(memory, base, 16, 32).is_ok());
    auto ring = pcie::HostRing::attach(memory, base);
    ASSERT_TRUE(ring.is_ok());

    // tail regressed below head: the wrapping used-count exceeds
    // capacity, which must surface as DATA_LOSS, not a ~2^32 size.
    auto header = *memory.read_pod<pcie::HostRing::Header>(base);
    header.head = 10;
    header.tail = 5;
    ASSERT_TRUE(memory.write_pod(base, header).is_ok());
    auto size = ring.value().size();
    ASSERT_FALSE(size.is_ok());
    EXPECT_EQ(size.status().code(), util::ErrorCode::kDataLoss);
    std::vector<std::byte> rec(32);
    EXPECT_FALSE(ring.value().pop(rec).is_ok());

    // Shape change after attach is equally rejected.
    header.head = 0;
    header.tail = 0;
    header.record_size = 64;
    ASSERT_TRUE(memory.write_pod(base, header).is_ok());
    EXPECT_FALSE(ring.value().load_header().is_ok());
}

TEST(RingSanitization, CounterTamperingDropsDoorbell)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);

    // Establish the attachment with one clean command.
    g.push(valid_write(g, 0));
    g.doorbell();
    h.sim_.run_until_idle();
    ASSERT_EQ(g.drain_completions().size(), 1u);

    // Rewind the device-owned consumer counter and queue a command the
    // device must now refuse to trust.
    auto header =
        *h.host_memory_.read_pod<pcie::HostRing::Header>(g.cmd_base_);
    header.head -= 1;
    header.tail += 1;
    ASSERT_TRUE(h.host_memory_.write_pod(g.cmd_base_, header).is_ok());
    const std::uint64_t commands_before = h.controller_.stats(fn).commands;
    g.doorbell();
    h.sim_.run_until_idle();
    EXPECT_EQ(h.controller_.stats(fn).commands, commands_before);
    EXPECT_GE(h.controller_.stats(fn).ring_corruptions, 1u);
    EXPECT_EQ(g.drain_completions().size(), 0u);
}

// --- PF-only register protection ------------------------------------

TEST(RegisterProtection, VfWritesToPfRegsRejectedAndCounted)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    const std::uint64_t pf_only[] = {
        reg::kExtentTreeRoot,    reg::kMgmtVfId,
        reg::kMgmtExtentRoot,    reg::kMgmtDeviceSize,
        reg::kMgmtQosWeight,     reg::kMgmtCommand,
        reg::kBtlbGeometry,      reg::kNodeCacheBytes,
        reg::kWalkCoalesce,      reg::kDmaWindowBase,
        reg::kDmaWindowSize,     reg::kQuarantineThreshold,
        reg::kQuarantineWindowNs,
    };
    std::uint64_t expected = 0;
    for (std::uint64_t offset : pf_only) {
        util::Status status =
            h.controller_.mmio_write(fn, offset, 0xdead, 8);
        EXPECT_FALSE(status.is_ok()) << "offset " << offset;
        EXPECT_EQ(status.code(), util::ErrorCode::kPermissionDenied)
            << "offset " << offset;
        ++expected;
        EXPECT_EQ(h.controller_.stats(fn).reg_violations, expected);
    }
    EXPECT_EQ(*h.controller_.mmio_read(fn, reg::kStatRegViolations, 8),
              expected);
    // Probing did not quarantine (counted, not storm fuel) and the
    // same registers accept PF writes.
    EXPECT_FALSE(h.controller_.quarantined(fn));
    EXPECT_TRUE(h.controller_
                    .mmio_write(0, reg::kDmaWindowBase, 0x1000, 8)
                    .is_ok());
    EXPECT_TRUE(h.controller_
                    .mmio_write(0, reg::kQuarantineThreshold, 16, 8)
                    .is_ok());
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kQuarantineThreshold, 8),
              16u);
}

// --- DMA windows ----------------------------------------------------

TEST(DmaWindows, OobBufferFaultsAndQuarantines)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);

    // Victim canary the hostile descriptor will aim at.
    const pcie::HostAddr canary = *h.host_memory_.alloc(4096, 64);
    std::vector<std::byte> pattern(4096, std::byte{0x5a});
    ASSERT_TRUE(h.host_memory_.write(canary, pattern).is_ok());

    // Confine the fn to its own rings/buffer plus its extent tree.
    h.window_tree(fn, h.trees_.back());
    h.add_window(fn, g.cmd_base_,
                 pcie::HostRing::footprint(32, sizeof(CommandRecord)));
    h.add_window(fn, g.comp_base_,
                 pcie::HostRing::footprint(64, sizeof(CompletionRecord)));
    h.add_window(fn, g.buffer_, 64 * 1024);

    // A confined guest doing honest I/O is unaffected.
    g.push(valid_write(g, 1));
    g.doorbell();
    h.sim_.run_until_idle();
    auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kOk));

    // A read (device write to host) aimed at the canary: refused with
    // kDmaFault, quarantined immediately, canary untouched.
    CommandRecord attack = valid_write(g, 2);
    attack.opcode = static_cast<std::uint8_t>(Opcode::kRead);
    attack.host_buffer = canary;
    g.push(attack);
    g.doorbell();
    h.sim_.run_until_idle();

    comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kDmaFault));
    EXPECT_TRUE(h.controller_.quarantined(fn));
    EXPECT_EQ(h.controller_.quarantine_cause(fn),
              QuarantineCause::kDmaViolation);
    EXPECT_GE(h.controller_.stats(fn).dma_violations, 1u);
    std::vector<std::byte> readback(4096);
    ASSERT_TRUE(h.host_memory_.read(canary, readback).is_ok());
    EXPECT_EQ(readback, pattern);
}

TEST(DmaWindows, RingOutsideWindowsQuarantines)
{
    AdvHarness h;
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    h.window_tree(fn, h.trees_.back());
    h.add_window(fn, g.cmd_base_,
                 pcie::HostRing::footprint(32, sizeof(CommandRecord)));
    h.add_window(fn, g.comp_base_,
                 pcie::HostRing::footprint(64, sizeof(CompletionRecord)));
    h.add_window(fn, g.buffer_, 64 * 1024);

    // Repoint the command ring at a well-formed ring OUTSIDE the
    // windows: the attach-time window check must quarantine.
    const pcie::HostAddr rogue = *h.host_memory_.alloc(
        pcie::HostRing::footprint(16, sizeof(CommandRecord)), 64);
    ASSERT_TRUE(pcie::HostRing::create(h.host_memory_, rogue, 16,
                                       sizeof(CommandRecord))
                    .is_ok());
    ASSERT_TRUE(
        h.controller_.mmio_write(fn, reg::kCmdRingBase, rogue, 8).is_ok());
    g.doorbell();
    h.sim_.run_until_idle();
    EXPECT_TRUE(h.controller_.quarantined(fn));
    EXPECT_EQ(h.controller_.quarantine_cause(fn),
              QuarantineCause::kDmaViolation);
    EXPECT_GE(h.controller_.dma().window_violations(), 1u);
}

TEST(DmaWindows, QuarantineAbortsInFlightAndSparesNeighbor)
{
    AdvHarness h;
    const auto victim = h.create_vf({{0, 64, 1000}}, 64, 1);
    const auto hostile = h.create_vf({{0, 64, 2000}}, 64, 2);
    auto victim_driver = h.make_driver(victim);
    RawGuest g(h, hostile);

    // Enough malformed records to trip the storm with one in-flight
    // valid command ahead of them: the valid one must abort.
    g.push(valid_write(g, 0));
    const std::uint32_t threshold =
        h.controller_.config().quarantine_threshold;
    for (std::uint32_t i = 0; i < threshold; ++i) {
        CommandRecord rec = valid_write(g);
        rec.nblocks = 0;
        g.push(rec);
    }
    g.doorbell();

    // Victim I/O proceeds through the shared pipeline meanwhile.
    std::vector<std::byte> data(4096, std::byte{0x11});
    ASSERT_TRUE(victim_driver->write_sync(8, 4, data).is_ok());
    std::vector<std::byte> back(4096);
    ASSERT_TRUE(victim_driver->read_sync(8, 4, back).is_ok());
    EXPECT_EQ(back, data);
    h.sim_.run_until_idle();

    EXPECT_TRUE(h.controller_.quarantined(hostile));
    EXPECT_FALSE(h.controller_.quarantined(victim));
    auto comps = g.drain_completions();
    // threshold malformed completions + 1 aborted in-flight command.
    ASSERT_EQ(comps.size(), threshold + 1u);
    std::size_t aborted = 0;
    for (const auto &rec : comps)
        if (rec.status ==
            static_cast<std::uint32_t>(CompletionStatus::kAborted))
            ++aborted;
    EXPECT_EQ(aborted, 1u);
    EXPECT_EQ(h.controller_.stats(victim).faults, 0u);
}

// --- Deterministic misbehavior fuzzer -------------------------------

/**
 * One fuzz campaign: a confined HostileDriver on fn 2 emits @p events
 * seeded misbehavior events while a well-behaved FunctionDriver on
 * fn 1 keeps doing verified I/O. Containment invariants (victim never
 * quarantined, canary byte-identical, victim data integrity) are
 * checked throughout; the PF releases + repairs the hostile fn
 * periodically so post-release behavior is exercised too.
 */
struct FuzzOutcome {
    std::uint64_t hostile_events = 0;
    std::uint64_t well_formed = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t releases = 0;
    std::uint64_t malformed = 0;
    std::uint64_t ring_corruptions = 0;
    std::uint64_t dma_violations = 0;
    std::uint64_t reg_violations = 0;
    std::uint64_t victim_completed = 0;
    std::uint64_t end_time = 0;

    std::string
    to_string() const
    {
        std::ostringstream os;
        os << hostile_events << ' ' << well_formed << ' ' << quarantines
           << ' ' << releases << ' ' << malformed << ' '
           << ring_corruptions << ' ' << dma_violations << ' '
           << reg_violations << ' ' << victim_completed << ' '
           << end_time;
        return os.str();
    }
};

FuzzOutcome
run_fuzz_campaign(std::uint64_t seed, std::uint64_t events)
{
    AdvHarness h;
    const auto victim = h.create_vf({{0, 128, 1000}}, 128, 1);
    const auto hostile = h.create_vf({{0, 128, 4000}}, 128, 2);
    auto driver = h.make_driver(victim);

    virt::HostileDriver hd(h.sim_, h.host_memory_, h.bar_, hostile, seed);
    EXPECT_TRUE(hd.init().is_ok());
    // Confine the hostile fn to its own sandbox plus its extent tree;
    // every DMA it coaxes out of the device beyond that quarantines it.
    h.add_window(hostile, hd.region_base(), hd.region_size());
    h.window_tree(hostile, h.trees_.back());

    // Canary page the hostile fn does not own: if any attack escapes
    // the windows, these bytes change.
    const pcie::HostAddr canary = *h.host_memory_.alloc(4096, 64);
    std::vector<std::byte> pattern(4096);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::byte>((seed * 131 + i) & 0xff);
    EXPECT_TRUE(h.host_memory_.write(canary, pattern).is_ok());

    // NESC_FUZZ_TRACE=1 prints campaign progress, for bisecting a
    // misbehaving seed/event offset during replay.
    const bool trace = std::getenv("NESC_FUZZ_TRACE") != nullptr;
    FuzzOutcome out;
    std::vector<std::byte> wr(2 * kDeviceBlockSize);
    std::vector<std::byte> rd(2 * kDeviceBlockSize);
    for (std::uint64_t i = 0; i < events; ++i) {
        if (trace && i % 64 == 0)
            std::fprintf(stderr, "fuzz seed %llu event %llu t=%llu\n",
                         static_cast<unsigned long long>(seed),
                         static_cast<unsigned long long>(i),
                         static_cast<unsigned long long>(h.sim_.now()));
        hd.step();
        if (i % 16 == 15) {
            // Victim does a verified write+read round mid-attack.
            const std::uint64_t vlba = (i / 16) % 126;
            std::fill(wr.begin(), wr.end(),
                      static_cast<std::byte>((seed + i) & 0xff));
            EXPECT_TRUE(driver->write_sync(vlba, 2, wr).is_ok())
                << "seed " << seed << " event " << i;
            EXPECT_TRUE(driver->read_sync(vlba, 2, rd).is_ok())
                << "seed " << seed << " event " << i;
            EXPECT_EQ(rd, wr) << "seed " << seed << " event " << i;
        }
        if (i % 64 == 63) {
            h.sim_.run_until_idle();
            EXPECT_FALSE(h.controller_.quarantined(victim))
                << "seed " << seed << " event " << i;
            std::vector<std::byte> readback(4096);
            EXPECT_TRUE(h.host_memory_.read(canary, readback).is_ok());
            EXPECT_EQ(readback, pattern)
                << "canary clobbered; seed " << seed << " event " << i;
        }
        if (i % 256 == 255 && h.controller_.quarantined(hostile)) {
            h.release_quarantine(hostile);
            hd.repair();
            ++out.releases;
        }
    }
    h.sim_.run_until_idle();

    EXPECT_FALSE(h.controller_.quarantined(victim));
    std::vector<std::byte> readback(4096);
    EXPECT_TRUE(h.host_memory_.read(canary, readback).is_ok());
    EXPECT_EQ(readback, pattern) << "canary clobbered; seed " << seed;
    // The campaign exercised both honest and hostile behavior.
    EXPECT_GT(hd.well_formed_submitted(), 0u) << "seed " << seed;

    const FunctionStats &hs = h.controller_.stats(hostile);
    out.hostile_events = hd.events();
    out.well_formed = hd.well_formed_submitted();
    out.quarantines = hs.quarantines;
    out.malformed = hs.malformed;
    out.ring_corruptions = hs.ring_corruptions;
    out.dma_violations = hs.dma_violations;
    out.reg_violations = hs.reg_violations;
    out.victim_completed = driver->completed();
    out.end_time = static_cast<std::uint64_t>(h.sim_.now());
    return out;
}

TEST(AdversarialFuzz, SeededHostileGuestIsContained)
{
    // NESC_FUZZ_EVENTS overrides the per-seed event count (the tier-2
    // sanitizer smoke run uses a smaller one to fit its time budget).
    std::uint64_t events = 10000;
    if (const char *env = std::getenv("NESC_FUZZ_EVENTS"))
        events = std::strtoull(env, nullptr, 10);

    std::uint64_t total_quarantines = 0;
    std::uint64_t total_violations = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const FuzzOutcome out = run_fuzz_campaign(seed, events);
        total_quarantines += out.quarantines;
        total_violations += out.malformed + out.ring_corruptions +
                            out.dma_violations + out.reg_violations;
    }
    // Across 10 seeds the hostile guest must actually have tripped the
    // containment machinery (otherwise the fuzzer is toothless).
    EXPECT_GT(total_quarantines, 0u);
    EXPECT_GT(total_violations, 0u);
}

TEST(AdversarialFuzz, SameSeedSameOutcome)
{
    // The stream is a pure function of the seed: a failing campaign
    // replays exactly, and different seeds explore different paths.
    const FuzzOutcome a = run_fuzz_campaign(42, 1024);
    const FuzzOutcome b = run_fuzz_campaign(42, 1024);
    EXPECT_EQ(a.to_string(), b.to_string());
    const FuzzOutcome c = run_fuzz_campaign(43, 1024);
    EXPECT_NE(a.to_string(), c.to_string());
}

} // namespace
} // namespace nesc::ctrl
