/**
 * @file
 * Tests for the replicated multi-backend storage subsystem (src/repl):
 * the dirty-extent log, the journaled per-replica blockstore, quorum
 * writes, read failover with organic crash detection, automatic
 * demotion, background resync, and the controller/PF-driver surface.
 */
#include <gtest/gtest.h>

#include <vector>

#include "nesc/controller.h"
#include "repl/blockstore.h"
#include "repl/dirty_log.h"
#include "repl/replica_set.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc::repl {
namespace {

// --- DirtyLog ------------------------------------------------------------

TEST(DirtyLog, AddMergesNeighbours)
{
    DirtyLog log;
    log.add(10, 5);
    log.add(20, 5);
    EXPECT_EQ(log.range_count(), 2u);
    EXPECT_EQ(log.total_blocks(), 10u);
    log.add(15, 5); // bridges the gap: one range [10, 25)
    EXPECT_EQ(log.range_count(), 1u);
    EXPECT_EQ(log.total_blocks(), 15u);
    log.add(12, 2); // fully contained: no change
    EXPECT_EQ(log.total_blocks(), 15u);
}

TEST(DirtyLog, RemoveSplitsRanges)
{
    DirtyLog log;
    log.add(0, 100);
    log.remove(40, 20);
    EXPECT_EQ(log.range_count(), 2u);
    EXPECT_EQ(log.total_blocks(), 80u);
    EXPECT_TRUE(log.covers(0, 40));
    EXPECT_TRUE(log.covers(60, 40));
    EXPECT_FALSE(log.covers(39, 2));
    log.remove(0, 100);
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.total_blocks(), 0u);
}

TEST(DirtyLog, CoversAndIntersects)
{
    DirtyLog log;
    log.add(50, 10);
    EXPECT_TRUE(log.covers(50, 10));
    EXPECT_TRUE(log.covers(55, 5));
    EXPECT_FALSE(log.covers(45, 10));
    EXPECT_TRUE(log.intersects(45, 10));
    EXPECT_TRUE(log.intersects(59, 10));
    EXPECT_FALSE(log.intersects(60, 10));
    EXPECT_FALSE(log.intersects(0, 50));
}

TEST(DirtyLog, FirstClipsToBatch)
{
    DirtyLog log;
    log.add(30, 100);
    auto range = log.first(16);
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(range->first, 30u);
    EXPECT_EQ(range->count, 16u);
    log.clear();
    EXPECT_FALSE(log.first(16).has_value());
}

// --- JournaledBlockstore -------------------------------------------------

storage::MemBlockDeviceConfig
fast_media(std::uint64_t capacity = 1 << 20)
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    return cfg;
}

TEST(JournaledBlockstore, RoundTripAndStateCounters)
{
    storage::MemBlockDevice dev(fast_media());
    JournaledBlockstore store(dev, 16);
    EXPECT_EQ(store.data_blocks(), (1u << 20) / 1024 - 16);

    std::vector<std::byte> out(3 * 1024), in(3 * 1024);
    wl::fill_pattern(7, 0, out);
    ASSERT_TRUE(store.write_blocks(5, out).is_ok());
    ASSERT_TRUE(store.read_blocks(5, in).is_ok());
    EXPECT_EQ(out, in);
    // One write walked the full state machine.
    EXPECT_EQ(store.writes_started(), 1u);
    EXPECT_EQ(store.writes_submitted(), 1u);
    EXPECT_EQ(store.writes_synced(), 1u);
    EXPECT_EQ(store.writes_stable(), 1u);
}

TEST(JournaledBlockstore, RejectsPartialBlocksAndOutOfRange)
{
    storage::MemBlockDevice dev(fast_media());
    JournaledBlockstore store(dev, 16);
    std::vector<std::byte> buf(100); // not a block multiple
    EXPECT_FALSE(store.write_blocks(0, buf).is_ok());
    buf.assign(1024, std::byte{0});
    EXPECT_FALSE(store.write_blocks(store.data_blocks(), buf).is_ok());
}

TEST(JournaledBlockstore, TimingChargesJournalAmplification)
{
    storage::MemBlockDeviceConfig cfg = fast_media();
    cfg.access_latency = 1000; // visible per-media-op cost
    storage::MemBlockDevice dev(cfg);
    JournaledBlockstore store(dev, 16);
    // Reads pass straight through (checked first: the media port is a
    // single busy horizon, so later ops queue behind the journal).
    EXPECT_EQ(store.service_read(0, 0, 1024), 1000u);
    // desc + payload + commit + checkpoint = 4 sequential media writes.
    const sim::Time start = 1000;
    EXPECT_EQ(store.service_write(start, 0, 1024), start + 4u * 1000u);
}

TEST(JournaledBlockstore, RecoverIsIdempotentOnCleanStore)
{
    storage::MemBlockDevice dev(fast_media());
    JournaledBlockstore store(dev, 16);
    std::vector<std::byte> buf(1024);
    wl::fill_pattern(3, 0, buf);
    ASSERT_TRUE(store.write_blocks(0, buf).is_ok());

    JournaledBlockstore again(dev, 16);
    auto replayed = again.recover();
    ASSERT_TRUE(replayed.is_ok());
    // The checkpoint already landed; replay redoes it harmlessly.
    std::vector<std::byte> in(1024);
    ASSERT_TRUE(again.read_blocks(0, in).is_ok());
    EXPECT_EQ(buf, in);
    auto twice = again.recover();
    ASSERT_TRUE(twice.is_ok());
    EXPECT_EQ(*twice, *replayed);
}

// --- ReplicaSet ----------------------------------------------------------

/** Three fast backends over zero-latency links, quorum 2. */
class ReplicaSetTest : public ::testing::Test {
  protected:
    ReplicaSetTest()
    {
        config_.quorum = 2;
        config_.read_timeout = 100'000;
        config_.write_timeout = 100'000;
        config_.demote_threshold = 3;
        set_ = std::make_unique<ReplicaSet>(sim_, config_);
        BackendConfig backend;
        backend.link_bytes_per_sec = 0;
        backend.link_latency = 1'000;
        backend.journal_blocks = 16;
        for (int i = 0; i < 3; ++i) {
            media_.push_back(std::make_unique<storage::MemBlockDevice>(
                fast_media()));
            set_->add_backend(*media_.back(), backend);
        }
    }

    /** Blocking write helper: drives the sim until done fires. */
    util::Status
    write_sync(std::uint64_t first_block, std::span<const std::byte> data)
    {
        util::Status result = util::internal_error("done never fired");
        bool fired = false;
        set_->write(first_block, data, [&](util::Status s) {
            result = s;
            fired = true;
        });
        sim_.run_until_idle();
        EXPECT_TRUE(fired);
        return result;
    }

    util::Status
    read_sync(std::uint64_t first_block, std::span<std::byte> out)
    {
        util::Status result = util::internal_error("done never fired");
        bool fired = false;
        set_->read(first_block, out, [&](util::Status s) {
            result = s;
            fired = true;
        });
        sim_.run_until_idle();
        EXPECT_TRUE(fired);
        return result;
    }

    sim::Simulator sim_;
    ReplicaSetConfig config_;
    std::vector<std::unique_ptr<storage::MemBlockDevice>> media_;
    std::unique_ptr<ReplicaSet> set_;
};

TEST_F(ReplicaSetTest, QuorumWriteMirrorsToAllBackends)
{
    std::vector<std::byte> data(2048);
    wl::fill_pattern(11, 0, data);
    ASSERT_TRUE(write_sync(10, data).is_ok());
    EXPECT_EQ(set_->writes_acked(), 1u);
    EXPECT_EQ(set_->writes_failed(), 0u);
    // With everything healthy, all three backends converge (and their
    // dirty logs drain back to empty).
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(set_->dirty_blocks(i), 0u) << "backend " << i;
    EXPECT_TRUE(*set_->verify_equal(0, 1));
    EXPECT_TRUE(*set_->verify_equal(0, 2));
}

TEST_F(ReplicaSetTest, ReadServesWrittenData)
{
    std::vector<std::byte> data(1024), in(1024);
    wl::fill_pattern(13, 0, data);
    ASSERT_TRUE(write_sync(42, data).is_ok());
    ASSERT_TRUE(read_sync(42, in).is_ok());
    EXPECT_EQ(data, in);
    EXPECT_EQ(set_->reads_served(), 1u);
    EXPECT_EQ(set_->failovers(), 0u);
}

TEST_F(ReplicaSetTest, WriteFailsWhenQuorumUnreachable)
{
    set_->crash_backend(0);
    set_->crash_backend(1);
    std::vector<std::byte> data(1024, std::byte{0x5a});
    const util::Status status = write_sync(0, data);
    EXPECT_FALSE(status.is_ok());
    EXPECT_EQ(set_->writes_failed(), 1u);
    // The crashed backends owe the write; the survivor does not.
    EXPECT_EQ(set_->dirty_blocks(0), 1u);
    EXPECT_EQ(set_->dirty_blocks(1), 1u);
    EXPECT_EQ(set_->dirty_blocks(2), 0u);
}

TEST_F(ReplicaSetTest, ReadFailsOverFromCrashedBackend)
{
    std::vector<std::byte> data(1024), in(1024);
    wl::fill_pattern(17, 0, data);
    ASSERT_TRUE(write_sync(7, data).is_ok());

    // Backend 0 is the default read target (lowest index, no health
    // events). Crash it: the read must time out and fail over.
    set_->crash_backend(0);
    ASSERT_TRUE(read_sync(7, in).is_ok());
    EXPECT_EQ(data, in);
    EXPECT_GE(set_->failovers(), 1u);
    EXPECT_GE(set_->backend_timeouts(0), 1u);
}

TEST_F(ReplicaSetTest, RepeatedTimeoutsDemoteTheBackend)
{
    std::vector<std::byte> data(1024), in(1024);
    wl::fill_pattern(19, 0, data);
    ASSERT_TRUE(write_sync(0, data).is_ok());

    set_->crash_backend(0);
    // demote_threshold = 3: writes fan out to every backend, so three
    // timed-out write acks push backend 0 out (reads alone would not —
    // the router steers them away from the suspect backend).
    for (std::uint64_t blk = 0; blk < 3; ++blk)
        ASSERT_TRUE(write_sync(blk, data).is_ok());
    EXPECT_EQ(set_->backend_state(0), BackendState::kDown);
    EXPECT_GE(set_->demotions(), 1u);

    // Once down it is no longer tried: reads neither touch it nor
    // fail over.
    const std::uint64_t timeouts = set_->backend_timeouts(0);
    const std::uint64_t failovers = set_->failovers();
    ASSERT_TRUE(read_sync(0, in).is_ok());
    EXPECT_EQ(set_->backend_timeouts(0), timeouts);
    EXPECT_EQ(set_->failovers(), failovers);
}

TEST_F(ReplicaSetTest, ResyncConvergesBitIdentical)
{
    std::vector<std::byte> data(1024);
    // Demote backend 2, then write fresh data it will miss.
    set_->crash_backend(2);
    set_->demote_backend(2);
    for (std::uint64_t blk = 0; blk < 20; ++blk) {
        wl::fill_pattern(100 + blk, 0, data);
        ASSERT_TRUE(write_sync(blk, data).is_ok());
    }
    EXPECT_EQ(set_->dirty_blocks(2), 20u);
    EXPECT_FALSE(*set_->verify_equal(0, 2));

    // Revival recovers the journal and drains the dirty log in the
    // background while the set keeps serving.
    set_->revive_backend(2);
    sim_.run_until_idle();
    EXPECT_EQ(set_->backend_state(2), BackendState::kHealthy);
    EXPECT_EQ(set_->dirty_blocks(2), 0u);
    EXPECT_GE(set_->resync_copied(2), 20u);
    EXPECT_GE(set_->resyncs_completed(), 1u);
    EXPECT_TRUE(*set_->verify_equal(0, 2));
    EXPECT_TRUE(*set_->verify_equal(0, 1));
}

TEST_F(ReplicaSetTest, ForegroundWritesDuringResyncStayCoherent)
{
    std::vector<std::byte> data(1024);
    set_->crash_backend(1);
    set_->demote_backend(1);
    for (std::uint64_t blk = 0; blk < 64; ++blk) {
        wl::fill_pattern(blk, 0, data);
        ASSERT_TRUE(write_sync(blk, data).is_ok());
    }
    set_->revive_backend(1);
    // Overwrite part of the dirty region while resync is running; the
    // recovering backend mirrors these writes directly.
    for (std::uint64_t blk = 0; blk < 8; ++blk) {
        wl::fill_pattern(999 + blk, 0, data);
        ASSERT_TRUE(write_sync(blk, data).is_ok());
    }
    sim_.run_until_idle();
    EXPECT_EQ(set_->backend_state(1), BackendState::kHealthy);
    EXPECT_TRUE(*set_->verify_equal(0, 1));
}

TEST_F(ReplicaSetTest, SetQuorumClampsToBackendCount)
{
    // Reachable from the PF kReplQuorum register: an operator typo
    // above the backend count must not brick the write path.
    set_->set_quorum(64);
    EXPECT_EQ(set_->config().quorum, 3u);
    set_->set_quorum(0);
    EXPECT_EQ(set_->config().quorum, 1u);
    set_->set_quorum(64);
    std::vector<std::byte> data(1024, std::byte{0x7e});
    EXPECT_TRUE(write_sync(0, data).is_ok());
    EXPECT_EQ(set_->writes_failed(), 0u);
}

TEST(ReplicaSetEdge, ReadExhaustionSettlesExactlyOnce)
{
    sim::Simulator sim;
    ReplicaSetConfig cfg;
    cfg.quorum = 1;
    cfg.read_timeout = 100'000; // 100 us, far below the media read
    ReplicaSet set(sim, cfg);
    storage::MemBlockDeviceConfig slow = fast_media();
    slow.read_bytes_per_sec = 1'000'000; // a 1 KiB read takes ~1 ms
    storage::MemBlockDevice dev(slow);
    set.add_backend(dev);

    std::vector<std::byte> data(1024, std::byte{0x42}), in(1024);
    bool wrote = false;
    set.write(0, data, [&](util::Status s) { wrote = s.is_ok(); });
    sim.run_until_idle();
    ASSERT_TRUE(wrote);

    // The only attempt times out, no candidate is left, and the read
    // fails. The media completion for that attempt is still pending;
    // it must not fire done() a second time (with a late success, no
    // less) once the read has settled on the error.
    int fires = 0;
    util::Status last = util::Status::ok();
    set.read(0, in, [&](util::Status s) {
        ++fires;
        last = s;
    });
    sim.run_until_idle();
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(last.is_ok());
    EXPECT_EQ(set.reads_failed(), 1u);
    EXPECT_EQ(set.reads_served(), 0u);
}

TEST(ReplicaSetEdge, ReadAfterQuorumAckAvoidsLaggingBackend)
{
    sim::Simulator sim;
    ReplicaSetConfig cfg;
    cfg.quorum = 2;
    cfg.read_timeout = 50'000'000;
    cfg.write_timeout = 50'000'000; // no timeout settles the laggard
    ReplicaSet set(sim, cfg);
    std::vector<std::unique_ptr<storage::MemBlockDevice>> media;
    for (int i = 0; i < 3; ++i) {
        media.push_back(
            std::make_unique<storage::MemBlockDevice>(fast_media()));
        BackendConfig backend;
        backend.link_latency = 1'000;
        // Backend 0's link drips: its write ack lands ~1 ms after the
        // fast peers reach quorum.
        backend.link_bytes_per_sec = i == 0 ? 1'000'000 : 0;
        set.add_backend(*media.back(), backend);
    }

    std::vector<std::byte> data(1024), in(1024);
    wl::fill_pattern(31, 0, data);
    bool write_done = false;
    set.write(5, data, [&](util::Status s) {
        ASSERT_TRUE(s.is_ok());
        write_done = true;
    });
    sim.run_until(200'000); // past quorum, before backend 0's ack
    ASSERT_TRUE(write_done);
    ASSERT_GT(set.dirty_blocks(0), 0u); // its ack is still in flight

    // The acked write must be visible: the router has to steer the
    // read away from the backend whose copy is still dirty, even
    // though that backend is kHealthy (and, health-wise, the most
    // attractive candidate by index tie-break).
    util::Status status = util::internal_error("done never fired");
    sim::Time done_at = 0;
    set.read(5, in, [&](util::Status s) {
        status = s;
        done_at = sim.now();
    });
    sim.run_until_idle();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
    EXPECT_EQ(data, in);
    // A fast peer served it; the read neither queued behind the
    // laggard's saturated link (~2 ms) nor raced its pending ack.
    EXPECT_LT(done_at, 1'000'000u);
    // ...and the laggard's late ack still converged it afterwards.
    EXPECT_EQ(set.dirty_blocks(0), 0u);
    EXPECT_TRUE(*set.verify_equal(0, 1));
}

TEST(ReplicaSetEdge, LateWriteAckConvergesSlowHealthyBackend)
{
    sim::Simulator sim;
    ReplicaSetConfig cfg;
    cfg.quorum = 2;
    cfg.write_timeout = 100'000;  // 100 us: the slow backend misses it
    cfg.demote_threshold = 1000;  // stays kHealthy despite the timeout
    ReplicaSet set(sim, cfg);
    std::vector<std::unique_ptr<storage::MemBlockDevice>> media;
    for (int i = 0; i < 3; ++i) {
        media.push_back(
            std::make_unique<storage::MemBlockDevice>(fast_media()));
        BackendConfig backend;
        backend.link_bytes_per_sec = i == 0 ? 1'000'000 : 0; // ack ~1 ms
        set.add_backend(*media.back(), backend);
    }

    std::vector<std::byte> data(1024);
    wl::fill_pattern(37, 0, data);
    bool done = false;
    set.write(9, data, [&](util::Status s) { done = s.is_ok(); });
    sim.run_until_idle();
    ASSERT_TRUE(done);
    EXPECT_GE(set.backend_timeouts(0), 1u); // the deadline fired first
    // The genuine ack arrived after the timeout settled the target.
    // It must still be applied (and the dirty marker cleared): the
    // backend never leaves kHealthy, so nothing would ever resync it,
    // and one slow write would leave it silently divergent forever.
    EXPECT_EQ(set.backend_state(0), BackendState::kHealthy);
    EXPECT_EQ(set.dirty_blocks(0), 0u);
    EXPECT_TRUE(*set.verify_equal(0, 1));
}

TEST(ReplicaSetDeterminism, IdenticalRunsProduceIdenticalTimelines)
{
    auto run = [](std::uint64_t &now, std::uint64_t &failovers,
                  std::uint64_t &acked) {
        sim::Simulator sim;
        ReplicaSetConfig cfg;
        cfg.quorum = 2;
        cfg.read_timeout = 50'000;
        cfg.write_timeout = 50'000;
        ReplicaSet set(sim, cfg);
        std::vector<std::unique_ptr<storage::MemBlockDevice>> media;
        for (int i = 0; i < 3; ++i) {
            media.push_back(std::make_unique<storage::MemBlockDevice>(
                fast_media()));
            set.add_backend(*media.back());
        }
        std::vector<std::byte> buf(1024);
        for (std::uint64_t blk = 0; blk < 16; ++blk) {
            wl::fill_pattern(blk, 0, buf);
            set.write(blk, buf, [](util::Status) {});
        }
        sim.run_until_idle();
        set.crash_backend(0);
        for (int i = 0; i < 6; ++i) {
            set.read(static_cast<std::uint64_t>(i), buf,
                     [](util::Status) {});
            sim.run_until_idle();
        }
        set.revive_backend(0);
        sim.run_until_idle();
        now = sim.now();
        failovers = set.failovers();
        acked = set.writes_acked();
    };
    std::uint64_t now_a = 0, failovers_a = 0, acked_a = 0;
    std::uint64_t now_b = 0, failovers_b = 0, acked_b = 0;
    run(now_a, failovers_a, acked_a);
    run(now_b, failovers_b, acked_b);
    EXPECT_EQ(now_a, now_b);
    EXPECT_EQ(failovers_a, failovers_b);
    EXPECT_EQ(acked_a, acked_b);
}

} // namespace
} // namespace nesc::repl

// --- Controller + PF driver surface --------------------------------------

namespace nesc::virt {
namespace {

TestbedConfig
replicated_config(std::uint32_t backends = 3)
{
    TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    TestbedReplicationConfig repl;
    repl.backends = backends;
    repl.media = storage::MemBlockDeviceConfig::ramdisk(
        0, 64ULL << 20); // rate 0 = fast; capacity auto-resized anyway
    config.replication = repl;
    return config;
}

TEST(ReplicatedTestbed, GuestIoFlowsThroughReplicaSet)
{
    auto bed = Testbed::create(replicated_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    ASSERT_NE((*bed)->replicas(), nullptr);

    auto vm = (*bed)->create_nesc_guest("/repl.img", 1024);
    ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
    std::vector<std::byte> out(8 * 1024), in(8 * 1024);
    wl::fill_pattern(23, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 8, out).is_ok());
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(0, 8, in).is_ok());
    EXPECT_EQ(out, in);

    repl::ReplicaSet *set = (*bed)->replicas();
    EXPECT_GT(set->writes_acked(), 0u);
    EXPECT_GT(set->reads_served(), 0u);
    EXPECT_EQ(set->writes_failed(), 0u);
    // All backends converged once the traffic drained.
    (*bed)->sim().run_until_idle();
    EXPECT_TRUE(*set->verify_equal(0, 1));
    EXPECT_TRUE(*set->verify_equal(0, 2));
}

TEST(ReplicatedTestbed, PfDriverManagesReplication)
{
    auto bed = Testbed::create(replicated_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    drv::PfDriver &pf = (*bed)->pf();

    EXPECT_TRUE(pf.repl_attached());
    ASSERT_TRUE(pf.set_repl_quorum(1).is_ok());
    EXPECT_EQ((*bed)->replicas()->config().quorum, 1u);
    ASSERT_TRUE(pf.set_repl_read_timeout(500'000).is_ok());
    EXPECT_EQ((*bed)->replicas()->config().read_timeout, 500'000);

    auto status = pf.repl_backend_status(0);
    ASSERT_TRUE(status.is_ok()) << status.status().to_string();
    EXPECT_EQ(status->state,
              static_cast<std::uint64_t>(repl::BackendState::kHealthy));
    // Out-of-range backend: the device master-aborts the selection.
    EXPECT_EQ(pf.repl_backend_status(99).status().code(),
              util::ErrorCode::kNotFound);
    ASSERT_TRUE(pf.repl_failovers().is_ok());

    // Forced demotion + resync through the management command path.
    ASSERT_TRUE(pf.repl_demote(2).is_ok());
    auto down = pf.repl_backend_status(2);
    ASSERT_TRUE(down.is_ok());
    EXPECT_EQ(down->state,
              static_cast<std::uint64_t>(repl::BackendState::kDown));
    ASSERT_TRUE(pf.repl_resync(2).is_ok());
    auto polls = pf.repl_wait_resync(2);
    ASSERT_TRUE(polls.is_ok()) << polls.status().to_string();
    EXPECT_TRUE(*(*bed)->replicas()->verify_equal(0, 2));
}

TEST(ReplicatedTestbed, ReplRegistersArePfOnly)
{
    auto bed = Testbed::create(replicated_config());
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    auto vm = (*bed)->create_nesc_guest("/vfpriv.img", 256);
    ASSERT_TRUE(vm.is_ok());
    auto fn = (*bed)->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    ctrl::Controller &ctrl = (*bed)->controller();
    EXPECT_FALSE(ctrl.mmio_read(*fn, ctrl::reg::kReplQuorum, 8).is_ok());
    EXPECT_FALSE(
        ctrl.mmio_write(*fn, ctrl::reg::kReplQuorum, 1, 8).is_ok());
}

TEST(ReplicatedTestbed, UnreplicatedTestbedExposesNothing)
{
    TestbedConfig config;
    config.device.capacity_bytes = 32ULL << 20;
    auto bed = Testbed::create(config);
    ASSERT_TRUE(bed.is_ok());
    EXPECT_EQ((*bed)->replicas(), nullptr);
    EXPECT_FALSE((*bed)->pf().repl_attached());
    EXPECT_EQ((*bed)->pf().repl_backend_status(0).status().code(),
              util::ErrorCode::kNotFound);
    EXPECT_FALSE((*bed)->pf().repl_demote(0).is_ok());
}

TEST(ReplicatedTestbed, TinyJournalConfigStillCoversPrimaryDevice)
{
    TestbedConfig config = replicated_config();
    config.replication->backend.journal_blocks = 1; // below the clamp
    auto bed = Testbed::create(config);
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();

    // JournaledBlockstore clamps its ring to >= 3 blocks. The testbed
    // must size each backend for the clamped ring, or the data region
    // falls short of the primary's pLBA space and high-pLBA transfers
    // fail out-of-range.
    const auto geometry = (*bed)->device().geometry();
    const std::uint64_t primary_blocks =
        geometry.capacity_bytes / geometry.logical_block_size;
    EXPECT_GE((*bed)->replicas()->data_blocks(), primary_blocks);

    auto vm = (*bed)->create_nesc_guest("/tiny.img", 512);
    ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
    std::vector<std::byte> out(4 * 1024), in(4 * 1024);
    wl::fill_pattern(41, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(508, 4, out).is_ok());
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(508, 4, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_EQ((*bed)->replicas()->writes_failed(), 0u);
}

TEST(ReplicatedTestbed, OrganicCrashDetectionDemotesAndRecovers)
{
    TestbedConfig config = replicated_config();
    TestbedReplicationConfig &repl = *config.replication;
    repl.set.read_timeout = 200'000;
    repl.set.write_timeout = 200'000;
    repl.set.demote_threshold = 3;
    auto bed = Testbed::create(config);
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    auto vm = (*bed)->create_nesc_guest("/crash.img", 512);
    ASSERT_TRUE(vm.is_ok());

    std::vector<std::byte> buf(4 * 1024);
    wl::fill_pattern(29, 0, buf);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 4, buf).is_ok());

    repl::ReplicaSet *set = (*bed)->replicas();
    set->crash_backend(1);
    // Keep writing: backend 1 stops acking, health events accumulate,
    // and the set demotes it without any explicit notification.
    for (int i = 0; i < 8; ++i) {
        wl::fill_pattern(30 + i, 0, buf);
        ASSERT_TRUE(
            (*vm)->raw_disk().write_blocks(4 * (i + 1), 4, buf).is_ok());
    }
    (*bed)->sim().run_until_idle();
    EXPECT_EQ(set->backend_state(1), repl::BackendState::kDown);

    // Revive: journal recovery + background resync converge it back.
    set->revive_backend(1);
    (*bed)->sim().run_until_idle();
    EXPECT_EQ(set->backend_state(1), repl::BackendState::kHealthy);
    EXPECT_TRUE(*set->verify_equal(0, 1));
}

} // namespace
} // namespace nesc::virt
