/**
 * @file
 * Unit tests for the host-side drivers: FunctionDriver (rings, async
 * submissions, sync wrappers, BlockIo adapter) and PfDriver (VF
 * lifecycle, tree construction from FIEMAP, fault service, pruning,
 * allocation denial).
 */
#include <gtest/gtest.h>

#include "extent/walker.h"
#include "fs/extent_map.h"
#include "storage/faulty_block_device.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc::drv {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class DriversTest : public ::testing::Test {
  protected:
    DriversTest()
    {
        auto bed = virt::Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
    }

    std::unique_ptr<virt::Testbed> bed_;
};

// --- FunctionDriver -----------------------------------------------------

TEST_F(DriversTest, PfSyncRoundTrip)
{
    auto &pf = bed_->pf().pf_data();
    const std::uint64_t base =
        bed_->device().geometry().num_blocks() - 128;
    std::vector<std::byte> out(8 * 1024), in(8 * 1024);
    wl::fill_pattern(21, 0, out);
    ASSERT_TRUE(pf.write_sync(base, 8, out).is_ok());
    ASSERT_TRUE(pf.read_sync(base, 8, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_GE(pf.submitted(), 4u); // split into 4 KiB commands
    EXPECT_EQ(pf.completed(), pf.submitted() - 2); // 2 requests, many chunks
}

TEST_F(DriversTest, AsyncSubmissionsCompleteIndependently)
{
    auto &pf = bed_->pf().pf_data();
    const std::uint64_t base =
        bed_->device().geometry().num_blocks() - 64;
    auto buffer = bed_->host_memory().alloc(16 * 1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    int completions = 0;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(pf.submit(ctrl::Opcode::kRead, base + i * 4, 4,
                              *buffer + i * 4096,
                              [&](ctrl::CompletionStatus s) {
                                  EXPECT_EQ(s,
                                            ctrl::CompletionStatus::kOk);
                                  ++completions;
                              })
                        .is_ok());
    }
    bed_->sim().run_until_idle();
    EXPECT_EQ(completions, 4);
}

TEST_F(DriversTest, SubmitValidatesArguments)
{
    auto &pf = bed_->pf().pf_data();
    EXPECT_FALSE(
        pf.submit(ctrl::Opcode::kRead, 0, 0, 4096, nullptr).is_ok());
}

TEST_F(DriversTest, SyncBufferSizeMismatchRejected)
{
    auto &pf = bed_->pf().pf_data();
    std::vector<std::byte> wrong(100);
    EXPECT_FALSE(pf.read_sync(0, 1, wrong).is_ok());
    EXPECT_FALSE(pf.write_sync(0, 1, wrong).is_ok());
}

TEST_F(DriversTest, RegisterAccessHelpers)
{
    auto &pf = bed_->pf().pf_data();
    auto size = pf.device_size_blocks();
    ASSERT_TRUE(size.is_ok());
    EXPECT_EQ(*size, bed_->device().geometry().num_blocks());
}

// --- PfDriver: VF management ----------------------------------------------

TEST_F(DriversTest, CreateVfBuildsTreeMatchingFiemap)
{
    auto ino = bed_->create_backing_file("/tree.img", 2048, true);
    ASSERT_TRUE(ino.is_ok());
    auto fn = bed_->pf().create_vf(*ino, 2048);
    ASSERT_TRUE(fn.is_ok());

    // The serialized tree must enumerate to exactly the FIEMAP.
    auto root =
        bed_->controller().mmio_read(*fn, ctrl::reg::kExtentTreeRoot, 8);
    ASSERT_TRUE(root.is_ok());
    auto from_tree = extent::enumerate(bed_->host_memory(), *root);
    ASSERT_TRUE(from_tree.is_ok());
    auto from_fs = bed_->hv_fs().fiemap(*ino);
    ASSERT_TRUE(from_fs.is_ok());
    EXPECT_EQ(*from_tree, *from_fs);
}

TEST_F(DriversTest, DeleteVfReleasesTreeMemory)
{
    auto ino = bed_->create_backing_file("/del.img", 1024, true);
    ASSERT_TRUE(ino.is_ok());
    const std::uint64_t before = bed_->host_memory().allocated_bytes();
    auto fn = bed_->pf().create_vf(*ino, 1024);
    ASSERT_TRUE(fn.is_ok());
    EXPECT_GT(bed_->host_memory().allocated_bytes(), before);
    ASSERT_TRUE(bed_->pf().delete_vf(*fn).is_ok());
    EXPECT_EQ(bed_->host_memory().allocated_bytes(), before);
    EXPECT_FALSE(bed_->controller().is_active(*fn));
    EXPECT_FALSE(bed_->pf().delete_vf(*fn).is_ok()); // double delete
}

TEST_F(DriversTest, WriteMissServiceAllocatesAndResumes)
{
    auto vm = bed_->create_nesc_guest("/lazy.img", 4096, false);
    ASSERT_TRUE(vm.is_ok());
    std::vector<std::byte> data(4 * 1024, std::byte{0x2d});
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(100, 4, data).is_ok());
    EXPECT_GE(bed_->pf().write_misses_serviced(), 1u);
    EXPECT_GE(bed_->pf().faults_serviced(), 1u);

    // The hypervisor file now has the blocks allocated.
    auto ino = bed_->hv_fs().resolve("/lazy.img");
    ASSERT_TRUE(ino.is_ok());
    auto extents = bed_->hv_fs().fiemap(*ino);
    ASSERT_TRUE(extents.is_ok());
    EXPECT_TRUE(fs::map_lookup(*extents, 100).has_value());
}

TEST_F(DriversTest, AllocationBatchingAmortizesFaults)
{
    // Streaming 128 KiB into a lazy image with a 32-block batch should
    // fault ~4 times, not 128.
    auto vm = bed_->create_nesc_guest("/batch.img", 4096, false);
    ASSERT_TRUE(vm.is_ok());
    std::vector<std::byte> data(128 * 1024, std::byte{1});
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 128, data).is_ok());
    EXPECT_LE(bed_->pf().write_misses_serviced(), 8u);
    EXPECT_GE(bed_->pf().write_misses_serviced(), 2u);
}

TEST_F(DriversTest, AllocationDeniedFailsWrites)
{
    auto vm = bed_->create_nesc_guest("/quota.img", 4096, false);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    bed_->pf().set_allocation_denied(*fn, true);

    std::vector<std::byte> data(1024, std::byte{1});
    auto status = (*vm)->raw_disk().write_blocks(0, 1, data);
    EXPECT_FALSE(status.is_ok());

    // Re-enable and retry: the write now succeeds.
    bed_->pf().set_allocation_denied(*fn, false);
    EXPECT_TRUE((*vm)->raw_disk().write_blocks(0, 1, data).is_ok());
}

TEST_F(DriversTest, PruneFaultRegeneratesMapping)
{
    auto vm = bed_->create_nesc_guest("/prune.img", 2048, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());

    std::vector<std::byte> data(1024, std::byte{0x5e});
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(700, 1, data).is_ok());

    // Fragment the mapping enough to have internal nodes, then prune.
    // (A preallocated contiguous file may be a single extent; prune of
    // a leaf-only tree is a no-op, so this exercise only asserts when
    // subtrees were actually pruned.)
    auto pruned = bed_->pf().prune_vf_tree(*fn, 0, 2048);
    ASSERT_TRUE(pruned.is_ok());
    ASSERT_TRUE(bed_->pf().flush_btlb().is_ok());

    std::vector<std::byte> back(1024);
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(700, 1, back).is_ok());
    EXPECT_EQ(back, data);
    if (*pruned > 0) {
        EXPECT_GE(bed_->pf().prune_faults_serviced(), 1u);
    }
}

TEST_F(DriversTest, TrampolineModeStillMovesCorrectData)
{
    virt::TestbedConfig config = small_config();
    config.vf_driver.trampoline = true;
    auto bed = virt::Testbed::create(config);
    ASSERT_TRUE(bed.is_ok());
    auto vm = (*bed)->create_nesc_guest("/t.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    std::vector<std::byte> out(4 * 1024), in(4 * 1024);
    wl::fill_pattern(5, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 4, out).is_ok());
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(0, 4, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST_F(DriversTest, MultipleVfsOverDistinctFiles)
{
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    for (int i = 0; i < 3; ++i) {
        auto vm = bed_->create_nesc_guest(
            "/multi" + std::to_string(i) + ".img", 1024, true);
        ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
        vms.push_back(std::move(vm).value());
    }
    EXPECT_EQ(bed_->pf().vfs().size(), 3u);
    // Each writes its own pattern; all must read back correctly.
    for (std::size_t i = 0; i < vms.size(); ++i) {
        std::vector<std::byte> data(1024,
                                    static_cast<std::byte>(0x10 + i));
        ASSERT_TRUE(
            vms[i]->raw_disk().write_blocks(10, 1, data).is_ok());
    }
    for (std::size_t i = 0; i < vms.size(); ++i) {
        std::vector<std::byte> back(1024);
        ASSERT_TRUE(vms[i]->raw_disk().read_blocks(10, 1, back).is_ok());
        EXPECT_EQ(back[0], static_cast<std::byte>(0x10 + i));
    }
}

// --- Retry backoff jitter -----------------------------------------------

/**
 * Runs a PF read that hits @p transients transient media faults and
 * returns the total simulated time the request took, under the given
 * jitter settings. Everything is seeded, so equal settings must give
 * equal times.
 */
sim::Duration
timed_retry_run(double jitter, std::uint64_t jitter_seed)
{
    sim::Simulator sim;
    pcie::HostMemory host_memory(16 << 20);
    storage::MemBlockDeviceConfig mcfg;
    mcfg.capacity_bytes = 4 << 20;
    storage::MemBlockDevice inner(mcfg);
    storage::FaultPlan plan;
    plan.seed = 9;
    plan.schedule.push_back({0, storage::InjectedFault::kTransient});
    plan.schedule.push_back({1, storage::InjectedFault::kTransient});
    storage::FaultyBlockDevice faulty(inner, plan);
    pcie::InterruptController irq(sim);
    ctrl::Controller controller(sim, host_memory, faulty, irq);
    pcie::BarPageRouter bar(controller, 4096,
                            controller.num_functions());

    FunctionDriverConfig config;
    config.retry_jitter = jitter;
    config.jitter_seed = jitter_seed;
    FunctionDriver driver(sim, host_memory, bar, irq,
                          pcie::kPhysicalFunctionId, config);
    EXPECT_TRUE(driver.init().is_ok());

    std::vector<std::byte> buf(1024);
    const sim::Time start = sim.now();
    EXPECT_TRUE(driver.read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(driver.retries(), 2u);
    return sim.now() - start;
}

TEST(RetryJitter, ZeroJitterKeepsLegacyExponentialBackoff)
{
    // jitter = 0 must reproduce the exact historical delays, bit for
    // bit, independent of the seed field.
    const sim::Duration a = timed_retry_run(0.0, 1);
    const sim::Duration b = timed_retry_run(0.0, 2);
    EXPECT_EQ(a, b);
}

TEST(RetryJitter, JitterSpreadsRetriesDeterministically)
{
    const sim::Duration base = timed_retry_run(0.0, 1);
    const sim::Duration jittered = timed_retry_run(0.4, 1);
    // Same settings, same timeline.
    EXPECT_EQ(jittered, timed_retry_run(0.4, 1));
    // The scaled delays actually moved, but stayed within the band:
    // two retries of 10 us and 20 us can shift by at most 40% each.
    EXPECT_NE(jittered, base);
    const sim::Duration spread = 2 * 4'000 + 2 * 8'000;
    EXPECT_LE(jittered > base ? jittered - base : base - jittered,
              spread);
    // Different seeds explore different points of the band.
    EXPECT_NE(jittered, timed_retry_run(0.4, 99));
}

} // namespace
} // namespace nesc::drv
