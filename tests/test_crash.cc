/**
 * @file
 * Crash-consistency property tests for nestfs.
 *
 * A fault-injecting BlockIo models power loss: every write up to a
 * randomly chosen cut point persists; everything after is silently
 * dropped (reads still serve persisted state). After the "crash" a
 * fresh mount replays the journal and NestFs::fsck() must report a
 * fully consistent volume — for any cut point and any workload, as
 * long as metadata journaling is on.
 */
#include <gtest/gtest.h>

#include "blocklayer/device_block_io.h"
#include "repl/replica_set.h"
#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"
#include "util/rng.h"
#include "workloads/dd.h"

namespace nesc::fs {
namespace {

/** Drops all writes after a configured number of block writes. */
class FaultInjectionBlockIo : public blk::BlockIo {
  public:
    explicit FaultInjectionBlockIo(blk::BlockIo &base) : base_(base) {}

    std::uint32_t block_size() const override { return base_.block_size(); }
    std::uint64_t num_blocks() const override { return base_.num_blocks(); }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        return base_.read_blocks(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        // Block-granular cut: a multi-block write may persist a prefix
        // (torn write), exactly what a real power loss produces.
        const std::uint32_t bs = block_size();
        for (std::uint32_t i = 0; i < count; ++i) {
            ++writes_seen_;
            if (cut_after_ != 0 && writes_seen_ > cut_after_)
                continue; // dropped on the floor
            NESC_RETURN_IF_ERROR(base_.write_blocks(
                blockno + i, 1,
                in.subspan(static_cast<std::size_t>(i) * bs, bs)));
        }
        return util::Status::ok();
    }

    util::Status flush() override { return base_.flush(); }

    /** Future writes beyond @p n total block writes are dropped. */
    void set_cut_after(std::uint64_t n) { cut_after_ = n; }
    std::uint64_t writes_seen() const { return writes_seen_; }

  private:
    blk::BlockIo &base_;
    std::uint64_t writes_seen_ = 0;
    std::uint64_t cut_after_ = 0; ///< 0 = no fault
};

storage::MemBlockDeviceConfig
fast_device()
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 8 << 20;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    return cfg;
}

/** Runs a deterministic metadata-heavy workload; stops on ENOSPC-ish
 * errors or when a write finally hits the injected fault. */
void
churn(NestFs &fs, util::Rng &rng, int ops)
{
    std::vector<InodeId> files;
    std::vector<std::byte> buf;
    for (int op = 0; op < ops; ++op) {
        const int kind = static_cast<int>(rng.next_below(10));
        if (kind < 4 || files.empty()) {
            auto ino = fs.create("/f" + std::to_string(op), 0644);
            if (ino.is_ok())
                files.push_back(*ino);
        } else if (kind < 8) {
            const InodeId ino = files[rng.next_below(files.size())];
            buf.assign(1 + rng.next_below(5000), std::byte{0x61});
            (void)fs.write(ino, rng.next_below(20000), buf);
        } else {
            const std::size_t victim = rng.next_below(files.size());
            // Names are unknown here; use truncate as the churn op
            // instead of unlink to keep the reference list valid.
            (void)fs.truncate(files[victim], rng.next_below(30000));
        }
    }
}

TEST(CrashConsistency, FsckCleanOnFreshVolume)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo io(sim, dev);
    auto fs = NestFs::format(io);
    ASSERT_TRUE(fs.is_ok());
    util::Rng rng(500);
    churn(**fs, rng, 60);
    auto report = (*fs)->fsck();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_TRUE(report->clean)
        << (report->errors.empty() ? "" : report->errors.front());
    EXPECT_GT(report->files, 0u);
    EXPECT_EQ(report->leaked_blocks, 0u);
    EXPECT_EQ(report->orphan_inodes, 0u);
}

TEST(CrashConsistency, FsckDetectsManualCorruption)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo io(sim, dev);
    auto fs = NestFs::format(io);
    ASSERT_TRUE(fs.is_ok());
    auto ino = (*fs)->create("/x", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> data(4096, std::byte{1});
    ASSERT_TRUE((*fs)->write(*ino, 0, data).is_ok());
    const std::uint64_t data_start = (*fs)->superblock().data_start;
    const std::uint64_t journal_start = (*fs)->superblock().journal_start;
    ASSERT_TRUE((*fs)->unmount().is_ok());
    fs->reset();

    // Neutralize the journal first: mount-time replay would otherwise
    // re-checkpoint the committed transactions and repair the damage
    // (a nice property, but not what this test probes).
    std::vector<std::byte> zero(kFsBlockSize);
    ASSERT_TRUE(io.write_blocks(journal_start, 1, zero).is_ok());

    // Corrupt: clear the bitmap bytes covering the start of the data
    // area (where /x's blocks live), so referenced blocks look free.
    std::vector<std::byte> block(kFsBlockSize);
    ASSERT_TRUE(io.read_blocks(1, 1, block).is_ok());
    const std::size_t first_byte = data_start / 8;
    std::fill(block.begin() + static_cast<std::ptrdiff_t>(first_byte),
              block.begin() + static_cast<std::ptrdiff_t>(first_byte + 16),
              std::byte{0});
    ASSERT_TRUE(io.write_blocks(1, 1, block).is_ok());

    auto remounted = NestFs::mount(io);
    ASSERT_TRUE(remounted.is_ok());
    auto report = (*remounted)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_FALSE(report->clean);
}

class CrashPoint : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashPoint, MetadataJournalKeepsVolumeConsistent)
{
    // Phase 1: measure how many block writes the full workload issues.
    // Phase 2: replay it with the cut at GetParam() percent of them,
    // crash, remount, fsck.
    const std::uint64_t cut_pct = GetParam();

    std::uint64_t total_writes = 0;
    {
        sim::Simulator sim;
        storage::MemBlockDevice dev(fast_device());
        blk::DeviceBlockIo raw(sim, dev);
        FaultInjectionBlockIo io(raw);
        auto fs = NestFs::format(io);
        ASSERT_TRUE(fs.is_ok());
        util::Rng rng(777);
        churn(**fs, rng, 80);
        total_writes = io.writes_seen();
    }
    ASSERT_GT(total_writes, 100u);

    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo raw(sim, dev);
    FaultInjectionBlockIo io(raw);
    {
        auto fs = NestFs::format(io);
        ASSERT_TRUE(fs.is_ok());
        // Arm the cut after formatting so the volume itself is valid.
        io.set_cut_after(io.writes_seen() +
                         (total_writes * cut_pct) / 100);
        util::Rng rng(777);
        churn(**fs, rng, 80);
        // Crash: the NestFs object is dropped without unmount, and
        // everything after the cut never reached the media.
    }

    auto remounted = NestFs::mount(raw); // power back: no more faults
    ASSERT_TRUE(remounted.is_ok()) << remounted.status().to_string();
    auto report = (*remounted)->fsck();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_TRUE(report->clean && report->orphan_inodes == 0 &&
                report->leaked_blocks == 0)
        << "cut at " << cut_pct << "%: "
        << (report->errors.empty() ? "leak/orphan"
                                   : report->errors.front());
}

INSTANTIATE_TEST_SUITE_P(CutPoints, CrashPoint,
                         ::testing::Values(5, 15, 30, 45, 60, 75, 90,
                                           97));

} // namespace
} // namespace nesc::fs

// --- Replica-set crash consistency ---------------------------------------

namespace nesc::repl {
namespace {

/**
 * Kill-at-every-write sweep one level up: a backend crashes (silently
 * stops acking) after the k-th replicated write, for every k. Its
 * dirty-extent log must cover everything unacknowledged, so after
 * revival — journal recovery plus background resync — the backend is
 * bit-identical to the survivors, whichever write the crash split.
 */
TEST(ReplicaCrashConsistency, CrashAtEveryWriteResyncsBitIdentical)
{
    constexpr std::uint64_t kWrites = 12;
    for (std::uint64_t crash_at = 0; crash_at < kWrites; ++crash_at) {
        sim::Simulator sim;
        ReplicaSetConfig cfg;
        cfg.quorum = 2;
        cfg.read_timeout = 50'000;
        cfg.write_timeout = 50'000;
        ReplicaSet set(sim, cfg);
        std::vector<std::unique_ptr<storage::MemBlockDevice>> media;
        storage::MemBlockDeviceConfig mcfg;
        mcfg.capacity_bytes = 256 * 1024;
        mcfg.read_bytes_per_sec = 0;
        mcfg.write_bytes_per_sec = 0;
        mcfg.access_latency = 0;
        for (int i = 0; i < 3; ++i) {
            media.push_back(
                std::make_unique<storage::MemBlockDevice>(mcfg));
            set.add_backend(*media.back());
        }

        std::vector<std::byte> buf(2 * 1024);
        for (std::uint64_t w = 0; w < kWrites; ++w) {
            if (w == crash_at)
                set.crash_backend(2);
            wl::fill_pattern(w, 0, buf);
            util::Status result =
                util::internal_error("done never fired");
            set.write(w * 2, buf,
                      [&result](util::Status s) { result = s; });
            sim.run_until_idle();
            // Two of three backends keep serving: quorum holds.
            ASSERT_TRUE(result.is_ok())
                << "crash_at=" << crash_at << " write=" << w;
        }
        EXPECT_GT(set.dirty_blocks(2), 0u) << "crash_at=" << crash_at;

        set.revive_backend(2);
        sim.run_until_idle();
        EXPECT_EQ(set.backend_state(2), BackendState::kHealthy)
            << "crash_at=" << crash_at;
        EXPECT_EQ(set.dirty_blocks(2), 0u) << "crash_at=" << crash_at;
        auto equal = set.verify_equal(0, 2);
        ASSERT_TRUE(equal.is_ok());
        EXPECT_TRUE(*equal) << "crash_at=" << crash_at;
    }
}

} // namespace
} // namespace nesc::repl
