/**
 * @file
 * Unit and property tests for the extent-tree module: wire layout,
 * builder, software walker, pruning, and lifecycle.
 */
#include <gtest/gtest.h>

#include "extent/tree_image.h"
#include "extent/types.h"
#include "extent/walker.h"
#include "util/rng.h"

namespace nesc::extent {
namespace {

// --- Types ------------------------------------------------------------

TEST(ExtentTypes, ContainsAndTranslate)
{
    Extent e{100, 50, 7000};
    EXPECT_TRUE(e.contains(100));
    EXPECT_TRUE(e.contains(149));
    EXPECT_FALSE(e.contains(150));
    EXPECT_FALSE(e.contains(99));
    EXPECT_EQ(e.translate(100), 7000u);
    EXPECT_EQ(e.translate(149), 7049u);
    EXPECT_EQ(e.end_vblock(), 150u);
}

TEST(ExtentTypes, ListValidation)
{
    EXPECT_TRUE(is_valid_extent_list({}));
    EXPECT_TRUE(is_valid_extent_list({{0, 5, 10}, {5, 5, 100}}));
    EXPECT_TRUE(is_valid_extent_list({{0, 5, 10}, {8, 5, 100}})); // gap ok
    EXPECT_FALSE(is_valid_extent_list({{0, 5, 10}, {4, 5, 100}})); // overlap
    EXPECT_FALSE(is_valid_extent_list({{5, 5, 10}, {0, 3, 100}})); // unsorted
    EXPECT_FALSE(is_valid_extent_list({{0, 0, 10}}));              // empty
    EXPECT_EQ(total_mapped_blocks({{0, 5, 0}, {9, 7, 0}}), 12u);
}

// --- Builder shapes ----------------------------------------------------

TEST(TreeImage, EmptyListYieldsLeafRoot)
{
    pcie::HostMemory mem(1 << 20);
    auto image = ExtentTreeImage::build(mem, {});
    ASSERT_TRUE(image.is_ok());
    EXPECT_EQ(image->depth(), 0u);
    EXPECT_EQ(image->num_nodes(), 1u);
    auto result = lookup(mem, image->root(), 0);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->outcome, LookupOutcome::kHole);
}

TEST(TreeImage, SingleExtentSingleLeaf)
{
    pcie::HostMemory mem(1 << 20);
    auto image = ExtentTreeImage::build(mem, {{0, 1000, 5000}});
    ASSERT_TRUE(image.is_ok());
    EXPECT_EQ(image->depth(), 0u);
    EXPECT_EQ(image->num_nodes(), 1u);
    auto result = lookup(mem, image->root(), 512);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->outcome, LookupOutcome::kMapped);
    EXPECT_EQ(result->extent.translate(512), 5512u);
    EXPECT_EQ(result->nodes_visited, 1u);
}

TEST(TreeImage, GrowsLevelsWithExtentCount)
{
    pcie::HostMemory mem(8 << 20);
    TreeConfig config;
    config.fanout = 4;
    ExtentList extents;
    for (std::uint64_t i = 0; i < 64; ++i)
        extents.push_back(Extent{i * 2, 1, 100 + i});
    auto image = ExtentTreeImage::build(mem, extents, config);
    ASSERT_TRUE(image.is_ok());
    // 64 extents at fanout 4: leaves 16 -> 4 -> 1 root. Depth 2.
    EXPECT_EQ(image->depth(), 2u);
    EXPECT_EQ(image->num_nodes(), 16u + 4u + 1u);
}

TEST(TreeImage, RejectsBadInput)
{
    pcie::HostMemory mem(1 << 20);
    EXPECT_FALSE(
        ExtentTreeImage::build(mem, {{4, 5, 0}, {0, 3, 0}}).is_ok());
    TreeConfig config;
    config.fanout = 1;
    EXPECT_FALSE(ExtentTreeImage::build(mem, {}, config).is_ok());
}

TEST(TreeImage, DestroyReleasesAllMemory)
{
    pcie::HostMemory mem(8 << 20);
    const std::uint64_t baseline = mem.allocated_bytes();
    {
        ExtentList extents;
        for (std::uint64_t i = 0; i < 500; ++i)
            extents.push_back(Extent{i * 3, 2, i * 10});
        auto image = ExtentTreeImage::build(mem, extents);
        ASSERT_TRUE(image.is_ok());
        EXPECT_GT(mem.allocated_bytes(), baseline);
        // Destructor runs here.
    }
    EXPECT_EQ(mem.allocated_bytes(), baseline);
}

TEST(TreeImage, MoveTransfersOwnership)
{
    pcie::HostMemory mem(1 << 20);
    auto image = ExtentTreeImage::build(mem, {{0, 10, 50}});
    ASSERT_TRUE(image.is_ok());
    ExtentTreeImage moved = std::move(image).value();
    EXPECT_NE(moved.root(), pcie::kNullHostAddr);
    EXPECT_EQ(moved.num_nodes(), 1u);
    ASSERT_TRUE(moved.destroy().is_ok());
    EXPECT_EQ(mem.allocated_bytes(), 0u);
}

// --- Walker outcomes ------------------------------------------------------

TEST(Walker, HoleBetweenExtents)
{
    pcie::HostMemory mem(1 << 20);
    auto image =
        ExtentTreeImage::build(mem, {{0, 10, 100}, {20, 10, 200}});
    ASSERT_TRUE(image.is_ok());
    auto hole = lookup(mem, image->root(), 15);
    ASSERT_TRUE(hole.is_ok());
    EXPECT_EQ(hole->outcome, LookupOutcome::kHole);
    auto past = lookup(mem, image->root(), 35);
    ASSERT_TRUE(past.is_ok());
    EXPECT_EQ(past->outcome, LookupOutcome::kHole);
}

TEST(Walker, ExactBoundaries)
{
    pcie::HostMemory mem(1 << 20);
    auto image = ExtentTreeImage::build(mem, {{10, 5, 100}});
    ASSERT_TRUE(image.is_ok());
    EXPECT_EQ(lookup(mem, image->root(), 9)->outcome,
              LookupOutcome::kHole);
    EXPECT_EQ(lookup(mem, image->root(), 10)->outcome,
              LookupOutcome::kMapped);
    EXPECT_EQ(lookup(mem, image->root(), 14)->outcome,
              LookupOutcome::kMapped);
    EXPECT_EQ(lookup(mem, image->root(), 15)->outcome,
              LookupOutcome::kHole);
}

TEST(Walker, NullRootRejected)
{
    pcie::HostMemory mem(4096);
    EXPECT_FALSE(lookup(mem, pcie::kNullHostAddr, 0).is_ok());
    EXPECT_FALSE(enumerate(mem, pcie::kNullHostAddr).is_ok());
}

TEST(Walker, CorruptNodeDetected)
{
    pcie::HostMemory mem(4096);
    ASSERT_TRUE(mem.fill_zero(64, 128).is_ok());
    auto result = lookup(mem, 64, 0);
    EXPECT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), util::ErrorCode::kDataLoss);
}

TEST(Walker, VisitsOneNodePerLevel)
{
    pcie::HostMemory mem(8 << 20);
    TreeConfig config;
    config.fanout = 4;
    ExtentList extents;
    for (std::uint64_t i = 0; i < 64; ++i)
        extents.push_back(Extent{i, 1, i + 1000});
    auto image = ExtentTreeImage::build(mem, extents, config);
    ASSERT_TRUE(image.is_ok());
    auto result = lookup(mem, image->root(), 33);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->outcome, LookupOutcome::kMapped);
    EXPECT_EQ(result->nodes_visited, image->depth() + 1);
}

TEST(Walker, EnumerateReturnsOriginalExtents)
{
    pcie::HostMemory mem(8 << 20);
    TreeConfig config;
    config.fanout = 5;
    ExtentList extents;
    for (std::uint64_t i = 0; i < 123; ++i)
        extents.push_back(Extent{i * 4, 3, i * 100});
    auto image = ExtentTreeImage::build(mem, extents, config);
    ASSERT_TRUE(image.is_ok());
    auto out = enumerate(mem, image->root());
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(*out, extents);
}

// --- Pruning ----------------------------------------------------------------

TEST(TreeImage, PruneMakesSubtreeUnreachable)
{
    pcie::HostMemory mem(8 << 20);
    TreeConfig config;
    config.fanout = 4;
    ExtentList extents;
    for (std::uint64_t i = 0; i < 64; ++i)
        extents.push_back(Extent{i, 1, i + 1000});
    auto image = ExtentTreeImage::build(mem, extents, config);
    ASSERT_TRUE(image.is_ok());
    const std::size_t nodes_before = image->num_nodes();

    auto pruned = image->prune_range(16, 16);
    ASSERT_TRUE(pruned.is_ok());
    EXPECT_GE(*pruned, 1u);
    EXPECT_LT(image->num_nodes(), nodes_before);
    EXPECT_EQ(image->pruned_count(), *pruned);

    // Inside the pruned range: kPruned. Outside: still mapped.
    EXPECT_EQ(lookup(mem, image->root(), 20)->outcome,
              LookupOutcome::kPruned);
    EXPECT_EQ(lookup(mem, image->root(), 5)->outcome,
              LookupOutcome::kMapped);
    EXPECT_EQ(lookup(mem, image->root(), 50)->outcome,
              LookupOutcome::kMapped);
}

TEST(TreeImage, PruneLeafOnlyTreeIsNoop)
{
    pcie::HostMemory mem(1 << 20);
    auto image = ExtentTreeImage::build(mem, {{0, 100, 500}});
    ASSERT_TRUE(image.is_ok());
    auto pruned = image->prune_range(0, 100);
    ASSERT_TRUE(pruned.is_ok());
    EXPECT_EQ(*pruned, 0u);
    EXPECT_EQ(lookup(mem, image->root(), 50)->outcome,
              LookupOutcome::kMapped);
}

TEST(TreeImage, EnumerateSkipsPruned)
{
    pcie::HostMemory mem(8 << 20);
    TreeConfig config;
    config.fanout = 4;
    ExtentList extents;
    for (std::uint64_t i = 0; i < 32; ++i)
        extents.push_back(Extent{i, 1, i});
    auto image = ExtentTreeImage::build(mem, extents, config);
    ASSERT_TRUE(image.is_ok());
    ASSERT_TRUE(image->prune_range(0, 8).is_ok());
    auto out = enumerate(mem, image->root());
    ASSERT_TRUE(out.is_ok());
    EXPECT_LT(out->size(), extents.size());
}

// --- Property tests: random mappings vs. reference ---------------------------

/** Reference lookup on the flat list. */
LookupOutcome
reference_lookup(const ExtentList &extents, Vlba vlba, Plba *plba)
{
    for (const Extent &e : extents) {
        if (e.contains(vlba)) {
            *plba = e.translate(vlba);
            return LookupOutcome::kMapped;
        }
    }
    return LookupOutcome::kHole;
}

class TreeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeProperty, RandomTreesMatchReferenceLookups)
{
    const std::uint32_t fanout = GetParam();
    util::Rng rng(fanout * 7919 + 13);
    pcie::HostMemory mem(32 << 20);

    for (int trial = 0; trial < 10; ++trial) {
        // Random sorted extent list with random gaps.
        ExtentList extents;
        Vlba cursor = rng.next_below(4);
        const std::uint64_t count = 1 + rng.next_below(300);
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t len = 1 + rng.next_below(16);
            extents.push_back(
                Extent{cursor, len, 10'000 + rng.next_below(1'000'000)});
            cursor += len + rng.next_below(8); // gaps ~half the time
        }
        ASSERT_TRUE(is_valid_extent_list(extents));

        TreeConfig config;
        config.fanout = fanout;
        auto image = ExtentTreeImage::build(mem, extents, config);
        ASSERT_TRUE(image.is_ok());

        for (int q = 0; q < 200; ++q) {
            const Vlba vlba = rng.next_below(cursor + 20);
            Plba want_plba = 0;
            const LookupOutcome want =
                reference_lookup(extents, vlba, &want_plba);
            auto got = lookup(mem, image->root(), vlba);
            ASSERT_TRUE(got.is_ok());
            ASSERT_EQ(got->outcome, want)
                << "fanout=" << fanout << " vlba=" << vlba;
            if (want == LookupOutcome::kMapped) {
                ASSERT_EQ(got->extent.translate(vlba), want_plba);
            }
        }
        ASSERT_TRUE(image->destroy().is_ok());
        ASSERT_EQ(mem.allocated_bytes(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, TreeProperty,
                         ::testing::Values(2, 3, 4, 8, 16, 64, 341));

} // namespace
} // namespace nesc::extent
