/**
 * @file
 * Unit tests for storage devices.
 */
#include <gtest/gtest.h>

#include "storage/mem_block_device.h"

namespace nesc::storage {
namespace {

MemBlockDeviceConfig
tiny()
{
    MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 1 << 20;
    cfg.read_bytes_per_sec = 1'000'000'000;
    cfg.write_bytes_per_sec = 2'000'000'000;
    cfg.access_latency = 100;
    return cfg;
}

TEST(MemBlockDevice, GeometryReflectsConfig)
{
    MemBlockDevice dev(tiny());
    EXPECT_EQ(dev.geometry().capacity_bytes, 1u << 20);
    EXPECT_EQ(dev.geometry().logical_block_size, 1024u);
    EXPECT_EQ(dev.geometry().num_blocks(), 1024u);
}

TEST(MemBlockDevice, ReadsBackWrites)
{
    MemBlockDevice dev(tiny());
    std::vector<std::byte> out(4096), in(4096);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::byte>(i * 13);
    ASSERT_TRUE(dev.write(8192, out).is_ok());
    ASSERT_TRUE(dev.read(8192, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_EQ(dev.bytes_written(), 4096u);
    EXPECT_EQ(dev.bytes_read(), 4096u);
}

TEST(MemBlockDevice, FreshDeviceReadsZero)
{
    MemBlockDevice dev(tiny());
    std::vector<std::byte> in(512, std::byte{0xaa});
    ASSERT_TRUE(dev.read(0, in).is_ok());
    for (std::byte b : in)
        EXPECT_EQ(b, std::byte{0});
}

TEST(MemBlockDevice, RejectsOutOfRange)
{
    MemBlockDevice dev(tiny());
    std::vector<std::byte> buf(1024);
    EXPECT_EQ(dev.read((1 << 20), buf).code(),
              util::ErrorCode::kOutOfRange);
    EXPECT_EQ(dev.write((1 << 20) - 512, buf).code(),
              util::ErrorCode::kOutOfRange);
    // Exactly at the end is fine.
    EXPECT_TRUE(dev.read((1 << 20) - 1024, buf).is_ok());
}

TEST(MemBlockDevice, TimingUsesPerDirectionRates)
{
    MemBlockDevice dev(tiny());
    // 1 MB read at 1 GB/s = 1 ms + 100 ns latency.
    EXPECT_EQ(dev.service_read(0, 0, 1'000'000), 1'000'000u + 100u);
    // Port is serialized: the write queues behind the read occupancy.
    EXPECT_EQ(dev.service_write(0, 0, 1'000'000),
              1'000'000u + 500'000u + 100u);
}

TEST(MemBlockDevice, SetRatesRethrottles)
{
    MemBlockDevice dev(tiny());
    dev.set_rates(500'000'000, 500'000'000);
    EXPECT_EQ(dev.service_read(0, 0, 1'000'000), 2'000'000u + 100u);
}

TEST(MemBlockDevice, InfinitelyFastWhenRateZero)
{
    MemBlockDeviceConfig cfg = tiny();
    cfg.read_bytes_per_sec = 0;
    cfg.access_latency = 0;
    MemBlockDevice dev(cfg);
    EXPECT_EQ(dev.service_read(42, 0, 1 << 20), 42u);
}

TEST(MemBlockDevice, PresetConfigs)
{
    const auto proto = MemBlockDeviceConfig::vc707_prototype();
    EXPECT_EQ(proto.capacity_bytes, 1ULL << 30);
    EXPECT_EQ(proto.read_bytes_per_sec, 800'000'000u);
    const auto ram = MemBlockDeviceConfig::ramdisk(3'600'000'000ULL);
    EXPECT_EQ(ram.read_bytes_per_sec, 3'600'000'000ULL);
    EXPECT_EQ(ram.write_bytes_per_sec, 3'600'000'000ULL);
}

} // namespace
} // namespace nesc::storage
