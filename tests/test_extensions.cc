/**
 * @file
 * Tests for the paper's §IV.D extension features implemented beyond
 * the prototype: shared extent trees, QoS arbitration weights,
 * device-side statistics registers, interrupt coalescing, and the
 * dedup/BTLB-flush interaction.
 */
#include <gtest/gtest.h>

#include "extent/walker.h"
#include "util/rng.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class ExtensionsTest : public ::testing::Test {
  protected:
    ExtensionsTest()
    {
        auto bed = virt::Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
    }

    std::unique_ptr<virt::Testbed> bed_;
};

// --- Shared extent trees (paper §IV.B) --------------------------------------

TEST_F(ExtensionsTest, SharedTreeVfsSeeEachOthersWrites)
{
    auto ino = bed_->create_backing_file("/shared.img", 4096, true);
    ASSERT_TRUE(ino.is_ok());
    auto fn1 = bed_->pf().create_vf(*ino, 4096);
    ASSERT_TRUE(fn1.is_ok());
    auto fn2 = bed_->pf().create_vf_shared(*fn1, 4096);
    ASSERT_TRUE(fn2.is_ok()) << fn2.status().to_string();
    EXPECT_NE(*fn1, *fn2);

    // Both VFs report the same tree root.
    auto root1 =
        bed_->controller().mmio_read(*fn1, ctrl::reg::kExtentTreeRoot, 8);
    auto root2 =
        bed_->controller().mmio_read(*fn2, ctrl::reg::kExtentTreeRoot, 8);
    ASSERT_TRUE(root1.is_ok() && root2.is_ok());
    EXPECT_EQ(*root1, *root2);

    // Data written through one VF reads back through the other.
    drv::FunctionDriver d1(bed_->sim(), bed_->host_memory(), bed_->bar(),
                           bed_->irq(), *fn1, bed_->config().vf_driver);
    drv::FunctionDriver d2(bed_->sim(), bed_->host_memory(), bed_->bar(),
                           bed_->irq(), *fn2, bed_->config().vf_driver);
    ASSERT_TRUE(d1.init().is_ok());
    ASSERT_TRUE(d2.init().is_ok());
    std::vector<std::byte> out(4 * 1024), in(4 * 1024);
    wl::fill_pattern(71, 0, out);
    ASSERT_TRUE(d1.write_sync(100, 4, out).is_ok());
    ASSERT_TRUE(d2.read_sync(100, 4, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST_F(ExtensionsTest, SharedTreeOwnerDeleteRefusedUntilSharersGone)
{
    auto ino = bed_->create_backing_file("/owner.img", 1024, true);
    ASSERT_TRUE(ino.is_ok());
    auto fn1 = bed_->pf().create_vf(*ino, 1024);
    ASSERT_TRUE(fn1.is_ok());
    auto fn2 = bed_->pf().create_vf_shared(*fn1, 1024);
    ASSERT_TRUE(fn2.is_ok());

    EXPECT_EQ(bed_->pf().delete_vf(*fn1).code(),
              util::ErrorCode::kFailedPrecondition);
    ASSERT_TRUE(bed_->pf().delete_vf(*fn2).is_ok());
    EXPECT_TRUE(bed_->pf().delete_vf(*fn1).is_ok());
}

TEST_F(ExtensionsTest, SharedTreeFaultServiceUpdatesAllSharers)
{
    // Lazy image: a write through VF2 faults; after service both VFs
    // must be able to read the block through the rebuilt shared tree.
    auto ino = bed_->create_backing_file("/lazy-shared.img", 4096, false);
    ASSERT_TRUE(ino.is_ok());
    auto fn1 = bed_->pf().create_vf(*ino, 4096);
    ASSERT_TRUE(fn1.is_ok());
    auto fn2 = bed_->pf().create_vf_shared(*fn1, 4096);
    ASSERT_TRUE(fn2.is_ok());

    drv::FunctionDriver d1(bed_->sim(), bed_->host_memory(), bed_->bar(),
                           bed_->irq(), *fn1, bed_->config().vf_driver);
    drv::FunctionDriver d2(bed_->sim(), bed_->host_memory(), bed_->bar(),
                           bed_->irq(), *fn2, bed_->config().vf_driver);
    ASSERT_TRUE(d1.init().is_ok());
    ASSERT_TRUE(d2.init().is_ok());

    std::vector<std::byte> out(1024), in(1024);
    wl::fill_pattern(72, 0, out);
    ASSERT_TRUE(d2.write_sync(500, 1, out).is_ok());
    EXPECT_GE(bed_->pf().write_misses_serviced(), 1u);
    ASSERT_TRUE(d1.read_sync(500, 1, in).is_ok());
    EXPECT_EQ(out, in);

    // Roots stayed in sync after the rebuild.
    auto root1 =
        bed_->controller().mmio_read(*fn1, ctrl::reg::kExtentTreeRoot, 8);
    auto root2 =
        bed_->controller().mmio_read(*fn2, ctrl::reg::kExtentTreeRoot, 8);
    EXPECT_EQ(*root1, *root2);
}

// --- QoS weights (paper §IV.D) ------------------------------------------------

TEST_F(ExtensionsTest, QosWeightRegisterRoundTrip)
{
    auto vm = bed_->create_nesc_guest("/qos.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    EXPECT_EQ(*bed_->controller().mmio_read(*fn, ctrl::reg::kQosWeight, 8),
              1u);
    ASSERT_TRUE(bed_->pf().set_qos_weight(*fn, 4).is_ok());
    EXPECT_EQ(*bed_->controller().mmio_read(*fn, ctrl::reg::kQosWeight, 8),
              4u);
    // Weight 0 and unknown VF rejected.
    EXPECT_FALSE(bed_->pf().set_qos_weight(*fn, 0).is_ok());
    EXPECT_FALSE(bed_->pf().set_qos_weight(63, 2).is_ok());
}

TEST_F(ExtensionsTest, QosWeightSkewsServiceShare)
{
    // Two equally aggressive closed-loop clients; VF1 gets weight 4.
    auto vm1 = bed_->create_nesc_guest("/qos1.img", 8192, true);
    auto vm2 = bed_->create_nesc_guest("/qos2.img", 8192, true);
    ASSERT_TRUE(vm1.is_ok() && vm2.is_ok());
    auto fn1 = *bed_->guest_vf(**vm1);
    auto fn2 = *bed_->guest_vf(**vm2);
    ASSERT_TRUE(bed_->pf().set_qos_weight(fn1, 4).is_ok());

    struct Client {
        std::unique_ptr<drv::FunctionDriver> driver;
        pcie::HostAddr buffer;
        std::uint64_t completed = 0;
        util::Rng rng{11};
    };
    Client clients[2];
    const pcie::FunctionId fns[2] = {fn1, fn2};
    for (int i = 0; i < 2; ++i) {
        clients[i].driver = std::make_unique<drv::FunctionDriver>(
            bed_->sim(), bed_->host_memory(), bed_->bar(), bed_->irq(),
            fns[i], bed_->config().vf_driver);
        ASSERT_TRUE(clients[i].driver->init().is_ok());
        auto buf = bed_->host_memory().alloc(4096ULL * 16, 64);
        ASSERT_TRUE(buf.is_ok());
        clients[i].buffer = *buf;
    }
    const sim::Time deadline = bed_->sim().now() + 20 * sim::kMs;
    std::function<void(int, std::uint32_t)> submit =
        [&](int i, std::uint32_t slot) {
            if (bed_->sim().now() >= deadline)
                return;
            (void)clients[i].driver->submit(
                ctrl::Opcode::kRead,
                clients[i].rng.next_below(8192 - 4), 4,
                clients[i].buffer + slot * 4096,
                [&, i, slot](ctrl::CompletionStatus) {
                    ++clients[i].completed;
                    submit(i, slot);
                });
        };
    for (int i = 0; i < 2; ++i)
        for (std::uint32_t slot = 0; slot < 16; ++slot)
            submit(i, slot);
    bed_->sim().run_until(deadline);
    bed_->sim().run_until_idle();

    // The weighted VF must receive measurably more service; with both
    // saturating the device, roughly weight-proportional.
    EXPECT_GT(clients[0].completed, clients[1].completed * 2);
}

// --- Stats registers ------------------------------------------------------------

TEST_F(ExtensionsTest, StatsRegistersTrackTraffic)
{
    auto vm = bed_->create_nesc_guest("/stats.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = *bed_->guest_vf(**vm);
    std::vector<std::byte> buf(8 * 1024);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(0, 8, buf).is_ok());
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(0, 8, buf).is_ok());
    EXPECT_EQ(*bed_->controller().mmio_read(
                  fn, ctrl::reg::kStatBlocksWritten, 8),
              8u);
    EXPECT_EQ(
        *bed_->controller().mmio_read(fn, ctrl::reg::kStatBlocksRead, 8),
        8u);
    EXPECT_EQ(*bed_->controller().mmio_read(fn, ctrl::reg::kStatFaults, 8),
              0u);
}

// --- Interrupt coalescing ---------------------------------------------------------

TEST(InterruptCoalescing, FewerMsisSameData)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    config.controller.irq_coalesce = 20 * sim::kUs;
    auto bed = virt::Testbed::create(config);
    ASSERT_TRUE(bed.is_ok());
    auto vm = (*bed)->create_nesc_guest("/coal.img", 8192, true);
    ASSERT_TRUE(vm.is_ok());

    // Async burst: 16 requests in flight, coalesced completions.
    auto fn = *(*bed)->guest_vf(**vm);
    drv::FunctionDriver driver((*bed)->sim(), (*bed)->host_memory(),
                               (*bed)->bar(), (*bed)->irq(), fn,
                               (*bed)->config().vf_driver);
    ASSERT_TRUE(driver.init().is_ok());
    auto buffer = (*bed)->host_memory().alloc(16 * 4096, 64);
    ASSERT_TRUE(buffer.is_ok());
    int completed = 0;
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(driver
                        .submit(ctrl::Opcode::kRead, i * 4, 4,
                                *buffer + i * 4096,
                                [&](ctrl::CompletionStatus s) {
                                    EXPECT_EQ(
                                        s, ctrl::CompletionStatus::kOk);
                                    ++completed;
                                })
                        .is_ok());
    }
    (*bed)->sim().run_until_idle();
    EXPECT_EQ(completed, 16);
    // Far fewer interrupts than completions were raised for this VF.
    EXPECT_GT((*bed)->controller().counters().get("irqs_coalesced"), 0u);
    EXPECT_LT((*bed)->irq().raised(), 16u + 4u /* faults, mgmt */);
}

// --- Dedup + BTLB flush (paper §V.B) -------------------------------------------

TEST_F(ExtensionsTest, DedupStyleRemapWithBtlbFlush)
{
    // The hypervisor moves a file's physical blocks (as dedup or
    // defrag would), rebuilds the VF tree, and flushes the BTLB so no
    // stale translation survives. The VF must read the same data from
    // the new location.
    auto ino = bed_->create_backing_file("/dedup.img", 256, true);
    ASSERT_TRUE(ino.is_ok());
    auto vm = bed_->create_nesc_guest("/dedup.img", 256, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = *bed_->guest_vf(**vm);

    std::vector<std::byte> data(1024);
    wl::fill_pattern(77, 0, data);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(10, 1, data).is_ok());

    // Hypervisor-side move: copy the file to a new file (new physical
    // blocks), then repoint the VF at the copy's mapping by rebuilding
    // a tree from the new file and flushing the BTLB.
    auto &fs = bed_->hv_fs();
    std::vector<std::byte> whole(256 * 1024);
    ASSERT_TRUE(fs.read(*ino, 0, whole).is_ok());
    auto copy = fs.create("/dedup-copy.img", 0644);
    ASSERT_TRUE(copy.is_ok());
    ASSERT_TRUE(fs.write(*copy, 0, whole).is_ok());
    ASSERT_TRUE(fs.sync().is_ok());
    auto extents = fs.fiemap(*copy);
    ASSERT_TRUE(extents.is_ok());
    auto image = extent::ExtentTreeImage::build(bed_->host_memory(),
                                                *extents);
    ASSERT_TRUE(image.is_ok());
    // VF root updates go through the PF mgmt block (the per-function
    // register is PF-page-only); kSetExtentRoot flushes the VF's BTLB
    // entries, and the explicit full flush models the dedup pass.
    ASSERT_TRUE(bed_->controller()
                    .mmio_write(0, ctrl::reg::kMgmtVfId, fn, 8)
                    .is_ok());
    ASSERT_TRUE(bed_->controller()
                    .mmio_write(0, ctrl::reg::kMgmtExtentRoot,
                                image->root(), 8)
                    .is_ok());
    ASSERT_TRUE(bed_->controller()
                    .mmio_write(0, ctrl::reg::kMgmtCommand,
                                static_cast<std::uint64_t>(
                                    ctrl::MgmtCommand::kSetExtentRoot),
                                8)
                    .is_ok());
    ASSERT_TRUE(bed_->pf().flush_btlb().is_ok());

    std::vector<std::byte> back(1024);
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(10, 1, back).is_ok());
    EXPECT_EQ(back, data);
}

} // namespace
} // namespace nesc
