/**
 * @file
 * Unit tests for the NAND flash device model: functional correctness,
 * asymmetric timing, FTL write amplification under sequential vs.
 * random overwrite, GC behaviour, and end-to-end operation under the
 * NeSC stack.
 */
#include <gtest/gtest.h>

#include "storage/flash_block_device.h"
#include "util/rng.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc::storage {
namespace {

FlashConfig
small_flash()
{
    FlashConfig cfg;
    cfg.capacity_bytes = 16ULL << 20; // 16 MiB logical
    cfg.channels = 4;
    cfg.pages_per_block = 16;
    cfg.overprovision = 0.20;
    return cfg;
}

TEST(FlashDevice, FunctionalReadWriteRoundTrip)
{
    FlashBlockDevice dev(small_flash());
    std::vector<std::byte> out(8192), in(8192);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::byte>(i * 31);
    ASSERT_TRUE(dev.write(4096, out).is_ok());
    ASSERT_TRUE(dev.read(4096, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_FALSE(dev.read(dev.geometry().capacity_bytes, in).is_ok());
}

TEST(FlashDevice, ProgramSlowerThanRead)
{
    FlashBlockDevice dev(small_flash());
    const sim::Time read_done = dev.service_read(0, 0, 4096);
    FlashBlockDevice dev2(small_flash());
    const sim::Time write_done = dev2.service_write(0, 0, 4096);
    EXPECT_GT(write_done, read_done);
    // One page read ~= page_read_latency + page_transfer.
    EXPECT_EQ(read_done, small_flash().page_read_latency +
                             small_flash().page_transfer);
}

TEST(FlashDevice, ChannelsServePagesInParallel)
{
    FlashBlockDevice dev(small_flash());
    // 4 pages across 4 channels at aligned offsets: fully parallel,
    // so the batch completes in a single page time.
    const sim::Time batch = dev.service_read(0, 0, 4 * 4096);
    EXPECT_EQ(batch, small_flash().page_read_latency +
                         small_flash().page_transfer);
    // 8 pages over 4 channels: two serialized rounds per channel.
    FlashBlockDevice dev2(small_flash());
    const sim::Time two_rounds = dev2.service_read(0, 0, 8 * 4096);
    EXPECT_EQ(two_rounds, 2 * (small_flash().page_read_latency +
                               small_flash().page_transfer));
}

TEST(FlashDevice, SequentialOverwriteHasLowWriteAmplification)
{
    FlashBlockDevice dev(small_flash());
    // Write the whole device sequentially several times: invalidated
    // blocks become fully invalid, so GC relocates (almost) nothing.
    const std::uint64_t capacity = dev.geometry().capacity_bytes;
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t off = 0; off < capacity; off += 64 * 1024)
            (void)dev.service_write(0, off, 64 * 1024);
    }
    EXPECT_GT(dev.stats().erases, 0u);
    EXPECT_LT(dev.stats().write_amplification(), 1.15);
}

TEST(FlashDevice, RandomOverwriteAmplifiesWrites)
{
    FlashBlockDevice dev(small_flash());
    const std::uint64_t capacity = dev.geometry().capacity_bytes;
    // Fill once sequentially, then hammer random 4K pages for several
    // device-writes' worth of traffic.
    for (std::uint64_t off = 0; off < capacity; off += 64 * 1024)
        (void)dev.service_write(0, off, 64 * 1024);
    util::Rng rng(6);
    const std::uint64_t pages = capacity / 4096;
    for (std::uint64_t i = 0; i < pages * 3; ++i)
        (void)dev.service_write(0, rng.next_below(pages) * 4096, 4096);

    EXPECT_GT(dev.stats().gc_relocations, 0u);
    EXPECT_GT(dev.stats().write_amplification(), 1.1);
}

TEST(FlashDevice, GcKeepsFreePoolAboveWatermark)
{
    FlashConfig cfg = small_flash();
    FlashBlockDevice dev(cfg);
    const std::uint64_t capacity = dev.geometry().capacity_bytes;
    util::Rng rng(7);
    for (std::uint64_t i = 0; i < 3 * capacity / 4096; ++i)
        (void)dev.service_write(0, rng.next_below(capacity / 4096) * 4096,
                                4096);
    EXPECT_GE(dev.min_free_blocks() + 1, cfg.gc_low_watermark_blocks);
}

TEST(FlashDevice, NescStackRunsOverFlashMedia)
{
    virt::TestbedConfig config;
    config.flash = small_flash();
    config.flash->capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    auto bed = virt::Testbed::create(config);
    ASSERT_TRUE(bed.is_ok()) << bed.status().to_string();
    ASSERT_NE((*bed)->flash_device(), nullptr);

    auto vm = (*bed)->create_nesc_guest("/f.img", 8192, true);
    ASSERT_TRUE(vm.is_ok()) << vm.status().to_string();
    std::vector<std::byte> out(8 * 1024), in(8 * 1024);
    wl::fill_pattern(55, 0, out);
    ASSERT_TRUE((*vm)->raw_disk().write_blocks(64, 8, out).is_ok());
    ASSERT_TRUE((*vm)->raw_disk().read_blocks(64, 8, in).is_ok());
    EXPECT_EQ(out, in);
    EXPECT_GT((*bed)->flash_device()->stats().pages_programmed, 0u);

    // Flash writes are slower than the DRAM prototype: a small write
    // should take in the vicinity of a page-program time or more.
    const sim::Time t0 = (*bed)->sim().now();
    ASSERT_TRUE((*vm)->raw_disk()
                    .write_blocks(100, 4,
                                  std::span<const std::byte>(out.data(),
                                                             4096))
                    .is_ok());
    EXPECT_GT((*bed)->sim().now() - t0,
              config.flash->page_program_latency);
}

} // namespace
} // namespace nesc::storage
