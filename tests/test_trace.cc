/**
 * @file
 * Tests for block-I/O trace capture, serialization, and replay.
 */
#include <gtest/gtest.h>

#include "util/rng.h"
#include "virt/testbed.h"
#include "workloads/fileio.h"
#include "workloads/dd.h"
#include "workloads/trace.h"

namespace nesc::wl {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

TEST(TraceText, RoundTrip)
{
    std::vector<TraceRecord> trace = {
        {100, false, 5, 4},
        {250, true, 9, 1},
        {900, false, 0, 32},
    };
    const std::string text = trace_to_text(trace);
    auto parsed = trace_from_text(text);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_EQ(*parsed, trace);
}

TEST(TraceText, RejectsGarbage)
{
    EXPECT_FALSE(trace_from_text("100 X 5 4\n").is_ok());
    EXPECT_FALSE(trace_from_text("not a trace\n").is_ok());
    auto empty = trace_from_text("");
    ASSERT_TRUE(empty.is_ok());
    EXPECT_TRUE(empty->empty());
}

TEST(TraceText, RejectsTruncatedLines)
{
    EXPECT_FALSE(trace_from_text("100 R 5\n").is_ok()); // missing count
    EXPECT_FALSE(trace_from_text("100 R\n").is_ok());
    EXPECT_FALSE(trace_from_text("100\n").is_ok());
    // A good line does not excuse a truncated one later.
    EXPECT_FALSE(trace_from_text("100 R 5 4\n200 W 9\n").is_ok());
}

TEST(TraceText, RejectsTrailingJunk)
{
    EXPECT_FALSE(trace_from_text("100 R 5 4 x\n").is_ok());
    EXPECT_FALSE(trace_from_text("100 R 5 4 5\n").is_ok());
    EXPECT_FALSE(trace_from_text("100 R 5 4junk\n").is_ok());
}

TEST(TraceText, ErrorNamesTheOffendingLine)
{
    auto parsed = trace_from_text("100 R 5 4\nbogus line\n");
    ASSERT_FALSE(parsed.is_ok());
    EXPECT_NE(parsed.status().message().find("line 2"),
              std::string::npos);
    EXPECT_NE(parsed.status().message().find("bogus line"),
              std::string::npos);
}

TEST(TraceText, ToleratesCrlfAndMissingFinalNewline)
{
    auto crlf = trace_from_text("100 R 5 4\r\n200 W 9 1\r\n");
    ASSERT_TRUE(crlf.is_ok()) << crlf.status().to_string();
    ASSERT_EQ(crlf->size(), 2u);
    EXPECT_EQ((*crlf)[1].blockno, 9u);
    EXPECT_TRUE((*crlf)[1].write);
    auto tailless = trace_from_text("100 R 5 4");
    ASSERT_TRUE(tailless.is_ok());
    EXPECT_EQ(tailless->size(), 1u);
}

TEST(TraceRecorderTest, CapturesOperationsTransparently)
{
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm =
        std::move(bed->create_nesc_guest("/tr.img", 4096, true)).value();
    TraceRecorder recorder(bed->sim(), vm->raw_disk());

    std::vector<std::byte> data(4 * 1024);
    fill_pattern(3, 0, data);
    ASSERT_TRUE(recorder.write_blocks(10, 4, data).is_ok());
    std::vector<std::byte> back(4 * 1024);
    ASSERT_TRUE(recorder.read_blocks(10, 4, back).is_ok());
    EXPECT_EQ(back, data); // transparent

    ASSERT_EQ(recorder.trace().size(), 2u);
    EXPECT_TRUE(recorder.trace()[0].write);
    EXPECT_EQ(recorder.trace()[0].blockno, 10u);
    EXPECT_EQ(recorder.trace()[0].count, 4u);
    EXPECT_FALSE(recorder.trace()[1].write);
    EXPECT_LE(recorder.trace()[0].issued, recorder.trace()[1].issued);
}

TEST(TraceReplayTest, ReplayReproducesOperationMix)
{
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm =
        std::move(bed->create_nesc_guest("/cap.img", 4096, true)).value();

    // Capture a random workload.
    TraceRecorder recorder(bed->sim(), vm->raw_disk());
    util::Rng rng(5);
    std::vector<std::byte> buf;
    std::uint64_t want_reads = 0, want_writes = 0;
    for (int op = 0; op < 100; ++op) {
        const std::uint32_t count =
            static_cast<std::uint32_t>(1 + rng.next_below(8));
        const std::uint64_t blockno = rng.next_below(4096 - count);
        buf.resize(count * 1024);
        if (rng.next_bool(0.4)) {
            fill_pattern(op, 0, buf);
            ASSERT_TRUE(
                recorder.write_blocks(blockno, count, buf).is_ok());
            ++want_writes;
        } else {
            ASSERT_TRUE(recorder.read_blocks(blockno, count, buf).is_ok());
            ++want_reads;
        }
    }

    // Replay onto a different guest (virtio) in the same testbed.
    auto target = std::move(bed->create_virtio_guest_raw()).value();
    auto result =
        replay_trace(bed->sim(), target->raw_disk(), recorder.trace());
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->reads, want_reads);
    EXPECT_EQ(result->writes, want_writes);
    EXPECT_GT(result->bandwidth_mb_s, 0.0);
}

TEST(TraceReplayTest, ThinkTimePreservationStretchesReplay)
{
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm =
        std::move(bed->create_nesc_guest("/tt.img", 2048, true)).value();

    // A sparse trace: three ops, 5 ms apart.
    std::vector<TraceRecord> trace;
    for (int i = 0; i < 3; ++i)
        trace.push_back(TraceRecord{
            static_cast<sim::Time>(i) * 5 * sim::kMs, false,
            static_cast<std::uint64_t>(i * 10), 1});

    ReplayConfig fast;
    fast.preserve_think_time = false;
    auto quick = replay_trace(bed->sim(), vm->raw_disk(), trace, fast);
    ASSERT_TRUE(quick.is_ok());

    ReplayConfig timed;
    timed.preserve_think_time = true;
    auto slow = replay_trace(bed->sim(), vm->raw_disk(), trace, timed);
    ASSERT_TRUE(slow.is_ok());

    EXPECT_LT(quick->elapsed, sim::Duration{1 * sim::kMs});
    EXPECT_GE(slow->elapsed, sim::Duration{10 * sim::kMs});
    EXPECT_EQ(slow->reads, 3u);
}

TEST(TraceReplayTest, ClipsOperationsBeyondTarget)
{
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm =
        std::move(bed->create_nesc_guest("/clip.img", 128, true)).value();
    std::vector<TraceRecord> trace = {
        {0, false, 0, 4},    // fits
        {0, false, 1000, 4}, // beyond the 128-block disk: clipped
        {0, true, 122, 8},   // straddles the end (130 > 128): clipped
        {0, true, 124, 4},   // exactly to the end: fits
    };
    auto result = replay_trace(bed->sim(), vm->raw_disk(), trace);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->reads, 1u);
    EXPECT_EQ(result->writes, 1u);
}

TEST(TraceReplayTest, CapturedFileioReplaysOntoEveryTechnique)
{
    // The intended use: capture an application's I/O once (beneath the
    // guest FS), replay it against each attachment type, and compare.
    auto bed = std::move(virt::Testbed::create(small_config())).value();
    auto vm =
        std::move(bed->create_nesc_guest("/app.img", 16384, true)).value();

    // Interpose the recorder between the guest FS stack and the disk:
    // wrap the VF and run fileio through a guest built on the wrapper.
    TraceRecorder recorder(bed->sim(), vm->device());
    virt::GuestVm traced_vm(bed->sim(),
                            std::make_unique<virt::VirtioDisk>(
                                bed->sim(), recorder, bed->costs()),
                            "traced");
    ASSERT_TRUE(traced_vm.format_fs().is_ok());
    FileioConfig fio;
    fio.operations = 120;
    fio.num_files = 2;
    fio.file_bytes = 128 * 1024;
    ASSERT_TRUE(run_fileio(bed->sim(), traced_vm, fio).is_ok());
    // The traced guest's page cache absorbs most FS traffic; only the
    // misses and flushes reach the block layer.
    ASSERT_GT(recorder.trace().size(), 15u);

    // Replay the captured block stream on the raw NeSC VF and on a
    // virtio disk; NeSC must complete it faster.
    auto nesc_result =
        replay_trace(bed->sim(), vm->raw_disk(), recorder.trace());
    ASSERT_TRUE(nesc_result.is_ok());
    auto virtio_vm = std::move(bed->create_virtio_guest_raw()).value();
    auto virtio_result =
        replay_trace(bed->sim(), virtio_vm->raw_disk(), recorder.trace());
    ASSERT_TRUE(virtio_result.is_ok());
    EXPECT_LT(nesc_result->elapsed, virtio_result->elapsed);
}

} // namespace
} // namespace nesc::wl
