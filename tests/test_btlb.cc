/**
 * @file
 * Unit tests for the block translation lookaside buffer.
 */
#include <gtest/gtest.h>

#include "nesc/btlb.h"

namespace nesc::ctrl {
namespace {

using extent::Extent;

TEST(Btlb, MissOnEmpty)
{
    Btlb btlb(8);
    EXPECT_FALSE(btlb.lookup(1, 100).has_value());
    EXPECT_EQ(btlb.misses(), 1u);
    EXPECT_EQ(btlb.hits(), 0u);
}

TEST(Btlb, HitWithinInsertedExtent)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{100, 50, 9000});
    auto hit = btlb.lookup(1, 120);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->translate(120), 9020u);
    EXPECT_FALSE(btlb.lookup(1, 150).has_value()); // one past the end
    EXPECT_FALSE(btlb.lookup(1, 99).has_value());
}

TEST(Btlb, FunctionIsolation)
{
    // VF 2 must never consume VF 1's cached mapping — this is the
    // security-critical property of the shared translation cache.
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 5000});
    EXPECT_TRUE(btlb.lookup(1, 50).has_value());
    EXPECT_FALSE(btlb.lookup(2, 50).has_value());
}

TEST(Btlb, FifoEvictionOfOldest)
{
    Btlb btlb(2);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(1, Extent{10, 10, 200});
    btlb.insert(1, Extent{20, 10, 300}); // evicts the first
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
    EXPECT_TRUE(btlb.lookup(1, 15).has_value());
    EXPECT_TRUE(btlb.lookup(1, 25).has_value());
    EXPECT_EQ(btlb.size(), 2u);
}

TEST(Btlb, DuplicateInsertIgnored)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(1, Extent{0, 10, 100});
    EXPECT_EQ(btlb.size(), 1u);
    EXPECT_EQ(btlb.inserts(), 1u);
}

TEST(Btlb, FlushClearsEverything)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(2, Extent{0, 10, 200});
    btlb.flush();
    EXPECT_EQ(btlb.size(), 0u);
    EXPECT_EQ(btlb.flushes(), 1u);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
}

TEST(Btlb, FlushFunctionIsSelective)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(2, Extent{0, 10, 200});
    btlb.flush_function(1);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
    EXPECT_TRUE(btlb.lookup(2, 5).has_value());
}

TEST(Btlb, ZeroCapacityNeverCaches)
{
    Btlb btlb(0);
    btlb.insert(1, Extent{0, 10, 100});
    EXPECT_EQ(btlb.size(), 0u);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
}

TEST(Btlb, HitRate)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 0});
    (void)btlb.lookup(1, 1);
    (void)btlb.lookup(1, 2);
    (void)btlb.lookup(1, 200); // miss
    EXPECT_NEAR(btlb.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(Btlb, EightVfWorkingSetFits)
{
    // The paper sizes the BTLB so it holds "at least the last mapping
    // for each of the last 8 VFs it serviced".
    Btlb btlb(8);
    for (std::uint16_t fn = 1; fn <= 8; ++fn)
        btlb.insert(fn, Extent{0, 16, fn * 1000ULL});
    for (std::uint16_t fn = 1; fn <= 8; ++fn)
        EXPECT_TRUE(btlb.lookup(fn, 8).has_value()) << fn;
}

} // namespace
} // namespace nesc::ctrl
