/**
 * @file
 * Unit tests for the block translation lookaside buffer.
 */
#include <gtest/gtest.h>

#include "nesc/btlb.h"

namespace nesc::ctrl {
namespace {

using extent::Extent;

TEST(Btlb, MissOnEmpty)
{
    Btlb btlb(8);
    EXPECT_FALSE(btlb.lookup(1, 100).has_value());
    EXPECT_EQ(btlb.misses(), 1u);
    EXPECT_EQ(btlb.hits(), 0u);
}

TEST(Btlb, HitWithinInsertedExtent)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{100, 50, 9000});
    auto hit = btlb.lookup(1, 120);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->translate(120), 9020u);
    EXPECT_FALSE(btlb.lookup(1, 150).has_value()); // one past the end
    EXPECT_FALSE(btlb.lookup(1, 99).has_value());
}

TEST(Btlb, FunctionIsolation)
{
    // VF 2 must never consume VF 1's cached mapping — this is the
    // security-critical property of the shared translation cache.
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 5000});
    EXPECT_TRUE(btlb.lookup(1, 50).has_value());
    EXPECT_FALSE(btlb.lookup(2, 50).has_value());
}

TEST(Btlb, FifoEvictionOfOldest)
{
    Btlb btlb(2);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(1, Extent{10, 10, 200});
    btlb.insert(1, Extent{20, 10, 300}); // evicts the first
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
    EXPECT_TRUE(btlb.lookup(1, 15).has_value());
    EXPECT_TRUE(btlb.lookup(1, 25).has_value());
    EXPECT_EQ(btlb.size(), 2u);
}

TEST(Btlb, DuplicateInsertIgnored)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(1, Extent{0, 10, 100});
    EXPECT_EQ(btlb.size(), 1u);
    EXPECT_EQ(btlb.inserts(), 1u);
}

TEST(Btlb, FlushClearsEverything)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(2, Extent{0, 10, 200});
    btlb.flush();
    EXPECT_EQ(btlb.size(), 0u);
    EXPECT_EQ(btlb.flushes(), 1u);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
}

TEST(Btlb, FlushFunctionIsSelective)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 10, 100});
    btlb.insert(2, Extent{0, 10, 200});
    btlb.flush_function(1);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
    EXPECT_TRUE(btlb.lookup(2, 5).has_value());
}

TEST(Btlb, ZeroCapacityNeverCaches)
{
    Btlb btlb(0);
    btlb.insert(1, Extent{0, 10, 100});
    EXPECT_EQ(btlb.size(), 0u);
    EXPECT_FALSE(btlb.lookup(1, 5).has_value());
}

TEST(Btlb, HitRate)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 0});
    (void)btlb.lookup(1, 1);
    (void)btlb.lookup(1, 2);
    (void)btlb.lookup(1, 200); // miss
    EXPECT_NEAR(btlb.hit_rate(), 2.0 / 3.0, 1e-9);
}

TEST(Btlb, EightVfWorkingSetFits)
{
    // The paper sizes the BTLB so it holds "at least the last mapping
    // for each of the last 8 VFs it serviced".
    Btlb btlb(8);
    for (std::uint16_t fn = 1; fn <= 8; ++fn)
        btlb.insert(fn, Extent{0, 16, fn * 1000ULL});
    for (std::uint16_t fn = 1; fn <= 8; ++fn)
        EXPECT_TRUE(btlb.lookup(fn, 8).has_value()) << fn;
}

TEST(Btlb, FunctionFlushCounted)
{
    Btlb btlb(8);
    btlb.flush_function(1);
    btlb.flush_function(2);
    EXPECT_EQ(btlb.function_flushes(), 2u);
    EXPECT_EQ(btlb.flushes(), 0u); // full flushes counted separately
}

TEST(Btlb, OverlappingInsertReplacesStaleEntry)
{
    // A fresh walk result that overlaps a cached extent without being
    // equal supersedes it: keeping both would make hits depend on
    // insertion order.
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 5000});
    btlb.insert(1, Extent{50, 100, 9000}); // overlaps [50,100)
    EXPECT_EQ(btlb.size(), 1u);
    EXPECT_EQ(btlb.overlap_evictions(), 1u);
    auto hit = btlb.lookup(1, 60);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->translate(60), 9010u); // the fresh mapping wins
    // The stale head [0,50) is gone with its entry.
    EXPECT_FALSE(btlb.lookup(1, 10).has_value());
}

TEST(Btlb, OverlappingInsertOtherFunctionUntouched)
{
    Btlb btlb(8);
    btlb.insert(1, Extent{0, 100, 5000});
    btlb.insert(2, Extent{50, 100, 9000});
    EXPECT_EQ(btlb.size(), 2u);
    EXPECT_EQ(btlb.overlap_evictions(), 0u);
}

TEST(BtlbSetAssoc, GeometryNormalisation)
{
    Btlb btlb(BtlbConfig{64, 16, 6});
    EXPECT_FALSE(btlb.fully_associative());
    EXPECT_EQ(btlb.sets(), 16u);
    EXPECT_EQ(btlb.ways(), 4u);
    EXPECT_EQ(btlb.capacity(), 64u);

    // Non-power-of-two geometry rounds down.
    btlb.configure(BtlbConfig{48, 6, 6});
    EXPECT_EQ(btlb.sets(), 4u);
    EXPECT_EQ(btlb.ways(), 8u); // bit_floor(48 / 4) = 8
    EXPECT_EQ(btlb.capacity(), 32u);
}

TEST(BtlbSetAssoc, HitAndIsolation)
{
    Btlb btlb(BtlbConfig{64, 16, 6});
    btlb.insert(1, Extent{100, 50, 9000}, 120);
    auto hit = btlb.lookup(1, 120);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->translate(120), 9020u);
    EXPECT_FALSE(btlb.lookup(2, 120).has_value());
}

TEST(BtlbSetAssoc, ProbeCostBoundedByWays)
{
    // O(1) lookup: tag comparisons per lookup never exceed the number
    // of ways, regardless of total capacity.
    Btlb btlb(BtlbConfig{256, 64, 0});
    for (std::uint64_t i = 0; i < 256; ++i)
        btlb.insert(1, Extent{i * 4, 4, i * 4}, i * 4);
    const std::uint64_t before = btlb.probes();
    const std::uint64_t lookups = 1000;
    for (std::uint64_t i = 0; i < lookups; ++i)
        (void)btlb.lookup(1, (i * 4) % 1024);
    const double per_lookup =
        static_cast<double>(btlb.probes() - before) / lookups;
    EXPECT_LE(per_lookup, static_cast<double>(btlb.ways()));
}

TEST(BtlbSetAssoc, PlruKeepsRecentlyUsedWay)
{
    // One set, 4 ways: fill it, keep touching entry A, insert two more
    // — A must survive every replacement decision.
    Btlb btlb(BtlbConfig{4, 1, 6});
    // sets=1 normalises to fully-associative mode per config contract;
    // use 2 sets with shift 0 so granule parity picks the set.
    btlb.configure(BtlbConfig{8, 2, 0});
    ASSERT_EQ(btlb.ways(), 4u);
    const Extent a{0, 2, 100};
    btlb.insert(1, a, 0);
    for (std::uint64_t v = 2; v <= 6; v += 2) {
        btlb.insert(1, Extent{v * 100, 2, v}, v * 100);
        ASSERT_TRUE(btlb.lookup(1, 0).has_value()); // touch A
    }
    // Set is full; two more inserts into A's set replace pLRU victims.
    btlb.insert(1, Extent{1000, 2, 50}, 1000);
    ASSERT_TRUE(btlb.lookup(1, 0).has_value());
    btlb.insert(1, Extent{2000, 2, 60}, 2000);
    EXPECT_TRUE(btlb.lookup(1, 0).has_value());
}

TEST(BtlbSetAssoc, OverlapReplacementWithinSet)
{
    Btlb btlb(BtlbConfig{64, 16, 6});
    btlb.insert(1, Extent{0, 32, 5000}, 0);
    btlb.insert(1, Extent{0, 32, 7000}, 0); // same granule, new pLBA
    EXPECT_EQ(btlb.overlap_evictions(), 1u);
    auto hit = btlb.lookup(1, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->translate(0), 7000u);
}

TEST(BtlbSetAssoc, FlushesWork)
{
    Btlb btlb(BtlbConfig{64, 16, 6});
    btlb.insert(1, Extent{0, 8, 100}, 0);
    btlb.insert(2, Extent{0, 8, 200}, 0);
    btlb.flush_function(1);
    EXPECT_FALSE(btlb.lookup(1, 0).has_value());
    EXPECT_TRUE(btlb.lookup(2, 0).has_value());
    EXPECT_EQ(btlb.function_flushes(), 1u);
    btlb.flush();
    EXPECT_EQ(btlb.size(), 0u);
}

TEST(BtlbSetAssoc, ReconfigureFlushesButKeepsStats)
{
    Btlb btlb(BtlbConfig{64, 16, 6});
    btlb.insert(1, Extent{0, 8, 100}, 0);
    ASSERT_TRUE(btlb.lookup(1, 0).has_value());
    const std::uint64_t hits = btlb.hits();
    btlb.configure(BtlbConfig{8, 0, 6}); // back to paper mode
    EXPECT_TRUE(btlb.fully_associative());
    EXPECT_EQ(btlb.size(), 0u);
    EXPECT_EQ(btlb.hits(), hits);
}

} // namespace
} // namespace nesc::ctrl
