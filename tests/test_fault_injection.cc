/**
 * @file
 * End-to-end fault-injection tests: media errors surfacing as
 * dedicated completion statuses, driver retry of transient faults,
 * extent-tree corruption contained to the offending VF, and
 * watchdog + function-level-reset recovery. Everything runs under a
 * fixed RNG seed, so the runs are deterministic.
 */
#include <gtest/gtest.h>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/faulty_block_device.h"
#include "storage/mem_block_device.h"

namespace nesc::ctrl {
namespace {

/** Bare-metal harness with a fault-injecting media layer. */
class FaultHarness {
  public:
    explicit FaultHarness(const storage::FaultPlan &plan)
        : host_memory_(32 << 20), inner_(inner_config()),
          faulty_(inner_, plan), irq_(sim_),
          controller_(sim_, host_memory_, faulty_, irq_,
                      controller_config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    inner_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 16 << 20;
        return cfg;
    }

    static ControllerConfig
    controller_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        return cfg;
    }

    pcie::FunctionId
    create_vf(const extent::ExtentList &extents, std::uint64_t size_blocks,
              pcie::FunctionId fn = 1)
    {
        auto image = extent::ExtentTreeImage::build(host_memory_, extents);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        EXPECT_TRUE(
            controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtExtentRoot,
                                    trees_.back().root(), 8)
                        .is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtDeviceSize, size_blocks, 8)
                        .is_ok());
        EXPECT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtCommand,
                                    static_cast<std::uint64_t>(
                                        MgmtCommand::kCreateVf),
                                    8)
                        .is_ok());
        EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
        return fn;
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn,
                const drv::FunctionDriverConfig &config = {})
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn, config);
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    /** Repoints @p fn's tree via the PF mgmt block. */
    void
    set_extent_root(pcie::FunctionId fn, pcie::HostAddr root)
    {
        ASSERT_TRUE(
            controller_.mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        ASSERT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtExtentRoot, root, 8)
                        .is_ok());
        ASSERT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtCommand,
                                    static_cast<std::uint64_t>(
                                        MgmtCommand::kSetExtentRoot),
                                    8)
                        .is_ok());
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice inner_;
    storage::FaultyBlockDevice faulty_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

// --- Media faults through the device layer --------------------------

TEST(FaultyBlockDeviceTest, DeterministicUnderFixedSeed)
{
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20});
    storage::FaultPlan plan;
    plan.seed = 42;
    plan.read_error_prob = 0.2;
    plan.transient_prob = 0.1;

    auto run = [&]() {
        storage::FaultyBlockDevice dev(inner, plan);
        std::vector<std::byte> buf(1024);
        std::string outcome;
        for (int i = 0; i < 64; ++i) {
            util::Status s = dev.read(0, buf);
            outcome.push_back(s.is_ok() ? '.' : '0' + static_cast<char>(
                                                           s.code()));
        }
        return outcome;
    };
    EXPECT_EQ(run(), run());
}

TEST(FaultyBlockDeviceTest, BadBlockRangeAlwaysFails)
{
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20});
    storage::FaultPlan plan;
    plan.bad_blocks.push_back({.first_block = 4, .nblocks = 2});
    storage::FaultyBlockDevice dev(inner, plan);

    std::vector<std::byte> buf(1024);
    EXPECT_TRUE(dev.read(0, buf).is_ok());
    EXPECT_EQ(dev.read(4 * 1024, buf).code(), util::ErrorCode::kDataLoss);
    EXPECT_EQ(dev.read(5 * 1024, buf).code(), util::ErrorCode::kDataLoss);
    EXPECT_TRUE(dev.read(6 * 1024, buf).is_ok());
    EXPECT_EQ(dev.write(4 * 1024, buf).code(), util::ErrorCode::kDataLoss);
    EXPECT_GE(dev.counters().get("bad_block_hits"), 3u);
}

TEST(FaultyBlockDeviceTest, ScheduledCorruptionFlipsOneBit)
{
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20});
    std::vector<std::byte> ref(1024, std::byte{0x55});
    ASSERT_TRUE(inner.write(0, ref).is_ok());

    storage::FaultPlan plan;
    plan.schedule.push_back({0, storage::InjectedFault::kCorrupt});
    storage::FaultyBlockDevice dev(inner, plan);

    std::vector<std::byte> got(1024);
    ASSERT_TRUE(dev.read(0, got).is_ok()); // silent: status is OK
    int flipped = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        auto x = std::to_integer<unsigned>(got[i] ^ ref[i]);
        while (x) {
            flipped += static_cast<int>(x & 1u);
            x >>= 1;
        }
    }
    EXPECT_EQ(flipped, 1);
    EXPECT_EQ(dev.counters().get("silent_corruptions"), 1u);

    // The next read is clean again (single-shot trigger).
    ASSERT_TRUE(dev.read(0, got).is_ok());
    EXPECT_EQ(got, ref);
}

// --- Controller status mapping + driver retry -----------------------

TEST(FaultyBlockDeviceTest, ScheduledStallDelaysOnlyThatOp)
{
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20,
                                      .read_bytes_per_sec = 0,
                                      .write_bytes_per_sec = 0,
                                      .access_latency = 1000});
    storage::FaultPlan plan;
    plan.stall_ns = 500'000;
    plan.schedule.push_back(
        {.op_index = 1, .kind = storage::InjectedFault::kStall});
    storage::FaultyBlockDevice dev(inner, plan);

    // Timing-op 0: clean. Timing-op 1: stalled. Timing-op 2: clean.
    EXPECT_EQ(dev.service_read(0, 0, 1024), 1000u);
    EXPECT_EQ(dev.service_write(2000, 0, 1024), 3000u + 500'000u);
    EXPECT_EQ(dev.service_read(600'000, 0, 1024), 601'000u);
    EXPECT_EQ(dev.counters().get("stall_faults"), 1u);
    EXPECT_EQ(dev.timing_ops_seen(), 3u);
}

TEST(FaultyBlockDeviceTest, RandomStallsAreDeterministicPerSeed)
{
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20,
                                      .read_bytes_per_sec = 0,
                                      .write_bytes_per_sec = 0,
                                      .access_latency = 0});
    storage::FaultPlan plan;
    plan.seed = 7;
    plan.stall_prob = 0.3;
    plan.stall_ns = 1000;

    auto run = [&]() {
        storage::FaultyBlockDevice dev(inner, plan);
        std::string outcome;
        for (int i = 0; i < 64; ++i)
            outcome.push_back(
                dev.service_read(0, 0, 1024) > 0 ? 'S' : '.');
        return outcome;
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(a.find('S'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultyBlockDeviceTest, StallStreamDoesNotPerturbFunctionalDraws)
{
    // The error pattern of a seeded plan must be bit-identical whether
    // or not stalls are enabled: stalls draw from their own RNG.
    storage::MemBlockDevice inner(
        storage::MemBlockDeviceConfig{.capacity_bytes = 1 << 20});
    storage::FaultPlan plan;
    plan.seed = 42;
    plan.read_error_prob = 0.2;
    plan.transient_prob = 0.1;

    auto run = [&](double stall_prob) {
        storage::FaultPlan p = plan;
        p.stall_prob = stall_prob;
        storage::FaultyBlockDevice dev(inner, p);
        std::vector<std::byte> buf(1024);
        std::string outcome;
        for (int i = 0; i < 64; ++i) {
            // Interleave timing ops so their draws would shift the
            // functional stream if the RNGs were shared.
            (void)dev.service_read(0, 0, 1024);
            util::Status s = dev.read(0, buf);
            outcome.push_back(s.is_ok() ? '.' : 'E');
        }
        return outcome;
    };
    EXPECT_EQ(run(0.0), run(0.9));
}

TEST(FaultInjectionTest, TransientReadErrorRetriedToSuccess)
{
    storage::FaultPlan plan;
    plan.seed = 42;
    // First media op is the VF's read: fail it transiently, once.
    plan.schedule.push_back({0, storage::InjectedFault::kTransient});
    FaultHarness h(plan);
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    auto driver = h.make_driver(fn);

    std::vector<std::byte> data(1024, std::byte{0x77});
    ASSERT_TRUE(h.inner_.write(1000 * 1024, data).is_ok());

    std::vector<std::byte> buf(1024);
    EXPECT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(buf, data);
    EXPECT_EQ(driver->retries(), 1u);
    EXPECT_EQ(h.controller_.counters().get("media_read_errors"), 1u);
    EXPECT_EQ(h.controller_.stats(fn).media_errors, 1u);
    EXPECT_EQ(h.faulty_.counters().get("transient_faults"), 1u);
}

TEST(FaultInjectionTest, HardReadErrorSurfacesAfterRetriesExhausted)
{
    storage::FaultPlan plan;
    plan.bad_blocks.push_back({.first_block = 1000, .nblocks = 4});
    FaultHarness h(plan);
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    auto driver = h.make_driver(fn);

    std::vector<std::byte> buf(1024);
    util::Status status = driver->read_sync(0, 1, buf);
    EXPECT_FALSE(status.is_ok());
    // Default config: 3 retries, all hitting the grown defect.
    EXPECT_EQ(driver->retries(), 3u);
    EXPECT_EQ(h.controller_.counters().get("media_read_errors"), 4u);
}

TEST(FaultInjectionTest, HardWriteErrorSurfaces)
{
    storage::FaultPlan plan;
    plan.bad_blocks.push_back({.first_block = 1002, .nblocks = 1});
    FaultHarness h(plan);
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    auto driver = h.make_driver(fn);

    std::vector<std::byte> data(1024, std::byte{0x11});
    EXPECT_FALSE(driver->write_sync(2, 1, data).is_ok());
    EXPECT_GE(h.controller_.counters().get("media_write_errors"), 1u);
    // An unaffected block still writes fine.
    EXPECT_TRUE(driver->write_sync(0, 1, data).is_ok());
}

// --- Extent-tree corruption containment -----------------------------

TEST(FaultInjectionTest, CorruptTreeNodeFaultsOnlyOffendingVf)
{
    storage::FaultPlan plan;
    FaultHarness h(plan);
    const auto vf1 = h.create_vf({{0, 32, 1000}}, 32, 1);
    const auto vf2 = h.create_vf({{0, 32, 2000}}, 32, 2);
    auto d1 = h.make_driver(vf1);
    auto d2 = h.make_driver(vf2);

    // Poison DMA reads of VF1's root node: zero the header magic.
    const pcie::HostAddr bad_node = h.trees_[0].root();
    h.controller_.dma().set_read_fault_hook(
        [bad_node](pcie::HostAddr addr, std::vector<std::byte> &data,
                   util::Status &status) {
            (void)status;
            if (addr == bad_node && data.size() >= 2)
                data[0] = data[1] = std::byte{0};
        });

    bool vf1_completed = false;
    CompletionStatus vf1_status = CompletionStatus::kOk;
    auto buffer = h.host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(d1->submit(Opcode::kRead, 0, 1, *buffer,
                           [&](CompletionStatus s) {
                               vf1_completed = true;
                               vf1_status = s;
                           })
                    .is_ok());
    h.sim_.run_until_idle();

    // VF1 is faulted with the corruption latched; no completion.
    EXPECT_FALSE(vf1_completed);
    EXPECT_EQ(h.controller_.fault_kind(vf1), FaultKind::kTreeCorrupt);
    EXPECT_EQ(*h.controller_.mmio_read(vf1, reg::kFaultKind, 8),
              static_cast<std::uint64_t>(FaultKind::kTreeCorrupt));
    EXPECT_EQ(h.controller_.counters().get("tree_corrupt_faults"), 1u);

    // VF2's concurrent I/O is unperturbed.
    std::vector<std::byte> data(1024, std::byte{0xab}), back(1024);
    ASSERT_TRUE(d2->write_sync(0, 1, data).is_ok());
    ASSERT_TRUE(d2->read_sync(0, 1, back).is_ok());
    EXPECT_EQ(back, data);
    EXPECT_EQ(h.controller_.fault_kind(vf2), FaultKind::kNone);

    // Hypervisor-style recovery: clear the poison, hand VF1 a fresh
    // tree through the mgmt block, and rewalk — the parked read
    // completes OK.
    h.controller_.dma().set_read_fault_hook(nullptr);
    auto fresh = extent::ExtentTreeImage::build(h.host_memory_,
                                                {{0, 32, 1000}});
    ASSERT_TRUE(fresh.is_ok());
    h.set_extent_root(vf1, fresh->root());
    ASSERT_TRUE(
        h.controller_.mmio_write(vf1, reg::kRewalkTree, 1, 4).is_ok());
    h.sim_.run_until_idle();
    EXPECT_TRUE(vf1_completed);
    EXPECT_EQ(vf1_status, CompletionStatus::kOk);
}

// --- Watchdog + function-level reset --------------------------------

TEST(FaultInjectionTest, WatchdogAbortsAndFlrRecoversWedgedVf)
{
    storage::FaultPlan plan;
    FaultHarness h(plan);
    // Mapping covers blocks 0..7 of a 32-block virtual disk; there is
    // no hypervisor in this harness, so an unmapped write wedges the
    // VF until something aborts it.
    const auto fn = h.create_vf({{0, 8, 1000}}, 32);
    drv::FunctionDriverConfig dcfg;
    dcfg.request_timeout = 2'000'000; // 2 ms driver-side watchdog
    dcfg.max_flr_recoveries = 1;
    auto driver = h.make_driver(fn, dcfg);
    ASSERT_TRUE(
        driver->reg_write(reg::kWatchdogNs, 500'000).is_ok()); // 0.5 ms

    bool completed = false;
    CompletionStatus status = CompletionStatus::kOk;
    auto buffer = h.host_memory_.alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 20, 1, *buffer,
                             [&](CompletionStatus s) {
                                 completed = true;
                                 status = s;
                             })
                    .is_ok());
    h.sim_.run_until_idle();

    // Sequence: device watchdog aborts the wedged write (kAborted) ->
    // driver FLR #1 + resubmit -> wedges again -> device watchdog is
    // disarmed by the reset, so the driver request timeout fires ->
    // FLR #2 -> request over its FLR budget -> surfaced kAborted.
    EXPECT_TRUE(completed);
    EXPECT_EQ(status, CompletionStatus::kAborted);
    EXPECT_EQ(h.controller_.stats(fn).fn_resets, 2u);
    EXPECT_EQ(driver->flr_recoveries(), 2u);
    EXPECT_GE(h.controller_.stats(fn).aborted_ops, 1u);
    EXPECT_EQ(h.controller_.fault_kind(fn), FaultKind::kNone);

    // The function came back clean: mapped I/O succeeds afterwards.
    std::vector<std::byte> data(1024, std::byte{0xcd}), back(1024);
    EXPECT_TRUE(driver->write_sync(0, 1, data).is_ok());
    EXPECT_TRUE(driver->read_sync(0, 1, back).is_ok());
    EXPECT_EQ(back, data);
}

} // namespace
} // namespace nesc::ctrl
