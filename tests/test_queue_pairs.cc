/**
 * @file
 * Queue-pair plane tests: the kQp* admin block (create/delete, quota
 * enforcement, PF-programmed quotas), the per-queue doorbell aperture
 * (dead-doorbell accounting), multi-queue data-path integrity, and
 * teardown paths — delete with in-flight commands, function-level
 * reset, quarantine, and VF delete with multiple live queues.
 */
#include <gtest/gtest.h>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "workloads/dd.h"

namespace nesc::ctrl {
namespace {

class QueuePairTest : public ::testing::Test {
  protected:
    QueuePairTest()
        : host_memory_(32 << 20), device_(device_config()), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_,
                      controller_config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    device_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 16 << 20;
        return cfg;
    }

    static ControllerConfig
    controller_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        return cfg;
    }

    pcie::FunctionId
    create_vf(std::uint64_t plba_base, std::uint64_t size_blocks,
              pcie::FunctionId fn = 1)
    {
        auto image = extent::ExtentTreeImage::build(
            host_memory_, {{0, size_blocks, plba_base}});
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        mgmt(reg::kMgmtVfId, fn);
        mgmt(reg::kMgmtExtentRoot, trees_.back().root());
        mgmt(reg::kMgmtDeviceSize, size_blocks);
        mgmt(reg::kMgmtCommand,
             static_cast<std::uint64_t>(MgmtCommand::kCreateVf));
        EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
        return fn;
    }

    void
    mgmt(std::uint64_t offset, std::uint64_t value)
    {
        ASSERT_TRUE(controller_.mmio_write(0, offset, value, 8).is_ok());
    }

    void
    set_qp_quota(pcie::FunctionId fn, std::uint32_t quota,
                 MgmtStatus expect = MgmtStatus::kOk)
    {
        mgmt(reg::kMgmtVfId, fn);
        mgmt(reg::kMgmtQpQuota, quota);
        mgmt(reg::kMgmtCommand,
             static_cast<std::uint64_t>(MgmtCommand::kSetQpQuota));
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(expect));
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn, std::uint32_t queue_pairs = 1)
    {
        drv::FunctionDriverConfig cfg;
        cfg.queue_pairs = queue_pairs;
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn, cfg);
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    /** Runs the admin create/delete sequence for @p qid on @p fn. */
    MgmtStatus
    qp_admin(pcie::FunctionId fn, std::uint64_t qid, QpCommand cmd,
             pcie::HostAddr sq = pcie::kNullHostAddr,
             pcie::HostAddr cq = pcie::kNullHostAddr)
    {
        EXPECT_TRUE(
            controller_.mmio_write(fn, reg::kQpSelect, qid, 8).is_ok());
        if (cmd == QpCommand::kCreate) {
            EXPECT_TRUE(
                controller_.mmio_write(fn, reg::kQpSqBase, sq, 8).is_ok());
            EXPECT_TRUE(
                controller_.mmio_write(fn, reg::kQpCqBase, cq, 8).is_ok());
        }
        EXPECT_TRUE(controller_
                        .mmio_write(fn, reg::kQpCommand,
                                    static_cast<std::uint64_t>(cmd), 8)
                        .is_ok());
        return static_cast<MgmtStatus>(
            *controller_.mmio_read(fn, reg::kQpStatus, 8));
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

// --- Admin block -----------------------------------------------------------

TEST_F(QueuePairTest, EveryFunctionBootsWithPairZero)
{
    EXPECT_EQ(controller_.queue_pair_count(0), 1u);
    const auto fn = create_vf(1000, 64);
    EXPECT_EQ(controller_.queue_pair_count(fn), 1u);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpCount, 8), 1u);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpQuota, 8), 1u);
}

TEST_F(QueuePairTest, CreateBeyondQuotaBounces)
{
    const auto fn = create_vf(1000, 64);
    auto mem = host_memory_.alloc(1 << 16, 64);
    ASSERT_TRUE(mem.is_ok());
    auto sq = pcie::HostRing::create(host_memory_, mem.value(), 16,
                                     sizeof(CommandRecord));
    auto cq = pcie::HostRing::create(host_memory_, mem.value() + 32768,
                                     16, sizeof(CompletionRecord));
    ASSERT_TRUE(sq.is_ok() && cq.is_ok());
    // Reset quota is 1: pair 1 must bounce until the PF raises it.
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kCreate, mem.value(),
                       mem.value() + 32768),
              MgmtStatus::kError);
    set_qp_quota(fn, 2);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpQuota, 8), 2u);
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kCreate, mem.value(),
                       mem.value() + 32768),
              MgmtStatus::kOk);
    EXPECT_EQ(controller_.queue_pair_count(fn), 2u);
    // Same qid twice, qid 0, and out-of-range qids all bounce.
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kCreate, mem.value(),
                       mem.value() + 32768),
              MgmtStatus::kError);
    EXPECT_EQ(qp_admin(fn, 0, QpCommand::kCreate, mem.value(),
                       mem.value() + 32768),
              MgmtStatus::kError);
    EXPECT_EQ(qp_admin(fn, kMaxQueuePairs, QpCommand::kCreate,
                       mem.value(), mem.value() + 32768),
              MgmtStatus::kError);
    // Deleting pair 0 bounces; deleting pair 1 works and is final.
    EXPECT_EQ(qp_admin(fn, 0, QpCommand::kDelete), MgmtStatus::kError);
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kDelete), MgmtStatus::kOk);
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kDelete), MgmtStatus::kError);
    EXPECT_EQ(controller_.queue_pair_count(fn), 1u);
}

TEST_F(QueuePairTest, QuotaValidationAndPfOnly)
{
    const auto fn = create_vf(1000, 64);
    set_qp_quota(fn, 0, MgmtStatus::kError);
    set_qp_quota(fn, kMaxQueuePairs + 1, MgmtStatus::kError);
    set_qp_quota(fn, kMaxQueuePairs);
    // The staging register itself is PF-only.
    EXPECT_EQ(
        controller_.mmio_write(fn, reg::kMgmtQpQuota, 4, 8).code(),
        util::ErrorCode::kPermissionDenied);
}

TEST_F(QueuePairTest, DeadDoorbellIsSwallowedAndCounted)
{
    const auto fn = create_vf(1000, 64);
    // Posted writes to doorbells of absent pairs are dropped, counted,
    // and never fault the function.
    EXPECT_TRUE(controller_
                    .mmio_write(fn, reg::kQpDoorbell0 + 8 * 3, 1, 8)
                    .is_ok());
    EXPECT_TRUE(controller_
                    .mmio_write(fn, reg::kQpDoorbell0 + 8 * 3, 1, 8)
                    .is_ok());
    EXPECT_EQ(controller_.stats(fn).dead_doorbells, 2u);
    EXPECT_TRUE(controller_.is_active(fn));
    EXPECT_EQ(controller_.stats(fn).quarantines, 0u);
}

// --- Data path -------------------------------------------------------------

TEST_F(QueuePairTest, MultiQueueRoundTripStripesAcrossPairs)
{
    const auto fn = create_vf(1000, 256);
    set_qp_quota(fn, 4);
    auto driver = make_driver(fn, 4);
    EXPECT_EQ(controller_.queue_pair_count(fn), 4u);

    std::vector<std::byte> out(16 * kDeviceBlockSize);
    std::vector<std::byte> in(16 * kDeviceBlockSize);
    wl::fill_pattern(7, 0, out);
    ASSERT_TRUE(driver->write_sync(0, 16, out).is_ok());
    ASSERT_TRUE(driver->read_sync(0, 16, in).is_ok());
    EXPECT_EQ(out, in);

    // 16 blocks = 4 chunks per direction, striped one per pair.
    for (std::uint16_t qid = 0; qid < 4; ++qid) {
        const QueuePairStats *stats =
            controller_.queue_pair_stats(fn, qid);
        ASSERT_NE(stats, nullptr);
        EXPECT_EQ(stats->commands, 2u) << "qid " << qid;
        EXPECT_EQ(stats->completions, 2u) << "qid " << qid;
        EXPECT_GE(stats->doorbells, 2u) << "qid " << qid;
    }
    EXPECT_EQ(controller_.stats(fn).blocks_written, 16u);
    EXPECT_EQ(controller_.stats(fn).blocks_read, 16u);
}

TEST_F(QueuePairTest, SingleQueueDriverUnchanged)
{
    const auto fn = create_vf(1000, 256);
    auto driver = make_driver(fn, 1);
    std::vector<std::byte> out(8 * kDeviceBlockSize);
    std::vector<std::byte> in(8 * kDeviceBlockSize);
    wl::fill_pattern(3, 0, out);
    ASSERT_TRUE(driver->write_sync(0, 8, out).is_ok());
    ASSERT_TRUE(driver->read_sync(0, 8, in).is_ok());
    EXPECT_EQ(out, in);
    const QueuePairStats *stats = controller_.queue_pair_stats(fn, 0);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->commands, 4u);
    EXPECT_EQ(controller_.queue_pair_stats(fn, 1), nullptr);
}

// --- Teardown --------------------------------------------------------------

TEST_F(QueuePairTest, DeleteQueueAbortsItsInflightCommands)
{
    const auto fn = create_vf(1000, 256);
    set_qp_quota(fn, 2);
    auto driver = make_driver(fn, 2);

    // Queue async work striped across both pairs, then delete pair 1
    // before the device drains it.
    auto buffer = host_memory_.alloc(4 * kDeviceBlockSize, 64);
    ASSERT_TRUE(buffer.is_ok());
    std::uint64_t completions = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
        ASSERT_TRUE(driver
                        ->submit(Opcode::kRead, 4ull * i, 4,
                                 buffer.value(),
                                 [&completions](CompletionStatus) {
                                     ++completions;
                                 })
                        .is_ok());
    }
    EXPECT_EQ(qp_admin(fn, 1, QpCommand::kDelete), MgmtStatus::kOk);
    EXPECT_EQ(controller_.queue_pair_count(fn), 1u);
    while (sim_.step()) {
    }
    // Pair 0's chunks complete; pair 1's died with the queue (their
    // kAborted completions had nowhere to land).
    EXPECT_GT(controller_.stats(fn).aborted_ops, 0u);
    EXPECT_LT(completions, 8u);
    EXPECT_GT(completions, 0u);
}

TEST_F(QueuePairTest, FnResetTearsDownExtraPairs)
{
    const auto fn = create_vf(1000, 256);
    set_qp_quota(fn, 4);
    auto driver = make_driver(fn, 4);
    EXPECT_EQ(controller_.queue_pair_count(fn), 4u);
    ASSERT_TRUE(
        controller_.mmio_write(fn, reg::kFnReset, 1, 8).is_ok());
    // Extra pairs are gone, pair 0 survives (cleared), quota survives.
    EXPECT_EQ(controller_.queue_pair_count(fn), 1u);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpQuota, 8), 4u);
    // Doorbells on the torn-down pairs are now dead doorbells.
    ASSERT_TRUE(controller_
                    .mmio_write(fn, reg::kQpDoorbell0 + 8 * 2, 1, 8)
                    .is_ok());
    EXPECT_EQ(controller_.stats(fn).dead_doorbells, 1u);
}

TEST_F(QueuePairTest, DeleteVfWithLiveQueues)
{
    const auto fn = create_vf(1000, 256);
    set_qp_quota(fn, 4);
    auto driver = make_driver(fn, 4);
    EXPECT_EQ(controller_.queue_pair_count(fn), 4u);
    mgmt(reg::kMgmtVfId, fn);
    mgmt(reg::kMgmtCommand,
         static_cast<std::uint64_t>(MgmtCommand::kDeleteVf));
    ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
              static_cast<std::uint64_t>(MgmtStatus::kOk));
    EXPECT_FALSE(controller_.is_active(fn));
    EXPECT_EQ(controller_.queue_pair_count(fn), 0u);
    // Doorbells on a dead function are rejected outright (not merely
    // swallowed): the function no longer decodes.
    EXPECT_FALSE(
        controller_.mmio_write(fn, reg::kQpDoorbell0 + 8, 1, 8).is_ok());
}

TEST_F(QueuePairTest, QuarantineDrainsAllPairs)
{
    const auto fn = create_vf(1000, 256);
    set_qp_quota(fn, 2);
    auto driver = make_driver(fn, 2);

    // Trash pair 0's SQ header, then storm the doorbell past the
    // quarantine threshold. The quarantine must drain *both* pairs'
    // staging and stay latched for later doorbells on either pair.
    const std::uint64_t sq_base =
        *controller_.mmio_read(fn, reg::kCmdRingBase, 8);
    auto header = host_memory_.read_pod<pcie::HostRing::Header>(sq_base);
    ASSERT_TRUE(header.is_ok());
    pcie::HostRing::Header h = header.value();
    h.magic = 0xdeadbeef;
    ASSERT_TRUE(host_memory_.write_pod(sq_base, h).is_ok());
    for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(
            controller_.mmio_write(fn, reg::kDoorbell, 1, 8).is_ok());
        while (sim_.step()) {
        }
        if (controller_.quarantined(fn))
            break;
    }
    ASSERT_TRUE(controller_.quarantined(fn));
    EXPECT_EQ(controller_.queue_pair_count(fn), 2u);
    // Doorbells on both the legacy alias and pair 1's slot are ignored.
    ASSERT_TRUE(
        controller_.mmio_write(fn, reg::kDoorbell, 1, 8).is_ok());
    ASSERT_TRUE(controller_
                    .mmio_write(fn, reg::kQpDoorbell0 + 8, 1, 8)
                    .is_ok());
    EXPECT_GE(controller_.stats(fn).doorbells_ignored, 2u);
}

// --- Register surface ------------------------------------------------------

TEST_F(QueuePairTest, LegacyRegistersAliasPairZero)
{
    const auto fn = create_vf(1000, 64);
    auto driver = make_driver(fn, 1);
    const std::uint64_t legacy_sq =
        *controller_.mmio_read(fn, reg::kCmdRingBase, 8);
    ASSERT_TRUE(
        controller_.mmio_write(fn, reg::kQpSelect, 0, 8).is_ok());
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpSqBase, 8), legacy_sq);
    const std::uint64_t legacy_cq =
        *controller_.mmio_read(fn, reg::kCompRingBase, 8);
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpCqBase, 8), legacy_cq);
}

TEST_F(QueuePairTest, QpReadsOfAbsentPairMasterAbort)
{
    const auto fn = create_vf(1000, 64);
    ASSERT_TRUE(
        controller_.mmio_write(fn, reg::kQpSelect, 5, 8).is_ok());
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpSqBase, 8),
              ~std::uint64_t{0});
    EXPECT_EQ(*controller_.mmio_read(fn, reg::kQpCqBase, 8),
              ~std::uint64_t{0});
}

} // namespace
} // namespace nesc::ctrl
