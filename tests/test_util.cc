/**
 * @file
 * Unit tests for the util module: Status/Result, units, Rng, stats,
 * Table.
 */
#include <gtest/gtest.h>

#include "nesc/controller.h"
#include "pcie/interrupts.h"
#include "storage/mem_block_device.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/units.h"

namespace nesc::util {
namespace {

// --- Status / Result --------------------------------------------------

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.is_ok());
    EXPECT_EQ(s.code(), ErrorCode::kOk);
    EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage)
{
    Status s = not_found_error("missing thing");
    EXPECT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), ErrorCode::kNotFound);
    EXPECT_EQ(s.message(), "missing thing");
    EXPECT_EQ(s.to_string(), "NOT_FOUND: missing thing");
}

TEST(Status, AllFactoriesProduceDistinctCodes)
{
    EXPECT_EQ(invalid_argument_error("").code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(out_of_range_error("").code(), ErrorCode::kOutOfRange);
    EXPECT_EQ(already_exists_error("").code(), ErrorCode::kAlreadyExists);
    EXPECT_EQ(permission_denied_error("").code(),
              ErrorCode::kPermissionDenied);
    EXPECT_EQ(resource_exhausted_error("").code(),
              ErrorCode::kResourceExhausted);
    EXPECT_EQ(failed_precondition_error("").code(),
              ErrorCode::kFailedPrecondition);
    EXPECT_EQ(unavailable_error("").code(), ErrorCode::kUnavailable);
    EXPECT_EQ(data_loss_error("").code(), ErrorCode::kDataLoss);
    EXPECT_EQ(unimplemented_error("").code(), ErrorCode::kUnimplemented);
    EXPECT_EQ(internal_error("").code(), ErrorCode::kInternal);
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError)
{
    Result<int> r = not_found_error("nope");
    EXPECT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
    EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyTypes)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
    ASSERT_TRUE(r.is_ok());
    std::unique_ptr<int> owned = std::move(r).value();
    EXPECT_EQ(*owned, 5);
}

util::Result<int>
helper_propagates(bool fail)
{
    NESC_ASSIGN_OR_RETURN(
        int v, fail ? Result<int>(internal_error("boom")) : Result<int>(2));
    return v * 10;
}

TEST(Result, AssignOrReturnMacro)
{
    EXPECT_EQ(*helper_propagates(false), 20);
    EXPECT_EQ(helper_propagates(true).status().code(),
              ErrorCode::kInternal);
}

// --- Units ------------------------------------------------------------

TEST(Units, TransferTime)
{
    EXPECT_EQ(transfer_time_ns(0, 1000), 0u);
    EXPECT_EQ(transfer_time_ns(1000, 0), 0u); // infinitely fast
    EXPECT_EQ(transfer_time_ns(1'000'000'000, 1'000'000'000), kNsPerSec);
    // Rounds up.
    EXPECT_EQ(transfer_time_ns(1, 1'000'000'000), 1u);
}

TEST(Units, TransferTimeLargeNoOverflow)
{
    // 1 TiB at 1 GB/s ~ 1100 seconds; must not overflow.
    const std::uint64_t t =
        transfer_time_ns(1ULL << 40, 1'000'000'000ULL);
    EXPECT_NEAR(static_cast<double>(t) / kNsPerSec, 1099.5, 0.5);
}

TEST(Units, Bandwidth)
{
    EXPECT_DOUBLE_EQ(bandwidth_mb_per_sec(1'000'000, kNsPerSec), 1.0);
    EXPECT_DOUBLE_EQ(bandwidth_mb_per_sec(123, 0), 0.0);
}

TEST(Units, Rounding)
{
    EXPECT_EQ(ceil_div(10, 3), 4u);
    EXPECT_EQ(ceil_div(9, 3), 3u);
    EXPECT_EQ(round_up(10, 8), 16u);
    EXPECT_EQ(round_up(16, 8), 16u);
    EXPECT_EQ(round_down(15, 8), 8u);
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(4096));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(24));
}

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicPerSeed)
{
    Rng a(1), b(1), c(2);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextInInclusiveRange)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.next_in(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(6);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.zipf(1000, 0.99);
        EXPECT_LT(v, 1000u);
        if (v < 10)
            ++low;
        if (v >= 500)
            ++high;
    }
    EXPECT_GT(low, high); // rank-0..9 far more popular than the tail
}

TEST(Rng, ZipfZeroAndOneItems)
{
    Rng rng(7);
    EXPECT_EQ(rng.zipf(1, 0.99), 0u);
    EXPECT_EQ(rng.zipf(0, 0.99), 0u);
}

// --- Stats -------------------------------------------------------------

TEST(Summary, Empty)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, Basics)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9); // classic example: sigma = 2
}

TEST(Sampler, Percentiles)
{
    Sampler s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Sampler, EmptyReturnsZero)
{
    Sampler s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Sampler, InterleavedAddAndQuery)
{
    Sampler s;
    s.add(10);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(20);
    s.add(30);
    EXPECT_DOUBLE_EQ(s.median(), 20.0);
}

TEST(CounterGroup, AutoCreatesAtZero)
{
    CounterGroup g;
    EXPECT_EQ(g.get("nothing"), 0u);
    g["hits"] += 3;
    g["hits"] += 2;
    EXPECT_EQ(g.get("hits"), 5u);
    EXPECT_EQ(g.to_string(), "hits=5");
}

// --- Table --------------------------------------------------------------

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row().add("x").add(std::uint64_t{1});
    t.row().add("longer").add(2.5, 1);
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().add(std::uint64_t{1}).add(std::uint64_t{2});
    EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

// --- Logging ------------------------------------------------------------

/** Resets global log state around each logging test. */
class LogTest : public ::testing::Test {
  protected:
    LogTest()
    {
        set_log_level(LogLevel::kWarn);
        clear_component_log_levels();
    }
    ~LogTest() override
    {
        set_log_level(LogLevel::kWarn);
        clear_component_log_levels();
    }
};

TEST_F(LogTest, SinkCapturesEmittedRecords)
{
    ScopedLogSink sink;
    log_at(LogLevel::kWarn, "widget", "thing %d broke", 7);
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].level, LogLevel::kWarn);
    EXPECT_EQ(sink.records()[0].component, "widget");
    EXPECT_EQ(sink.records()[0].message, "thing 7 broke");
    EXPECT_TRUE(sink.contains("7 broke"));
    EXPECT_FALSE(sink.contains("fine"));
}

TEST_F(LogTest, GlobalThresholdFilters)
{
    ScopedLogSink sink;
    log_at(LogLevel::kInfo, "widget", "chatty"); // below kWarn
    EXPECT_TRUE(sink.records().empty());
    set_log_level(LogLevel::kDebug);
    log_at(LogLevel::kInfo, "widget", "chatty");
    EXPECT_EQ(sink.records().size(), 1u);
}

TEST_F(LogTest, PerComponentOverridesBeatTheGlobalLevel)
{
    ScopedLogSink sink;
    set_component_log_level("noisy", LogLevel::kDebug);
    set_component_log_level("muted", LogLevel::kOff);
    log_at(LogLevel::kDebug, "noisy", "verbose detail");
    log_at(LogLevel::kError, "muted", "never seen");
    log_at(LogLevel::kInfo, "other", "below global warn");
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].component, "noisy");
    EXPECT_EQ(log_level_for("noisy"), LogLevel::kDebug);
    EXPECT_EQ(log_level_for("other"), LogLevel::kWarn);
    clear_component_log_levels();
    EXPECT_EQ(log_level_for("muted"), LogLevel::kWarn);
}

TEST_F(LogTest, ApplyLogSpecParsesTheEnvFormat)
{
    EXPECT_TRUE(apply_log_spec("debug"));
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    EXPECT_TRUE(apply_log_spec("warn,controller=info,dma=off"));
    EXPECT_EQ(log_level(), LogLevel::kWarn);
    EXPECT_EQ(log_level_for("controller"), LogLevel::kInfo);
    EXPECT_EQ(log_level_for("dma"), LogLevel::kOff);
    // Malformed entries report failure but good ones still apply.
    EXPECT_FALSE(apply_log_spec("bogus-level"));
    EXPECT_FALSE(apply_log_spec("controller=warp,fs=error"));
    EXPECT_EQ(log_level_for("fs"), LogLevel::kError);
    EXPECT_FALSE(apply_log_spec("=debug"));
}

TEST_F(LogTest, ControllerWarnPathIsObservableThroughTheSink)
{
    // A doorbell with no command ring programmed must produce the
    // controller's warn diagnostic, tagged with its component.
    sim::Simulator sim;
    pcie::HostMemory host_memory(8 << 20);
    storage::MemBlockDeviceConfig device_config;
    device_config.capacity_bytes = 4 << 20;
    storage::MemBlockDevice device(device_config);
    pcie::InterruptController irq(sim);
    ctrl::Controller controller(sim, host_memory, device, irq,
                                ctrl::ControllerConfig{});
    ScopedLogSink sink;
    ASSERT_TRUE(
        controller.mmio_write(0, ctrl::reg::kDoorbell, 1, 8).is_ok());
    sim.run_until_idle();
    EXPECT_TRUE(sink.contains("doorbell with no command ring"));
    ASSERT_FALSE(sink.records().empty());
    EXPECT_EQ(sink.records()[0].component, "controller");
    EXPECT_EQ(sink.records()[0].level, LogLevel::kWarn);
}

} // namespace
} // namespace nesc::util
