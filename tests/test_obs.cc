/**
 * @file
 * Unit tests for the observability layer: Tracer (ring, wrap, exact
 * stage totals, Chrome JSON export), MetricsRegistry (interned
 * handles, scoping, compat shims, JSON snapshot), LogHistogram, the
 * PF-only telemetry MMIO registers, and PfDriver::dump_telemetry().
 */
#include <gtest/gtest.h>

#include "nesc/telemetry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

// --- Tracer -----------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing)
{
    obs::Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.span(obs::Stage::kTransfer, 1, 100, 200);
    tracer.instant(obs::Stage::kDoorbell, 1, 100);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.capacity(), 0u); // no ring until enable()
    EXPECT_EQ(tracer.totals(obs::Stage::kTransfer).count, 0u);
}

TEST(Tracer, RecordsSpansAndInstants)
{
    obs::Tracer tracer;
    tracer.enable(16);
    tracer.span(obs::Stage::kTransfer, 2, 100, 350, 7, 42);
    tracer.instant(obs::Stage::kComplete, 2, 350, 7);
    ASSERT_EQ(tracer.size(), 2u);
    const auto events = tracer.events();
    EXPECT_EQ(events[0].stage, obs::Stage::kTransfer);
    EXPECT_EQ(events[0].start, 100u);
    EXPECT_EQ(events[0].dur, 250u);
    EXPECT_EQ(events[0].fn, 2u);
    EXPECT_EQ(events[0].tag, 7u);
    EXPECT_EQ(events[0].aux, 42u);
    EXPECT_EQ(events[1].stage, obs::Stage::kComplete);
    EXPECT_EQ(events[1].dur, 0u); // instant
}

TEST(Tracer, RingWrapKeepsTotalsExact)
{
    obs::Tracer tracer;
    tracer.enable(8);
    for (std::uint64_t i = 0; i < 20; ++i)
        tracer.span(obs::Stage::kWalk, 1, i * 10, i * 10 + 5);
    EXPECT_EQ(tracer.recorded(), 20u);
    EXPECT_EQ(tracer.dropped(), 12u);
    EXPECT_EQ(tracer.size(), 8u); // ring holds only the tail
    // Retained events are the latest 8, in chronological order.
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].start, events[i].start);
    EXPECT_EQ(events.back().start, 190u);
    // Totals aggregate at record time, so wrap does not lose them.
    const obs::StageTotals &totals = tracer.totals(obs::Stage::kWalk);
    EXPECT_EQ(totals.count, 20u);
    EXPECT_EQ(totals.total_ns, 20u * 5u);
}

TEST(Tracer, ReenableResetsState)
{
    obs::Tracer tracer;
    tracer.enable(8);
    tracer.span(obs::Stage::kWalk, 1, 0, 5);
    tracer.disable();
    EXPECT_FALSE(tracer.enabled());
    EXPECT_EQ(tracer.size(), 1u); // readable after disable
    tracer.enable(8);
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.totals(obs::Stage::kWalk).count, 0u);
}

TEST(Tracer, ChromeJsonShapeAndTracks)
{
    obs::Tracer tracer;
    tracer.enable(16);
    tracer.span(obs::Stage::kTransfer, 1, 2000, 3000, 5);
    tracer.span(obs::Stage::kLink, obs::kLinkTrack, 2100, 2500, 0, 4096);
    tracer.instant(obs::Stage::kDoorbell, 0, 1000);
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // One metadata track per function seen, with stable names.
    EXPECT_NE(json.find("fn0 (PF)"), std::string::npos);
    EXPECT_NE(json.find("fn1"), std::string::npos);
    EXPECT_NE(json.find("pcie-link"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    // Events are emitted sorted by start time (Perfetto-friendly).
    const std::size_t doorbell = json.find("\"doorbell\"");
    const std::size_t transfer = json.find("\"transfer\"");
    ASSERT_NE(doorbell, std::string::npos);
    ASSERT_NE(transfer, std::string::npos);
}

TEST(Tracer, StageNamesAreStable)
{
    EXPECT_STREQ(obs::stage_name(obs::Stage::kQueueWait), "queue_wait");
    EXPECT_STREQ(obs::stage_name(obs::Stage::kTranslate), "translate");
    EXPECT_STREQ(obs::stage_name(obs::Stage::kTransfer), "transfer");
    EXPECT_STREQ(obs::stage_name(obs::Stage::kLink), "link");
}

TEST(Tracer, FlameSummaryListsRecordedStages)
{
    obs::Tracer tracer;
    tracer.enable(8);
    tracer.span(obs::Stage::kTranslate, 1, 0, 1000);
    tracer.span(obs::Stage::kTranslate, 1, 1000, 3000);
    const std::string summary = tracer.flame_summary();
    EXPECT_NE(summary.find("translate"), std::string::npos);
    EXPECT_NE(summary.find("2"), std::string::npos);
}

// --- LogHistogram -----------------------------------------------------

TEST(LogHistogram, ExactCountSumMeanMinMax)
{
    obs::LogHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.mean(), 0.0);
    for (std::uint64_t v : {100u, 200u, 300u})
        hist.observe(v);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_EQ(hist.sum(), 600u);
    EXPECT_DOUBLE_EQ(hist.mean(), 200.0);
    EXPECT_EQ(hist.min(), 100u);
    EXPECT_EQ(hist.max(), 300u);
}

TEST(LogHistogram, PercentileWithinBucketBounds)
{
    obs::LogHistogram hist;
    for (int i = 0; i < 100; ++i)
        hist.observe(1000); // bucket [512, 1024)... bit_width(1000)=10
    const double p50 = hist.percentile(50.0);
    // Clamped to [min, max], so a single-value distribution is exact.
    EXPECT_DOUBLE_EQ(p50, 1000.0);
    hist.observe(1u << 20);
    EXPECT_GE(hist.percentile(100.0), hist.percentile(50.0));
    EXPECT_LE(hist.percentile(100.0), static_cast<double>(hist.max()));
}

TEST(LogHistogram, ResetClears)
{
    obs::LogHistogram hist;
    hist.observe(7);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0u);
    EXPECT_EQ(hist.max(), 0u);
}

// --- MetricsRegistry --------------------------------------------------

TEST(MetricsRegistry, InternReturnsStableHandles)
{
    obs::MetricsRegistry metrics;
    const auto h1 = metrics.counter("reads");
    const auto h2 = metrics.counter("reads");
    const auto h3 = metrics.counter("writes");
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, h3);
    EXPECT_EQ(metrics.counter_count(), 2u);
}

TEST(MetricsRegistry, CountersGaugesHistograms)
{
    obs::MetricsRegistry metrics;
    const auto c = metrics.counter("ops");
    const auto g = metrics.gauge("depth");
    const auto h = metrics.histogram("latency");
    metrics.add(c);
    metrics.add(c, 4);
    metrics.set(g, 9);
    metrics.set(g, 3);
    metrics.observe(h, 1000);
    EXPECT_EQ(metrics.counter_value(c), 5u);
    EXPECT_EQ(metrics.gauge_value(g), 3u); // last write wins
    EXPECT_EQ(metrics.histogram_value(h).count(), 1u);
}

TEST(MetricsRegistry, ScopedCountersAreDistinct)
{
    obs::MetricsRegistry metrics;
    const auto global = metrics.counter("faults");
    const auto fn1 = metrics.counter("faults", 1);
    const auto fn2 = metrics.counter("faults", 2);
    EXPECT_NE(global, fn1);
    EXPECT_NE(fn1, fn2);
    metrics.add(fn1, 7);
    EXPECT_EQ(metrics.counter_value(fn1), 7u);
    EXPECT_EQ(metrics.counter_value(global), 0u);
    // get() only sees global scope (CounterGroup compat).
    EXPECT_EQ(metrics.get("faults"), 0u);
    metrics.add(global, 2);
    EXPECT_EQ(metrics.get("faults"), 2u);
}

TEST(MetricsRegistry, BumpAndGetCompat)
{
    obs::MetricsRegistry metrics;
    metrics.bump("cold_path");
    metrics.bump("cold_path", 9);
    EXPECT_EQ(metrics.get("cold_path"), 10u);
    EXPECT_EQ(metrics.get("never_registered"), 0u);
}

TEST(MetricsRegistry, ToStringIsNameOrdered)
{
    obs::MetricsRegistry metrics;
    metrics.bump("zeta", 1);
    metrics.bump("alpha", 2);
    const std::string s = metrics.to_string();
    EXPECT_LT(s.find("alpha=2"), s.find("zeta=1"));
}

TEST(MetricsRegistry, ToJsonSnapshot)
{
    obs::MetricsRegistry metrics;
    metrics.bump("ops", 3);
    metrics.set(metrics.gauge("qd"), 8);
    metrics.observe(metrics.histogram("lat"), 500);
    metrics.add(metrics.counter("faults", 2), 1);
    const std::string json = metrics.to_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"ops\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"qd\": 8"), std::string::npos);
    EXPECT_NE(json.find("\"fn2/faults\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"lat\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(MetricsRegistry, ResetValuesKeepsHandles)
{
    obs::MetricsRegistry metrics;
    const auto c = metrics.counter("ops");
    metrics.add(c, 5);
    metrics.reset_values();
    EXPECT_EQ(metrics.counter_value(c), 0u);
    metrics.add(c);
    EXPECT_EQ(metrics.counter_value(c), 1u);
}

// --- Telemetry registers / dump_telemetry -----------------------------

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class TelemetryTest : public ::testing::Test {
  protected:
    TelemetryTest()
    {
        auto bed = virt::Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
    }

    util::Result<std::uint64_t>
    pf_read(std::uint64_t offset)
    {
        return bed_->bar().read(
            bed_->bar().function_base(pcie::kPhysicalFunctionId) + offset,
            8);
    }

    util::Status
    pf_write(std::uint64_t offset, std::uint64_t value)
    {
        return bed_->bar().write(
            bed_->bar().function_base(pcie::kPhysicalFunctionId) + offset,
            value, 8);
    }

    std::unique_ptr<virt::Testbed> bed_;
};

TEST_F(TelemetryTest, CountMatchesDirectory)
{
    auto count = pf_read(ctrl::reg::kTelemetryCount);
    ASSERT_TRUE(count.is_ok());
    EXPECT_EQ(*count, ctrl::kTelemetryCounters.size());
    EXPECT_GE(*count, 12u); // the PR's acceptance floor
}

TEST_F(TelemetryTest, SelectValueReadsPerVfCounters)
{
    auto vm = bed_->create_nesc_guest("/tele.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 64 * 4096;
    ASSERT_TRUE(
        wl::run_dd_raw(bed_->sim(), (*vm)->raw_disk(), dd).is_ok());

    // Index 0 is "commands"; read it for the VF through select/value.
    ASSERT_TRUE(
        pf_write(ctrl::reg::kTelemetrySelect, (0ull << 16) | *fn).is_ok());
    auto value = pf_read(ctrl::reg::kTelemetryValue);
    ASSERT_TRUE(value.is_ok());
    EXPECT_EQ(*value, bed_->controller().stats(*fn).commands);
    EXPECT_GT(*value, 0u);
}

TEST_F(TelemetryTest, NameRegistersSpellTheCounterName)
{
    // Select index 3 = holes_zero_filled (17 chars, spans 3 regs).
    ASSERT_TRUE(pf_write(ctrl::reg::kTelemetrySelect, 3ull << 16).is_ok());
    std::string name;
    for (std::size_t chunk = 0; chunk < 3; ++chunk) {
        auto packed = pf_read(ctrl::reg::kTelemetryName0 + 8 * chunk);
        ASSERT_TRUE(packed.is_ok());
        for (unsigned shift = 0; shift < 64; shift += 8) {
            const char ch = static_cast<char>((*packed >> shift) & 0xff);
            if (ch == '\0')
                break;
            name.push_back(ch);
        }
    }
    EXPECT_EQ(name, "holes_zero_filled");
}

TEST_F(TelemetryTest, InvalidSelectionReadsAllOnes)
{
    // Out-of-range counter index.
    ASSERT_TRUE(
        pf_write(ctrl::reg::kTelemetrySelect, 1000ull << 16).is_ok());
    auto value = pf_read(ctrl::reg::kTelemetryValue);
    ASSERT_TRUE(value.is_ok());
    EXPECT_EQ(*value, ~std::uint64_t{0});
    // Out-of-range function id.
    ASSERT_TRUE(pf_write(ctrl::reg::kTelemetrySelect, 0x7fff).is_ok());
    value = pf_read(ctrl::reg::kTelemetryValue);
    ASSERT_TRUE(value.is_ok());
    EXPECT_EQ(*value, ~std::uint64_t{0});
}

TEST_F(TelemetryTest, TelemetryRegistersArePfOnly)
{
    auto vm = bed_->create_nesc_guest("/vfpriv.img", 1024, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    const std::uint64_t vf_base = bed_->bar().function_base(*fn);
    EXPECT_FALSE(
        bed_->bar().read(vf_base + ctrl::reg::kTelemetryCount, 8).is_ok());
    EXPECT_FALSE(
        bed_->bar().read(vf_base + ctrl::reg::kTelemetryValue, 8).is_ok());
    EXPECT_FALSE(bed_->bar()
                     .write(vf_base + ctrl::reg::kTelemetrySelect, 0, 8)
                     .is_ok());
}

TEST_F(TelemetryTest, DumpTelemetryReadsFullDirectory)
{
    auto vm = bed_->create_nesc_guest("/dump.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    auto fn = bed_->guest_vf(**vm);
    ASSERT_TRUE(fn.is_ok());
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 32 * 4096;
    dd.write = true;
    ASSERT_TRUE(
        wl::run_dd_raw(bed_->sim(), (*vm)->raw_disk(), dd).is_ok());

    auto entries = bed_->pf().dump_telemetry(*fn);
    ASSERT_TRUE(entries.is_ok()) << entries.status().to_string();
    ASSERT_EQ(entries->size(), ctrl::kTelemetryCounters.size());
    EXPECT_GE(entries->size(), 12u);
    const auto &stats = bed_->controller().stats(*fn);
    for (std::size_t i = 0; i < entries->size(); ++i) {
        EXPECT_EQ((*entries)[i].name, ctrl::kTelemetryCounters[i].name);
        EXPECT_EQ((*entries)[i].value,
                  stats.*(ctrl::kTelemetryCounters[i].field));
    }
    // The workload must have left visible footprints.
    auto find = [&](const std::string &name) -> std::uint64_t {
        for (const auto &e : *entries)
            if (e.name == name)
                return e.value;
        return ~std::uint64_t{0};
    };
    EXPECT_GT(find("commands"), 0u);
    EXPECT_GT(find("blocks_written"), 0u);
    EXPECT_GT(find("completions"), 0u);
}

TEST_F(TelemetryTest, DumpTelemetryRejectsBogusFunction)
{
    auto entries = bed_->pf().dump_telemetry(0x7fff);
    EXPECT_FALSE(entries.is_ok());
}

// --- End-to-end tracing through the controller ------------------------

TEST_F(TelemetryTest, ControllerTraceCoversLifecycle)
{
    bed_->controller().enable_tracing(1 << 14);
    auto vm = bed_->create_nesc_guest("/traced.img", 4096, true);
    ASSERT_TRUE(vm.is_ok());
    wl::DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 32 * 4096;
    ASSERT_TRUE(
        wl::run_dd_raw(bed_->sim(), (*vm)->raw_disk(), dd).is_ok());

    const obs::Tracer &tracer = bed_->controller().tracer();
    EXPECT_GT(tracer.recorded(), 0u);
    for (obs::Stage stage :
         {obs::Stage::kDoorbell, obs::Stage::kCmdFetch,
          obs::Stage::kQueueWait, obs::Stage::kTranslate,
          obs::Stage::kTransfer, obs::Stage::kDmaWrite, obs::Stage::kLink,
          obs::Stage::kComplete}) {
        EXPECT_GT(tracer.totals(stage).count, 0u)
            << "no events for stage " << obs::stage_name(stage);
    }
    // Span totals equal the stage histograms (same timestamps).
    const auto &queue = bed_->controller().stage_queue_wait();
    EXPECT_EQ(tracer.totals(obs::Stage::kQueueWait).count, queue.count());
    EXPECT_EQ(tracer.totals(obs::Stage::kQueueWait).total_ns,
              queue.sum());
    // The export carries a track for the VF and the shared link.
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("pcie-link"), std::string::npos);
    EXPECT_NE(json.find("\"fn1\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
}

} // namespace
} // namespace nesc
