/**
 * @file
 * Unit tests for the workload engines: dd pattern helpers, dd runs,
 * Postmark, fileio, MiniDb (including crash recovery), and OLTP.
 */
#include <gtest/gtest.h>

#include "virt/testbed.h"
#include "workloads/dd.h"
#include "workloads/fileio.h"
#include "workloads/minidb.h"
#include "workloads/oltp.h"
#include "workloads/postmark.h"

namespace nesc::wl {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    return config;
}

class WorkloadTest : public ::testing::Test {
  protected:
    WorkloadTest()
    {
        auto bed = virt::Testbed::create(small_config());
        EXPECT_TRUE(bed.is_ok()) << bed.status().to_string();
        bed_ = std::move(bed).value();
        auto vm = bed_->create_nesc_guest("/wl.img", 16384, true);
        EXPECT_TRUE(vm.is_ok()) << vm.status().to_string();
        vm_ = std::move(vm).value();
        EXPECT_TRUE(vm_->format_fs().is_ok());
    }

    std::unique_ptr<virt::Testbed> bed_;
    std::unique_ptr<virt::GuestVm> vm_;
};

// --- Pattern helpers ----------------------------------------------------

TEST(DdPattern, FillAndCheckAgree)
{
    std::vector<std::byte> buf(1000);
    fill_pattern(7, 123, buf);
    EXPECT_EQ(check_pattern(7, 123, buf), -1);
    // A corrupted byte is located exactly.
    buf[400] ^= std::byte{0x01};
    EXPECT_EQ(check_pattern(7, 123, buf), 400);
    // Different seed or position mismatches immediately.
    EXPECT_NE(check_pattern(8, 123, buf), -1);
}

// --- dd ---------------------------------------------------------------------

TEST_F(WorkloadTest, DdRawWriteThenVerifyRead)
{
    DdConfig dd;
    dd.request_bytes = 4096;
    dd.total_bytes = 64 * 1024;
    dd.write = true;
    dd.pattern_seed = 5;
    auto wrote = run_dd_raw(bed_->sim(), vm_->raw_disk(), dd);
    ASSERT_TRUE(wrote.is_ok()) << wrote.status().to_string();
    EXPECT_EQ(wrote->requests, 16u);
    EXPECT_EQ(wrote->bytes, 64u * 1024);
    EXPECT_GT(wrote->bandwidth_mb_s, 0.0);
    EXPECT_GT(wrote->mean_latency_us, 0.0);

    dd.write = false;
    dd.verify = true;
    auto read = run_dd_raw(bed_->sim(), vm_->raw_disk(), dd);
    ASSERT_TRUE(read.is_ok()) << read.status().to_string();
}

TEST_F(WorkloadTest, DdSubBlockRequests)
{
    DdConfig dd;
    dd.request_bytes = 512; // half a device block
    dd.total_bytes = 8 * 1024;
    dd.write = true;
    auto result = run_dd_raw(bed_->sim(), vm_->raw_disk(), dd);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->requests, 16u);
}

TEST_F(WorkloadTest, DdFileWriteReadVerify)
{
    auto ino = vm_->fs()->create("/ddfile", 0644);
    ASSERT_TRUE(ino.is_ok());
    DdConfig dd;
    dd.request_bytes = 3000; // deliberately unaligned
    dd.total_bytes = 30 * 1000;
    dd.write = true;
    dd.pattern_seed = 9;
    auto wrote = run_dd_file(bed_->sim(), *vm_, *ino, dd);
    ASSERT_TRUE(wrote.is_ok()) << wrote.status().to_string();

    dd.write = false;
    dd.verify = true;
    auto read = run_dd_file(bed_->sim(), *vm_, *ino, dd);
    ASSERT_TRUE(read.is_ok()) << read.status().to_string();
    EXPECT_EQ(read->bytes, 30u * 1000);
}

TEST_F(WorkloadTest, DdRejectsZeroRequestSize)
{
    DdConfig dd;
    dd.request_bytes = 0;
    EXPECT_FALSE(run_dd_raw(bed_->sim(), vm_->raw_disk(), dd).is_ok());
}

// --- Postmark ------------------------------------------------------------------

TEST_F(WorkloadTest, PostmarkRunsAndCleansUp)
{
    PostmarkConfig config;
    config.initial_files = 20;
    config.transactions = 60;
    config.max_file_bytes = 4096;
    auto result = run_postmark(bed_->sim(), *vm_, config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->transactions, 60u);
    EXPECT_GE(result->files_created, 20u);
    EXPECT_GT(result->transactions_per_sec, 0.0);
    // Cleanup removed the pool directory entirely.
    EXPECT_FALSE(vm_->fs()->resolve(config.directory).is_ok());
    // All blocks are back (no leaks in the FS under churn).
    EXPECT_GT(vm_->fs()->free_blocks(), 0u);
}

TEST_F(WorkloadTest, PostmarkDeterministicPerSeed)
{
    PostmarkConfig config;
    config.initial_files = 10;
    config.transactions = 30;
    config.directory = "/pm1";
    auto a = run_postmark(bed_->sim(), *vm_, config);
    ASSERT_TRUE(a.is_ok());
    config.directory = "/pm2";
    auto b = run_postmark(bed_->sim(), *vm_, config);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a->files_created, b->files_created);
    EXPECT_EQ(a->reads, b->reads);
    EXPECT_EQ(a->bytes_written, b->bytes_written);
}

// --- fileio -----------------------------------------------------------------------

TEST_F(WorkloadTest, FileioMixMatchesConfig)
{
    FileioConfig config;
    config.num_files = 4;
    config.file_bytes = 64 * 1024;
    config.operations = 200;
    config.read_ratio = 1.0; // all reads
    auto result = run_fileio(bed_->sim(), *vm_, config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->reads, 200u);
    EXPECT_EQ(result->writes, 0u);
    EXPECT_GT(result->ops_per_sec, 0.0);
}

TEST_F(WorkloadTest, FileioValidatesRequestSize)
{
    FileioConfig config;
    config.request_bytes = 1 << 20;
    config.file_bytes = 4096;
    EXPECT_FALSE(run_fileio(bed_->sim(), *vm_, config).is_ok());
}

// --- MiniDb -----------------------------------------------------------------------

TEST_F(WorkloadTest, MiniDbReadYourWrites)
{
    MiniDbConfig config;
    config.rows = 256;
    config.directory = "/db1";
    auto db = MiniDb::create(bed_->sim(), *vm_, config);
    ASSERT_TRUE(db.is_ok()) << db.status().to_string();

    std::vector<std::byte> row(config.row_bytes, std::byte{0x11});
    ASSERT_TRUE((*db)->begin().is_ok());
    ASSERT_TRUE((*db)->put(5, row).is_ok());
    // Uncommitted data visible inside the transaction.
    auto inside = (*db)->get(5);
    ASSERT_TRUE(inside.is_ok());
    EXPECT_EQ(*inside, row);
    ASSERT_TRUE((*db)->commit().is_ok());
    auto after = (*db)->get(5);
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(*after, row);
}

TEST_F(WorkloadTest, MiniDbTransactionDiscipline)
{
    MiniDbConfig config;
    config.rows = 64;
    config.directory = "/db2";
    auto db = MiniDb::create(bed_->sim(), *vm_, config);
    ASSERT_TRUE(db.is_ok());
    std::vector<std::byte> row(config.row_bytes);
    EXPECT_FALSE((*db)->put(0, row).is_ok());   // outside txn
    EXPECT_FALSE((*db)->commit().is_ok());      // no begin
    ASSERT_TRUE((*db)->begin().is_ok());
    EXPECT_FALSE((*db)->begin().is_ok());       // nested
    EXPECT_FALSE((*db)->put(999, row).is_ok()); // out of range
    std::vector<std::byte> wrong(10);
    EXPECT_FALSE((*db)->put(0, wrong).is_ok()); // size mismatch
}

TEST_F(WorkloadTest, MiniDbRecoversCommittedTransactionsAfterCrash)
{
    MiniDbConfig config;
    config.rows = 128;
    config.checkpoint_every = 1000; // never checkpoint during the run
    config.directory = "/db3";
    std::vector<std::byte> row_a(config.row_bytes, std::byte{0xaa});
    std::vector<std::byte> row_b(config.row_bytes, std::byte{0xbb});
    {
        auto db = MiniDb::create(bed_->sim(), *vm_, config);
        ASSERT_TRUE(db.is_ok());
        ASSERT_TRUE((*db)->begin().is_ok());
        ASSERT_TRUE((*db)->put(7, row_a).is_ok());
        ASSERT_TRUE((*db)->commit().is_ok());
        ASSERT_TRUE((*db)->begin().is_ok());
        ASSERT_TRUE((*db)->put(9, row_b).is_ok());
        // Crash: no commit for txn 2, no checkpoint — the engine is
        // simply dropped. The WAL holds txn 1 (committed) only.
    }
    auto db = MiniDb::open(bed_->sim(), *vm_, config);
    ASSERT_TRUE(db.is_ok()) << db.status().to_string();
    EXPECT_GE((*db)->stats().recovered_txns, 1u);
    auto a = (*db)->get(7);
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(*a, row_a);
    auto b = (*db)->get(9);
    ASSERT_TRUE(b.is_ok());
    // Uncommitted txn must NOT have been applied.
    EXPECT_EQ(*b, std::vector<std::byte>(config.row_bytes, std::byte{0}));
}

TEST_F(WorkloadTest, MiniDbCheckpointTruncatesWal)
{
    MiniDbConfig config;
    config.rows = 64;
    config.checkpoint_every = 2;
    config.directory = "/db4";
    auto db = MiniDb::create(bed_->sim(), *vm_, config);
    ASSERT_TRUE(db.is_ok());
    std::vector<std::byte> row(config.row_bytes, std::byte{1});
    for (int t = 0; t < 4; ++t) {
        ASSERT_TRUE((*db)->begin().is_ok());
        ASSERT_TRUE((*db)->put(t, row).is_ok());
        ASSERT_TRUE((*db)->commit().is_ok());
    }
    EXPECT_EQ((*db)->stats().checkpoints, 2u);
    auto wal = vm_->fs()->stat_path("/db4/wal");
    ASSERT_TRUE(wal.is_ok());
    EXPECT_EQ(wal->size_bytes, 0u);
}

// --- OLTP -------------------------------------------------------------------------

TEST_F(WorkloadTest, OltpRunsTheConfiguredMix)
{
    OltpConfig config;
    config.transactions = 20;
    config.ops_per_txn = 5;
    config.db.rows = 256;
    config.db.directory = "/oltp-test";
    auto result = run_oltp(bed_->sim(), *vm_, config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->transactions, 20u);
    EXPECT_EQ(result->reads + result->updates, 100u);
    EXPECT_GT(result->transactions_per_sec, 0.0);
    EXPECT_GT(result->mean_txn_latency_us, 0.0);
}

TEST_F(WorkloadTest, OltpWithPrimaryKeyIndex)
{
    OltpConfig config;
    config.transactions = 15;
    config.ops_per_txn = 6;
    config.db.rows = 512;
    config.db.directory = "/oltp-idx";
    config.use_index = true;
    auto result = run_oltp(bed_->sim(), *vm_, config);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result->transactions, 15u);
    EXPECT_EQ(result->reads + result->updates, 90u);
    // The index variant does more I/O per op: it must not be faster
    // than the direct-addressed run with the same parameters.
    config.use_index = false;
    config.db.directory = "/oltp-noidx";
    auto direct = run_oltp(bed_->sim(), *vm_, config);
    ASSERT_TRUE(direct.is_ok());
    EXPECT_GE(result->mean_txn_latency_us,
              direct->mean_txn_latency_us * 0.9);
}

TEST_F(WorkloadTest, OltpAllReadsWhenRatioIsOne)
{
    OltpConfig config;
    config.transactions = 5;
    config.ops_per_txn = 4;
    config.read_ratio = 1.0;
    config.db.rows = 64;
    config.db.directory = "/oltp-ro";
    auto result = run_oltp(bed_->sim(), *vm_, config);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result->updates, 0u);
    EXPECT_EQ(result->reads, 20u);
}

} // namespace
} // namespace nesc::wl
