/**
 * @file
 * Tests for the translation fast path added on top of the paper's
 * prototype: the device-side extent-node cache, MSHR-style walk-miss
 * coalescing, and the fast-path register block. The invalidation
 * tests are the security-critical ones: RewalkTree, SetExtentRoot and
 * DeleteVf must drop cached node images, and no VF may ever translate
 * through another VF's (or a stale) tree node.
 */
#include <gtest/gtest.h>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "extent/walker.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "workloads/dd.h"

namespace nesc::ctrl {
namespace {

using extent::Extent;

// --- ExtentNodeCache unit tests ---------------------------------------------

extent::NodeHeaderRecord
leaf_header(std::uint16_t count)
{
    return extent::NodeHeaderRecord{
        extent::kNodeMagic,
        static_cast<std::uint16_t>(extent::NodeKind::kLeaf), count, 0};
}

TEST(ExtentNodeCache, DisabledAtZeroBudget)
{
    ExtentNodeCache cache(0);
    EXPECT_FALSE(cache.enabled());
    cache.insert(1, 0x1000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ExtentNodeCache, LruEvictionRespectsBudget)
{
    const std::uint64_t footprint =
        sizeof(extent::NodeHeaderRecord) + extent::kEntrySize;
    ExtentNodeCache cache(2 * footprint);
    cache.insert(1, 0x1000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    cache.insert(1, 0x2000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    ASSERT_EQ(cache.size(), 2u);
    // Touch 0x1000 so 0x2000 is the LRU victim.
    EXPECT_NE(cache.lookup(1, 0x1000), nullptr);
    cache.insert(1, 0x3000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_NE(cache.lookup(1, 0x1000), nullptr);
    EXPECT_EQ(cache.lookup(1, 0x2000), nullptr);
    EXPECT_NE(cache.lookup(1, 0x3000), nullptr);
}

TEST(ExtentNodeCache, OversizedNodeNotCached)
{
    ExtentNodeCache cache(16);
    cache.insert(1, 0x1000, leaf_header(4),
                 std::vector<std::byte>(4 * extent::kEntrySize));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ExtentNodeCache, FunctionInvalidationIsSelective)
{
    ExtentNodeCache cache(1 << 16);
    cache.insert(1, 0x1000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    cache.insert(2, 0x2000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize));
    cache.invalidate_function(1);
    EXPECT_EQ(cache.lookup(1, 0x1000), nullptr);
    EXPECT_NE(cache.lookup(2, 0x2000), nullptr);
    EXPECT_EQ(cache.function_invalidations(), 1u);
}

TEST(ExtentNodeCache, SameAddressDifferentFunctionIsDistinct)
{
    // Two VFs whose trees share a host address (shared subtree) still
    // get distinct cache entries: isolation is structural in the key.
    ExtentNodeCache cache(1 << 16);
    cache.insert(1, 0x1000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize, std::byte{1}));
    cache.insert(2, 0x1000, leaf_header(1),
                 std::vector<std::byte>(extent::kEntrySize, std::byte{2}));
    EXPECT_EQ(cache.size(), 2u);
    const auto *n1 = cache.lookup(1, 0x1000);
    const auto *n2 = cache.lookup(2, 0x1000);
    ASSERT_NE(n1, nullptr);
    ASSERT_NE(n2, nullptr);
    EXPECT_EQ(n1->entries[0], std::byte{1});
    EXPECT_EQ(n2->entries[0], std::byte{2});
}

TEST(ExtentNodeCache, RebudgetEvictsDown)
{
    ExtentNodeCache cache(1 << 16);
    for (std::uint64_t i = 0; i < 8; ++i)
        cache.insert(1, 0x1000 * (i + 1), leaf_header(1),
                     std::vector<std::byte>(extent::kEntrySize));
    ASSERT_EQ(cache.size(), 8u);
    cache.set_budget(sizeof(extent::NodeHeaderRecord) +
                     extent::kEntrySize);
    EXPECT_EQ(cache.size(), 1u);
    cache.set_budget(0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.enabled());
}

// --- Controller integration --------------------------------------------------

/** Bare-metal harness with per-test controller configuration. */
class TranslationCacheTest : public ::testing::Test {
  protected:
    void
    init(const ControllerConfig &cfg)
    {
        storage::MemBlockDeviceConfig dev_cfg;
        dev_cfg.capacity_bytes = 16 << 20;
        host_memory_.emplace(32 << 20);
        device_.emplace(dev_cfg);
        irq_.emplace(sim_);
        controller_.emplace(sim_, *host_memory_, *device_, *irq_, cfg);
        bar_.emplace(*controller_, 4096, controller_->num_functions());
    }

    /** Fast-path config: node cache + coalescing on, BTLB off. */
    static ControllerConfig
    fastpath_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 4;
        cfg.btlb_entries = 0; // every access exercises the walk unit
        cfg.node_cache_bytes = 64 << 10;
        cfg.walk_coalescing = true;
        cfg.coalesce_window_blocks = 4096;
        return cfg;
    }

    pcie::FunctionId
    create_vf(const extent::ExtentList &extents, std::uint64_t size_blocks,
              pcie::FunctionId fn, const extent::TreeConfig &tree_cfg)
    {
        auto image =
            extent::ExtentTreeImage::build(*host_memory_, extents, tree_cfg);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        return create_vf_at_root(trees_.back().root(), size_blocks, fn);
    }

    pcie::FunctionId
    create_vf_at_root(pcie::HostAddr root, std::uint64_t size_blocks,
                      pcie::FunctionId fn)
    {
        EXPECT_TRUE(
            controller_->mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        EXPECT_TRUE(
            controller_->mmio_write(0, reg::kMgmtExtentRoot, root, 8)
                .is_ok());
        EXPECT_TRUE(controller_
                        ->mmio_write(0, reg::kMgmtDeviceSize, size_blocks, 8)
                        .is_ok());
        EXPECT_TRUE(mgmt(MgmtCommand::kCreateVf));
        return fn;
    }

    /** Issues a mgmt command; true on kOk status. */
    bool
    mgmt(MgmtCommand command)
    {
        EXPECT_TRUE(controller_
                        ->mmio_write(0, reg::kMgmtCommand,
                                     static_cast<std::uint64_t>(command), 8)
                        .is_ok());
        return *controller_->mmio_read(0, reg::kMgmtStatus, 4) ==
               static_cast<std::uint64_t>(MgmtStatus::kOk);
    }

    /** Repoints @p fn's tree at @p root through PF mgmt. */
    void
    set_extent_root(pcie::FunctionId fn, pcie::HostAddr root)
    {
        ASSERT_TRUE(
            controller_->mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
        ASSERT_TRUE(
            controller_->mmio_write(0, reg::kMgmtExtentRoot, root, 8)
                .is_ok());
        ASSERT_TRUE(mgmt(MgmtCommand::kSetExtentRoot));
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn)
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, *host_memory_, *bar_, *irq_, fn,
            drv::FunctionDriverConfig{});
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    std::uint64_t
    counter(const char *name)
    {
        return controller_->counters().get(name);
    }

    /** A 64-extent mapping that needs a multi-level tree at fanout 4. */
    static extent::ExtentList
    striped_extents(std::uint64_t count = 64, std::uint64_t run = 4,
                    std::uint64_t plba_base = 1024)
    {
        extent::ExtentList extents;
        for (std::uint64_t i = 0; i < count; ++i)
            extents.push_back(
                Extent{i * run, run, plba_base + (count - 1 - i) * run});
        return extents;
    }

    sim::Simulator sim_;
    std::optional<pcie::HostMemory> host_memory_;
    std::optional<storage::MemBlockDevice> device_;
    std::optional<pcie::InterruptController> irq_;
    std::optional<Controller> controller_;
    std::optional<pcie::BarPageRouter> bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

TEST_F(TranslationCacheTest, NodeCacheEliminatesRepeatWalkDma)
{
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);

    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    const std::uint64_t cold_reads = counter("walk_node_reads");
    EXPECT_GT(cold_reads, 0u);

    // A different vLBA under the same root path: interior nodes (and,
    // at fanout 4, the shared leaf) come from the node cache.
    ASSERT_TRUE(driver->read_sync(4, 1, buf).is_ok());
    EXPECT_LT(counter("walk_node_reads") - cold_reads, cold_reads);
    EXPECT_GT(counter("node_cache_hits"), 0u);

    // The exact same vLBA again: the full path is cached, zero DMA.
    const std::uint64_t warm_reads = counter("walk_node_reads");
    ASSERT_TRUE(driver->read_sync(4, 1, buf).is_ok());
    EXPECT_EQ(counter("walk_node_reads"), warm_reads);
}

TEST_F(TranslationCacheTest, CachedTranslationStillCorrect)
{
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    auto driver = make_driver(fn);

    // Write through the cold path, read back through the warm path —
    // and verify physical placement against the reference walker.
    std::vector<std::byte> out(1024), in(1024);
    wl::fill_pattern(7, 0, out);
    ASSERT_TRUE(driver->write_sync(40, 1, out).is_ok());
    ASSERT_TRUE(driver->read_sync(40, 1, in).is_ok());
    EXPECT_EQ(out, in);

    auto ref = extent::lookup(*host_memory_, trees_.back().root(), 40);
    ASSERT_TRUE(ref.is_ok());
    ASSERT_EQ(ref->outcome, extent::LookupOutcome::kMapped);
    std::vector<std::byte> media(1024);
    ASSERT_TRUE(
        device_->read(ref->extent.translate(40) * 1024, media).is_ok());
    EXPECT_EQ(media, out);
}

TEST_F(TranslationCacheTest, SetExtentRootDropsCachedNodes)
{
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(64, 4, 1024), 256, 1,
                  extent::TreeConfig{4});
    auto driver = make_driver(fn);

    // Warm the node cache, then place distinct data at the two
    // physical locations vLBA 0 maps to under the old and new trees.
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    ASSERT_GT(controller_->node_cache().size(), 0u);

    std::vector<std::byte> old_data(1024, std::byte{0xaa});
    std::vector<std::byte> new_data(1024, std::byte{0xbb});
    auto old_ref = extent::lookup(*host_memory_, trees_.back().root(), 0);
    ASSERT_TRUE(old_ref.is_ok());
    ASSERT_TRUE(device_->write(old_ref->extent.translate(0) * 1024,
                               old_data)
                    .is_ok());

    auto new_image = extent::ExtentTreeImage::build(
        *host_memory_, striped_extents(64, 4, 8192),
        extent::TreeConfig{4});
    ASSERT_TRUE(new_image.is_ok());
    auto new_ref = extent::lookup(*host_memory_, new_image->root(), 0);
    ASSERT_TRUE(new_ref.is_ok());
    ASSERT_NE(new_ref->extent.translate(0), old_ref->extent.translate(0));
    ASSERT_TRUE(device_->write(new_ref->extent.translate(0) * 1024,
                               new_data)
                    .is_ok());

    set_extent_root(fn, new_image->root());
    EXPECT_GT(controller_->node_cache().function_invalidations(), 0u);

    // The read must translate through the NEW tree: stale node images
    // would return 0xaa from the old physical location.
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(buf, new_data);
    trees_.push_back(std::move(new_image).value());
}

TEST_F(TranslationCacheTest, RewalkAfterFaultUsesFreshTree)
{
    init(fastpath_config());
    // Sparse mapping: vLBA 32.. is a hole, so a write faults.
    const auto fn = create_vf({{0, 32, 1024}}, 256, 1,
                              extent::TreeConfig{4});
    auto driver = make_driver(fn);

    std::vector<std::byte> warm(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, warm).is_ok());
    ASSERT_GT(controller_->node_cache().size(), 0u);

    bool completed = false;
    CompletionStatus status = CompletionStatus::kInternalError;
    auto buffer = host_memory_->alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    std::vector<std::byte> payload(1024, std::byte{0x5c});
    ASSERT_TRUE(host_memory_->write(*buffer, payload).is_ok());
    ASSERT_TRUE(driver
                    ->submit(Opcode::kWrite, 32, 1, *buffer,
                             [&](CompletionStatus s) {
                                 completed = true;
                                 status = s;
                             })
                    .is_ok());
    sim_.run_until_idle();
    ASSERT_FALSE(completed);
    ASSERT_EQ(controller_->fault_kind(fn), FaultKind::kWriteMiss);

    // Hypervisor allocates: new tree covering the missed block, then
    // SetExtentRoot + RewalkTree (the paper's Fig. 5 service path).
    auto grown = extent::ExtentTreeImage::build(
        *host_memory_, {{0, 32, 1024}, {32, 8, 4096}},
        extent::TreeConfig{4});
    ASSERT_TRUE(grown.is_ok());
    set_extent_root(fn, grown->root());
    const std::uint64_t invalidations =
        controller_->node_cache().function_invalidations();
    ASSERT_TRUE(controller_->mmio_write(fn, reg::kRewalkTree, 1, 4).is_ok());
    sim_.run_until_idle();

    EXPECT_TRUE(completed);
    EXPECT_EQ(status, CompletionStatus::kOk);
    // The rewalk itself also invalidates (belt and braces on top of
    // SetExtentRoot): cached pre-fault nodes cannot serve the retry.
    EXPECT_GT(controller_->node_cache().function_invalidations(),
              invalidations);
    std::vector<std::byte> media(1024);
    ASSERT_TRUE(device_->read(4096 * 1024, media).is_ok());
    EXPECT_EQ(media, payload);
    trees_.push_back(std::move(grown).value());
}

TEST_F(TranslationCacheTest, DeleteVfDropsCachedNodes)
{
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    ASSERT_GT(controller_->node_cache().size(), 0u);

    ASSERT_TRUE(controller_->mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(mgmt(MgmtCommand::kDeleteVf));
    EXPECT_EQ(controller_->node_cache().size(), 0u);
}

TEST_F(TranslationCacheTest, NoCrossVfNodeCacheHits)
{
    init(fastpath_config());
    // Both VFs point at the SAME tree (shared subtree scenario): VF 2
    // must still take cold misses — a hit on VF 1's cached nodes would
    // be a cross-VF translation channel.
    const auto fn1 =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    const auto fn2 = create_vf_at_root(trees_.back().root(), 256, 2);
    auto d1 = make_driver(fn1);
    auto d2 = make_driver(fn2);

    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(d1->read_sync(0, 1, buf).is_ok());
    ASSERT_TRUE(d1->read_sync(0, 1, buf).is_ok()); // fully warm for fn1
    const std::uint64_t hits_before = counter("node_cache_hits");
    const std::uint64_t misses_before = counter("node_cache_misses");

    ASSERT_TRUE(d2->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(counter("node_cache_hits"), hits_before);
    EXPECT_GT(counter("node_cache_misses"), misses_before);
}

TEST_F(TranslationCacheTest, CoalescingAttachesConcurrentMisses)
{
    // Run the same burst with coalescing off and on; same data, same
    // completions, fewer node DMAs.
    std::uint64_t node_reads[2] = {0, 0};
    for (int enabled = 0; enabled < 2; ++enabled) {
        ControllerConfig cfg = fastpath_config();
        cfg.node_cache_bytes = 0; // isolate the coalescing effect
        cfg.walk_coalescing = enabled != 0;
        init(cfg);
        trees_.clear();
        const auto fn =
            create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
        auto driver = make_driver(fn);

        constexpr int kBurst = 8;
        int done = 0;
        std::vector<pcie::HostAddr> buffers;
        for (int i = 0; i < kBurst; ++i) {
            auto buffer = host_memory_->alloc(1024, 64);
            ASSERT_TRUE(buffer.is_ok());
            buffers.push_back(*buffer);
            ASSERT_TRUE(driver
                            ->submit(Opcode::kRead, i, 1, *buffer,
                                     [&](CompletionStatus s) {
                                         EXPECT_EQ(s,
                                                   CompletionStatus::kOk);
                                         ++done;
                                     })
                            .is_ok());
        }
        sim_.run_until_idle();
        ASSERT_EQ(done, kBurst);
        node_reads[enabled] = counter("walk_node_reads");
        if (enabled)
            EXPECT_GT(counter("walk_coalesced"), 0u);
        else
            EXPECT_EQ(counter("walk_coalesced"), 0u);
    }
    EXPECT_LT(node_reads[1], node_reads[0]);
}

TEST_F(TranslationCacheTest, UncoveredSecondaryReplaysCorrectly)
{
    ControllerConfig cfg = fastpath_config();
    cfg.node_cache_bytes = 0;
    init(cfg);
    // Two extents far apart in vLBA but inside the (huge) window: the
    // second miss attaches to the first walk, is not covered by its
    // extent, and must replay — with the right data at the end.
    const auto fn = create_vf({{0, 4, 1024}, {2048, 4, 4096}}, 4096, 1,
                              extent::TreeConfig{4});
    auto driver = make_driver(fn);

    std::vector<std::byte> a(1024, std::byte{0x11});
    std::vector<std::byte> b(1024, std::byte{0x22});
    ASSERT_TRUE(device_->write(1024 * 1024, a).is_ok());
    ASSERT_TRUE(device_->write(4096 * 1024, b).is_ok());

    int done = 0;
    auto buf_a = host_memory_->alloc(1024, 64);
    auto buf_b = host_memory_->alloc(1024, 64);
    ASSERT_TRUE(buf_a.is_ok());
    ASSERT_TRUE(buf_b.is_ok());
    for (auto [vlba, buffer] :
         {std::pair{0ULL, *buf_a}, std::pair{2048ULL, *buf_b}}) {
        ASSERT_TRUE(driver
                        ->submit(Opcode::kRead, vlba, 1, buffer,
                                 [&](CompletionStatus s) {
                                     EXPECT_EQ(s, CompletionStatus::kOk);
                                     ++done;
                                 })
                        .is_ok());
    }
    sim_.run_until_idle();
    ASSERT_EQ(done, 2);
    EXPECT_GE(counter("walk_coalesced"), 1u);
    EXPECT_GE(counter("walk_replays"), 1u);

    std::vector<std::byte> got(1024);
    ASSERT_TRUE(host_memory_->read(*buf_a, got).is_ok());
    EXPECT_EQ(got, a);
    ASSERT_TRUE(host_memory_->read(*buf_b, got).is_ok());
    EXPECT_EQ(got, b);
}

TEST_F(TranslationCacheTest, CoalescedWritesParkBehindFault)
{
    init(fastpath_config());
    // Writes into a hole: the primary faults; its coalesced secondary
    // must end up parked behind the same fault, and FailMiss must then
    // complete both with the write-failure status.
    const auto fn = create_vf({{0, 4, 1024}}, 256, 1,
                              extent::TreeConfig{4});
    auto driver = make_driver(fn);

    int failed = 0;
    auto buffer = host_memory_->alloc(1024, 64);
    ASSERT_TRUE(buffer.is_ok());
    for (std::uint64_t vlba : {100ULL, 101ULL}) {
        ASSERT_TRUE(driver
                        ->submit(Opcode::kWrite, vlba, 1, *buffer,
                                 [&](CompletionStatus s) {
                                     EXPECT_EQ(
                                         s,
                                         CompletionStatus::kWriteFailed);
                                     ++failed;
                                 })
                        .is_ok());
    }
    sim_.run_until_idle();
    ASSERT_EQ(failed, 0);
    ASSERT_EQ(controller_->fault_kind(fn), FaultKind::kWriteMiss);

    ASSERT_TRUE(controller_->mmio_write(0, reg::kMgmtVfId, fn, 8).is_ok());
    ASSERT_TRUE(mgmt(MgmtCommand::kFailMiss));
    sim_.run_until_idle();
    EXPECT_EQ(failed, 2);
}

// --- Fast-path registers -----------------------------------------------------

TEST_F(TranslationCacheTest, FastPathRegistersArePfOnly)
{
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    for (std::uint64_t off :
         {reg::kBtlbGeometry, reg::kStatBtlbHits, reg::kStatBtlbMisses,
          reg::kNodeCacheBytes, reg::kStatNodeCacheHits,
          reg::kStatNodeCacheMisses, reg::kWalkCoalesce,
          reg::kStatWalkCoalesced, reg::kStatWalkReplays}) {
        EXPECT_EQ(controller_->mmio_read(fn, off, 8).status().code(),
                  util::ErrorCode::kPermissionDenied)
            << off;
        EXPECT_TRUE(controller_->mmio_read(0, off, 8).is_ok()) << off;
    }
    EXPECT_EQ(controller_->mmio_write(fn, reg::kBtlbGeometry, 0, 8).code(),
              util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(
        controller_->mmio_write(fn, reg::kNodeCacheBytes, 0, 8).code(),
        util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(controller_->mmio_write(fn, reg::kWalkCoalesce, 0, 8).code(),
              util::ErrorCode::kPermissionDenied);
}

TEST_F(TranslationCacheTest, GeometryRegisterReconfigures)
{
    ControllerConfig cfg;
    cfg.max_vfs = 4;
    init(cfg);
    ASSERT_TRUE(controller_->btlb().fully_associative());

    ASSERT_TRUE(controller_
                    ->mmio_write(0, reg::kBtlbGeometry,
                                 encode_btlb_geometry(16, 4, 6), 8)
                    .is_ok());
    EXPECT_FALSE(controller_->btlb().fully_associative());
    EXPECT_EQ(controller_->btlb().sets(), 16u);
    EXPECT_EQ(controller_->btlb().ways(), 4u);
    EXPECT_EQ(controller_->btlb().range_shift(), 6u);
    // Read-back reports the live geometry.
    EXPECT_EQ(*controller_->mmio_read(0, reg::kBtlbGeometry, 8),
              encode_btlb_geometry(16, 4, 6));

    // sets <= 1 returns to the paper's fully-associative mode.
    ASSERT_TRUE(controller_
                    ->mmio_write(0, reg::kBtlbGeometry,
                                 encode_btlb_geometry(0, 8, 6), 8)
                    .is_ok());
    EXPECT_TRUE(controller_->btlb().fully_associative());
    EXPECT_EQ(controller_->btlb().capacity(), 8u);
}

TEST_F(TranslationCacheTest, NodeCacheAndCoalesceRegisters)
{
    ControllerConfig cfg;
    cfg.max_vfs = 4;
    init(cfg);
    EXPECT_FALSE(controller_->node_cache().enabled());
    ASSERT_TRUE(
        controller_->mmio_write(0, reg::kNodeCacheBytes, 32 << 10, 8)
            .is_ok());
    EXPECT_TRUE(controller_->node_cache().enabled());
    EXPECT_EQ(*controller_->mmio_read(0, reg::kNodeCacheBytes, 8),
              std::uint64_t{32 << 10});
    ASSERT_TRUE(
        controller_->mmio_write(0, reg::kWalkCoalesce, 512, 8).is_ok());

    // Stats registers read zero before traffic.
    EXPECT_EQ(*controller_->mmio_read(0, reg::kStatNodeCacheHits, 8), 0u);
    EXPECT_EQ(*controller_->mmio_read(0, reg::kStatWalkCoalesced, 8), 0u);

    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    // A different extent misses the BTLB but walks through cached
    // interior nodes; the same vLBA again hits the BTLB.
    ASSERT_TRUE(driver->read_sync(4, 1, buf).is_ok());
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_GT(*controller_->mmio_read(0, reg::kStatNodeCacheHits, 8), 0u);
    EXPECT_GT(*controller_->mmio_read(0, reg::kStatBtlbHits, 8), 0u);
}

TEST_F(TranslationCacheTest, WalkerPathPredictsDeviceWalk)
{
    // The reference walker's visited-node path must match the device's
    // DMA count for the same lookup — the validation contract that
    // lets tests reason about node-cache contents.
    init(fastpath_config());
    const auto fn =
        create_vf(striped_extents(), 256, 1, extent::TreeConfig{4});
    auto driver = make_driver(fn);

    auto ref = extent::lookup(*host_memory_, trees_.back().root(), 0);
    ASSERT_TRUE(ref.is_ok());
    ASSERT_EQ(ref->path.size(), ref->nodes_visited);
    ASSERT_GT(ref->path.size(), 1u); // multi-level at fanout 4

    std::vector<std::byte> buf(1024);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(counter("walk_node_reads"), ref->nodes_visited);
    // Every visited node is now cached for this fn.
    for (pcie::HostAddr addr : ref->path)
        EXPECT_NE(controller_->node_cache().lookup(fn, addr), nullptr);
}

} // namespace
} // namespace nesc::ctrl
