#!/usr/bin/env sh
# Golden-figure regression check.
#
# Usage: golden_figures.sh <golden_dir> <fig_binary>...
#
# Runs each figure binary and diffs its stdout against
# <golden_dir>/<basename>.out. The goldens were captured from the
# pre-batching simulator, so any drift means the event-loop or
# batching work changed observable behavior — a hard failure.
set -u

golden_dir=$1
shift

status=0
for bin in "$@"; do
    name=$(basename "$bin")
    golden="$golden_dir/$name.out"
    if [ ! -f "$golden" ]; then
        echo "golden_figures: missing golden $golden" >&2
        status=1
        continue
    fi
    out=$(mktemp)
    # NESC_BENCH_CSV in the environment would add CSV emission noise.
    if ! env -u NESC_BENCH_CSV "$bin" >"$out" 2>/dev/null; then
        echo "golden_figures: $name exited non-zero" >&2
        status=1
    elif ! diff -u "$golden" "$out"; then
        echo "golden_figures: $name drifted from golden output" >&2
        status=1
    else
        echo "golden_figures: $name OK"
    fi
    rm -f "$out"
done
exit $status
