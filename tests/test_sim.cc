/**
 * @file
 * Unit tests for the discrete-event simulator and BandwidthServer:
 * event ordering, the sharded per-lane event heaps, the generational
 * arena, and a whole-controller determinism stress that pins the
 * lane-layout-invariance contract (execution order depends only on
 * (when, seq), never on how events are distributed across lanes).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <tuple>
#include <vector>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "obs/trace.h"
#include "pcie/mmio.h"
#include "sim/arena.h"
#include "sim/bandwidth_server.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"

namespace nesc::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_TRUE(sim.idle());
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimestampOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(30, [&]() { order.push_back(3); });
    sim.schedule_at(10, [&]() { order.push_back(1); });
    sim.schedule_at(20, [&]() { order.push_back(2); });
    sim.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoAmongEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule_at(100, [&order, i]() { order.push_back(i); });
    sim.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative)
{
    Simulator sim;
    sim.schedule_at(50, [] {});
    sim.run_until_idle();
    Time fired_at = 0;
    sim.schedule_in(25, [&]() { fired_at = sim.now(); });
    sim.run_until_idle();
    EXPECT_EQ(fired_at, 75u);
}

TEST(Simulator, PastSchedulingClampsToNow)
{
    Simulator sim;
    sim.schedule_at(100, [] {});
    sim.run_until_idle();
    bool fired = false;
    sim.schedule_at(10, [&]() { fired = true; }); // in the past
    sim.run_until_idle();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            sim.schedule_in(5, chain);
    };
    sim.schedule_at(0, chain);
    sim.run_until_idle();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), 45u);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent)
{
    Simulator sim;
    bool fired = false;
    sim.schedule_at(10, [&]() { fired = true; });
    sim.run_until(100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents)
{
    Simulator sim;
    bool fired = false;
    sim.schedule_at(200, [&]() { fired = true; });
    sim.run_until(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), 100u);
    sim.run_until_idle();
    EXPECT_TRUE(fired);
}

TEST(Simulator, AdvanceExecutesWindowedEvents)
{
    Simulator sim;
    int count = 0;
    sim.schedule_at(5, [&]() { ++count; });
    sim.schedule_at(15, [&]() { ++count; });
    sim.advance(10);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, ReentrantSteppingFromEvent)
{
    // Drivers block synchronously by stepping the simulator from
    // within an event (e.g. fault service inside an IRQ). The engine
    // must tolerate nested step() calls.
    Simulator sim;
    bool inner_fired = false;
    bool outer_done = false;
    sim.schedule_at(10, [&]() {
        sim.schedule_in(5, [&]() { inner_fired = true; });
        while (!inner_fired)
            ASSERT_TRUE(sim.step());
        outer_done = true;
    });
    sim.run_until_idle();
    EXPECT_TRUE(inner_fired);
    EXPECT_TRUE(outer_done);
    EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule_in(i, [] {});
    sim.run_until_idle();
    EXPECT_EQ(sim.events_executed(), 7u);
}

// --- BandwidthServer ----------------------------------------------------

TEST(BandwidthServer, LatencyOnlyWhenInfinitelyFast)
{
    BandwidthServer server(0, 100);
    EXPECT_EQ(server.acquire(0, 4096), 100u);
    EXPECT_EQ(server.acquire(0, 1 << 20), 100u);
}

TEST(BandwidthServer, TransferTimeMatchesRate)
{
    BandwidthServer server(1'000'000'000, 0); // 1 GB/s
    EXPECT_EQ(server.acquire(0, 1'000'000), 1'000'000u); // 1 MB -> 1 ms
}

TEST(BandwidthServer, SerializesBackToBackTransfers)
{
    BandwidthServer server(1'000'000'000, 50);
    const Time first = server.acquire(0, 1'000'000);
    const Time second = server.acquire(0, 1'000'000);
    EXPECT_EQ(first, 1'000'000u + 50u);
    // Second transfer queues behind the first's occupancy.
    EXPECT_EQ(second, 2'000'000u + 50u);
}

TEST(BandwidthServer, IdleGapsAreNotCharged)
{
    BandwidthServer server(1'000'000'000, 0);
    (void)server.acquire(0, 1'000'000);
    // Arrives long after the first finished: no queueing.
    EXPECT_EQ(server.acquire(10'000'000, 1'000'000), 11'000'000u);
}

TEST(BandwidthServer, PeekDoesNotBook)
{
    BandwidthServer server(1'000'000'000, 0);
    const Time peeked = server.peek(0, 1'000'000);
    EXPECT_EQ(peeked, 1'000'000u);
    EXPECT_EQ(server.busy_until(), 0u);
    EXPECT_EQ(server.acquire(0, 1'000'000), peeked);
}

TEST(BandwidthServer, TracksTotals)
{
    BandwidthServer server(1'000'000, 0);
    (void)server.acquire(0, 100);
    (void)server.acquire(0, 200);
    EXPECT_EQ(server.total_bytes(), 300u);
    EXPECT_EQ(server.total_transfers(), 2u);
    server.reset();
    EXPECT_EQ(server.total_bytes(), 0u);
    EXPECT_EQ(server.busy_until(), 0u);
}

TEST(Callback, MoveOnlyCapturesWork)
{
    // The event-queue callback must carry move-only state (the DMA
    // layer captures buffers); std::function could not.
    auto data = std::make_unique<int>(41);
    int result = 0;
    Callback cb([d = std::move(data), &result]() { result = *d + 1; });
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(result, 42);
}

TEST(Callback, LargeCaptureFallsBackToHeap)
{
    // A capture bigger than the inline buffer still works (heap path).
    struct Big {
        std::byte bytes[256]{};
    } big;
    big.bytes[0] = std::byte{7};
    int got = 0;
    Callback cb([big, &got]() { got = static_cast<int>(big.bytes[0]); });
    Callback moved = std::move(cb);
    moved();
    EXPECT_EQ(got, 7);
}

TEST(Callback, MoveTransfersOwnership)
{
    int calls = 0;
    Callback a([&calls]() { ++calls; });
    Callback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    b = Callback([&calls]() { calls += 10; });
    b();
    EXPECT_EQ(calls, 11);
}

TEST(Simulator, ReserveAndEventAccounting)
{
    Simulator sim;
    sim.reserve(10'000);
    const std::uint64_t before = Simulator::total_events_executed();
    const std::uint64_t executed_before = sim.events_executed();
    for (int i = 0; i < 100; ++i)
        sim.schedule_at(i, []() {});
    sim.run_until_idle();
    EXPECT_EQ(sim.events_executed() - executed_before, 100u);
    EXPECT_GE(Simulator::total_events_executed() - before, 100u);
}

// --- Event lanes --------------------------------------------------------

TEST(SimulatorLanes, TieBreakAcrossLanesFollowsGlobalScheduleOrder)
{
    // Events at the same timestamp on DIFFERENT lanes must execute in
    // schedule order, exactly as if a single FIFO heap held them all.
    Simulator sim;
    const LaneId a = sim.register_lane();
    const LaneId b = sim.register_lane();
    std::vector<int> order;
    sim.schedule_at_lane(b, 100, [&]() { order.push_back(0); });
    sim.schedule_at_lane(a, 100, [&]() { order.push_back(1); });
    sim.schedule_at(100, [&]() { order.push_back(2); }); // default lane
    sim.schedule_at_lane(b, 100, [&]() { order.push_back(3); });
    sim.schedule_at_lane(a, 50, [&]() { order.push_back(-1); });
    sim.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(SimulatorLanes, InterleavedTimestampsMergeAcrossLanes)
{
    Simulator sim;
    const LaneId a = sim.register_lane();
    const LaneId b = sim.register_lane();
    std::vector<Time> fired;
    for (Time t : {30u, 10u, 50u})
        sim.schedule_at_lane(a, t, [&, t]() { fired.push_back(t); });
    for (Time t : {40u, 20u, 60u})
        sim.schedule_at_lane(b, t, [&, t]() { fired.push_back(t); });
    sim.run_until_idle();
    EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30, 40, 50, 60}));
    EXPECT_EQ(sim.now(), 60u);
}

TEST(SimulatorLanes, ReleasedLaneDrainsThenRecycles)
{
    Simulator sim;
    const LaneId lane = sim.register_lane();
    EXPECT_EQ(sim.lane_count(), 2u); // default + lane
    int fired = 0;
    sim.schedule_at_lane(lane, 10, [&]() { ++fired; });
    sim.schedule_at_lane(lane, 20, [&]() { ++fired; });
    sim.release_lane(lane); // events already scheduled still drain
    sim.run_until_idle();
    EXPECT_EQ(fired, 2);
    // The drained lane id is recycled by the next registration.
    const LaneId next = sim.register_lane();
    EXPECT_EQ(next, lane);
    EXPECT_EQ(sim.lane_count(), 2u);
}

TEST(SimulatorLanes, EmptyLaneReleasesImmediately)
{
    Simulator sim;
    const LaneId lane = sim.register_lane();
    sim.release_lane(lane);
    EXPECT_EQ(sim.lane_count(), 1u);
    EXPECT_EQ(sim.register_lane(), lane);
}

TEST(SimulatorLanes, ManyLanesStayFifoAtOneTimestamp)
{
    // The DeleteVf/FnReset churn pattern: register, use, release, and
    // through it all equal-timestamp FIFO must hold globally.
    Simulator sim;
    std::vector<LaneId> lanes;
    for (int i = 0; i < 8; ++i)
        lanes.push_back(sim.register_lane());
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        sim.schedule_at_lane(lanes[static_cast<std::size_t>(i) % 8], 7,
                             [&order, i]() { order.push_back(i); });
    sim.run_until_idle();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    for (LaneId lane : lanes)
        sim.release_lane(lane);
    EXPECT_EQ(sim.lane_count(), 1u);
}

// --- Generational arena -------------------------------------------------

TEST(Arena, AcquireGetReleaseRoundTrip)
{
    Arena<int> arena;
    const auto h = arena.acquire();
    ASSERT_NE(arena.get(h), nullptr);
    *arena.get(h) = 42;
    EXPECT_EQ(arena.live(), 1u);
    arena.release(h);
    EXPECT_EQ(arena.live(), 0u);
    EXPECT_EQ(arena.get(h), nullptr); // stale handle: teardown idiom
}

TEST(Arena, ReuseNeverAliasesLiveCommands)
{
    // The slot is recycled, but a handle from the previous occupancy
    // must never resolve to the new occupant.
    Arena<int> arena;
    const auto old = arena.acquire();
    *arena.get(old) = 1;
    arena.release(old);
    const auto fresh = arena.acquire();
    ASSERT_EQ(fresh.index, old.index); // same slot reused...
    EXPECT_NE(fresh.generation, old.generation);
    *arena.get(fresh) = 2;
    EXPECT_EQ(arena.get(old), nullptr); // ...but the old ref is stale
    EXPECT_EQ(*arena.get(fresh), 2);
}

TEST(Arena, ReleaseIsIdempotent)
{
    Arena<int> arena;
    const auto a = arena.acquire();
    arena.release(a);
    arena.release(a); // double release: no-op, must not corrupt
    const auto b = arena.acquire();
    const auto c = arena.acquire();
    EXPECT_NE(b.index, c.index); // freelist holds no duplicate
    EXPECT_EQ(arena.live(), 2u);
}

TEST(Arena, RecycledSlotKeepsCapacityAndGrowthIsStable)
{
    Arena<std::vector<int>> arena;
    auto h = arena.acquire();
    arena.get(h)->assign(100, 7);
    const std::size_t cap = arena.get(h)->capacity();
    arena.release(h);
    auto h2 = arena.acquire();
    // Recycle-not-reconstruct: the vector keeps its buffer.
    EXPECT_GE(arena.get(h2)->capacity(), cap);
    arena.get(h2)->clear();
    // Pointer stability across chunk growth.
    std::vector<int> *p = arena.get(h2);
    std::vector<Arena<std::vector<int>>::Handle> handles;
    for (int i = 0; i < 500; ++i)
        handles.push_back(arena.acquire());
    EXPECT_EQ(arena.get(h2), p);
    EXPECT_GE(arena.capacity(), 501u);
}

TEST(Arena, HandlesAcrossManyChurnsStayUnique)
{
    Arena<std::uint64_t> arena;
    std::vector<Arena<std::uint64_t>::Handle> live;
    std::uint64_t next = 0;
    std::mt19937 rng(7);
    for (int round = 0; round < 2000; ++round) {
        if (live.empty() || rng() % 2 == 0) {
            auto h = arena.acquire();
            *arena.get(h) = next++;
            live.push_back(h);
        } else {
            const std::size_t pick = rng() % live.size();
            arena.release(live[pick]);
            EXPECT_EQ(arena.get(live[pick]), nullptr);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        }
        EXPECT_EQ(arena.live(), live.size());
    }
    // Every surviving handle still resolves, to a distinct object.
    std::vector<std::uint64_t> seen;
    for (auto h : live)
        seen.push_back(*arena.get(h));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

// --- Whole-controller determinism stress --------------------------------

namespace determinism {

/** One retired request in the completion timeline. */
struct Retired {
    Time at;
    pcie::FunctionId fn;
    std::uint64_t request;
    ctrl::CompletionStatus status;

    bool operator==(const Retired &) const = default;
};

struct RunResult {
    std::vector<Retired> timeline;
    std::vector<obs::SpanEvent> spans;
};

bool
same_spans(const std::vector<obs::SpanEvent> &a,
           const std::vector<obs::SpanEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto ta = std::tie(a[i].start, a[i].dur, a[i].tag,
                                 a[i].aux, a[i].fn, a[i].stage);
        const auto tb = std::tie(b[i].start, b[i].dur, b[i].tag,
                                 b[i].aux, b[i].fn, b[i].stage);
        if (ta != tb)
            return false;
    }
    return true;
}

/**
 * 4-VF mixed workload: each VF keeps a queue depth of 4 outstanding
 * requests (reads, writes, and reads of unmapped holes) generated from
 * @p seed, until 32 requests per VF have retired. Returns the full
 * completion timeline and every controller trace span.
 */
RunResult
run_workload(std::uint64_t seed, std::uint32_t event_lanes)
{
    pcie::HostMemory host_memory(64 << 20);
    storage::MemBlockDeviceConfig dev_cfg;
    dev_cfg.capacity_bytes = 16 << 20;
    storage::MemBlockDevice device(dev_cfg);
    Simulator sim;
    pcie::InterruptController irq(sim);
    ctrl::ControllerConfig cfg;
    cfg.max_vfs = 4;
    cfg.event_lanes = event_lanes;
    ctrl::Controller controller(sim, host_memory, device, irq, cfg);
    pcie::BarPageRouter bar(controller, 4096,
                            controller.num_functions());
    controller.enable_tracing(1 << 16);

    constexpr std::uint64_t kSizeBlocks = 256;
    std::vector<extent::ExtentTreeImage> trees;
    auto pf_write = [&](std::uint64_t offset, std::uint64_t value) {
        ASSERT_TRUE(
            controller.mmio_write(0, offset, value, 8).is_ok());
    };
    std::vector<std::unique_ptr<drv::FunctionDriver>> drivers;
    for (pcie::FunctionId fn = 1; fn <= 4; ++fn) {
        // First half mapped, second half holes (reads zero-fill,
        // writes fault — the driver surfaces those as failures).
        extent::ExtentList extents{
            {0, kSizeBlocks / 2, 3000ULL + fn * 400}};
        auto image =
            extent::ExtentTreeImage::build(host_memory, extents);
        EXPECT_TRUE(image.is_ok());
        trees.push_back(std::move(image).value());
        pf_write(ctrl::reg::kMgmtVfId, fn);
        pf_write(ctrl::reg::kMgmtExtentRoot, trees.back().root());
        pf_write(ctrl::reg::kMgmtDeviceSize, kSizeBlocks);
        pf_write(ctrl::reg::kMgmtCommand,
                 static_cast<std::uint64_t>(
                     ctrl::MgmtCommand::kCreateVf));
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim, host_memory, bar, irq, fn);
        EXPECT_TRUE(driver->init().is_ok());
        drivers.push_back(std::move(driver));
    }

    RunResult result;
    std::mt19937_64 rng(seed);
    constexpr int kDepth = 4;
    constexpr std::uint64_t kRequestsPerVf = 32;
    std::uint64_t next_request = 0;
    std::vector<std::uint64_t> issued(4, 0);
    std::vector<pcie::HostAddr> buffers;
    for (int i = 0; i < 4; ++i)
        buffers.push_back(*host_memory.alloc(16 * 1024, 4096));

    std::function<void(std::size_t)> submit_one =
        [&](std::size_t vf_idx) {
            if (issued[vf_idx] >= kRequestsPerVf)
                return;
            ++issued[vf_idx];
            const std::uint64_t request = next_request++;
            const bool read = rng() % 3 != 0; // 2:1 read:write mix
            const std::uint32_t nblocks =
                1 + static_cast<std::uint32_t>(rng() % 4);
            // Reads roam the whole device (holes included); writes
            // stay on the mapped half so they retire kOk.
            const std::uint64_t span =
                (read ? kSizeBlocks : kSizeBlocks / 2) - nblocks;
            const std::uint64_t vlba = rng() % span;
            const auto status = drivers[vf_idx]->submit(
                read ? ctrl::Opcode::kRead : ctrl::Opcode::kWrite,
                vlba, nblocks, buffers[vf_idx],
                [&result, &sim, &submit_one, vf_idx,
                 request](ctrl::CompletionStatus s) {
                    result.timeline.push_back(
                        {sim.now(),
                         static_cast<pcie::FunctionId>(vf_idx + 1),
                         request, s});
                    submit_one(vf_idx);
                });
            ASSERT_TRUE(status.is_ok());
        };
    for (std::size_t vf = 0; vf < 4; ++vf)
        for (int d = 0; d < kDepth; ++d)
            submit_one(vf);
    sim.run_until_idle();

    EXPECT_EQ(result.timeline.size(), 4 * kRequestsPerVf);
    result.spans = controller.tracer().events();
    EXPECT_FALSE(result.spans.empty());
    return result;
}

TEST(SimDeterminism, MixedWorkloadIsSeedStableAcrossLaneLayouts)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        // Same seed, same (default, lane-per-function) layout: runs
        // must match event for event.
        RunResult a = run_workload(seed, 0);
        RunResult b = run_workload(seed, 0);
        EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
        EXPECT_TRUE(same_spans(a.spans, b.spans)) << "seed " << seed;
        // Different lane layout (3 shared lanes, functions folded
        // fn % 3): the determinism contract says lane assignment can
        // never change simulated results.
        RunResult c = run_workload(seed, 3);
        EXPECT_EQ(a.timeline, c.timeline) << "seed " << seed;
        EXPECT_TRUE(same_spans(a.spans, c.spans)) << "seed " << seed;
    }
}

} // namespace determinism

} // namespace
} // namespace nesc::sim
