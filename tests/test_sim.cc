/**
 * @file
 * Unit tests for the discrete-event simulator and BandwidthServer.
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/bandwidth_server.h"
#include "sim/simulator.h"

namespace nesc::sim {
namespace {

TEST(Simulator, StartsAtZeroAndIdle)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_TRUE(sim.idle());
    EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimestampOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(30, [&]() { order.push_back(3); });
    sim.schedule_at(10, [&]() { order.push_back(1); });
    sim.schedule_at(20, [&]() { order.push_back(2); });
    sim.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoAmongEqualTimestamps)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sim.schedule_at(100, [&order, i]() { order.push_back(i); });
    sim.run_until_idle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative)
{
    Simulator sim;
    sim.schedule_at(50, [] {});
    sim.run_until_idle();
    Time fired_at = 0;
    sim.schedule_in(25, [&]() { fired_at = sim.now(); });
    sim.run_until_idle();
    EXPECT_EQ(fired_at, 75u);
}

TEST(Simulator, PastSchedulingClampsToNow)
{
    Simulator sim;
    sim.schedule_at(100, [] {});
    sim.run_until_idle();
    bool fired = false;
    sim.schedule_at(10, [&]() { fired = true; }); // in the past
    sim.run_until_idle();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            sim.schedule_in(5, chain);
    };
    sim.schedule_at(0, chain);
    sim.run_until_idle();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(sim.now(), 45u);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent)
{
    Simulator sim;
    bool fired = false;
    sim.schedule_at(10, [&]() { fired = true; });
    sim.run_until(100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, RunUntilDoesNotExecuteLaterEvents)
{
    Simulator sim;
    bool fired = false;
    sim.schedule_at(200, [&]() { fired = true; });
    sim.run_until(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.now(), 100u);
    sim.run_until_idle();
    EXPECT_TRUE(fired);
}

TEST(Simulator, AdvanceExecutesWindowedEvents)
{
    Simulator sim;
    int count = 0;
    sim.schedule_at(5, [&]() { ++count; });
    sim.schedule_at(15, [&]() { ++count; });
    sim.advance(10);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, ReentrantSteppingFromEvent)
{
    // Drivers block synchronously by stepping the simulator from
    // within an event (e.g. fault service inside an IRQ). The engine
    // must tolerate nested step() calls.
    Simulator sim;
    bool inner_fired = false;
    bool outer_done = false;
    sim.schedule_at(10, [&]() {
        sim.schedule_in(5, [&]() { inner_fired = true; });
        while (!inner_fired)
            ASSERT_TRUE(sim.step());
        outer_done = true;
    });
    sim.run_until_idle();
    EXPECT_TRUE(inner_fired);
    EXPECT_TRUE(outer_done);
    EXPECT_EQ(sim.now(), 15u);
}

TEST(Simulator, CountsExecutedEvents)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule_in(i, [] {});
    sim.run_until_idle();
    EXPECT_EQ(sim.events_executed(), 7u);
}

// --- BandwidthServer ----------------------------------------------------

TEST(BandwidthServer, LatencyOnlyWhenInfinitelyFast)
{
    BandwidthServer server(0, 100);
    EXPECT_EQ(server.acquire(0, 4096), 100u);
    EXPECT_EQ(server.acquire(0, 1 << 20), 100u);
}

TEST(BandwidthServer, TransferTimeMatchesRate)
{
    BandwidthServer server(1'000'000'000, 0); // 1 GB/s
    EXPECT_EQ(server.acquire(0, 1'000'000), 1'000'000u); // 1 MB -> 1 ms
}

TEST(BandwidthServer, SerializesBackToBackTransfers)
{
    BandwidthServer server(1'000'000'000, 50);
    const Time first = server.acquire(0, 1'000'000);
    const Time second = server.acquire(0, 1'000'000);
    EXPECT_EQ(first, 1'000'000u + 50u);
    // Second transfer queues behind the first's occupancy.
    EXPECT_EQ(second, 2'000'000u + 50u);
}

TEST(BandwidthServer, IdleGapsAreNotCharged)
{
    BandwidthServer server(1'000'000'000, 0);
    (void)server.acquire(0, 1'000'000);
    // Arrives long after the first finished: no queueing.
    EXPECT_EQ(server.acquire(10'000'000, 1'000'000), 11'000'000u);
}

TEST(BandwidthServer, PeekDoesNotBook)
{
    BandwidthServer server(1'000'000'000, 0);
    const Time peeked = server.peek(0, 1'000'000);
    EXPECT_EQ(peeked, 1'000'000u);
    EXPECT_EQ(server.busy_until(), 0u);
    EXPECT_EQ(server.acquire(0, 1'000'000), peeked);
}

TEST(BandwidthServer, TracksTotals)
{
    BandwidthServer server(1'000'000, 0);
    (void)server.acquire(0, 100);
    (void)server.acquire(0, 200);
    EXPECT_EQ(server.total_bytes(), 300u);
    EXPECT_EQ(server.total_transfers(), 2u);
    server.reset();
    EXPECT_EQ(server.total_bytes(), 0u);
    EXPECT_EQ(server.busy_until(), 0u);
}

TEST(Callback, MoveOnlyCapturesWork)
{
    // The event-queue callback must carry move-only state (the DMA
    // layer captures buffers); std::function could not.
    auto data = std::make_unique<int>(41);
    int result = 0;
    Callback cb([d = std::move(data), &result]() { result = *d + 1; });
    ASSERT_TRUE(static_cast<bool>(cb));
    cb();
    EXPECT_EQ(result, 42);
}

TEST(Callback, LargeCaptureFallsBackToHeap)
{
    // A capture bigger than the inline buffer still works (heap path).
    struct Big {
        std::byte bytes[256]{};
    } big;
    big.bytes[0] = std::byte{7};
    int got = 0;
    Callback cb([big, &got]() { got = static_cast<int>(big.bytes[0]); });
    Callback moved = std::move(cb);
    moved();
    EXPECT_EQ(got, 7);
}

TEST(Callback, MoveTransfersOwnership)
{
    int calls = 0;
    Callback a([&calls]() { ++calls; });
    Callback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    b();
    b = Callback([&calls]() { calls += 10; });
    b();
    EXPECT_EQ(calls, 11);
}

TEST(Simulator, ReserveAndEventAccounting)
{
    Simulator sim;
    sim.reserve(10'000);
    const std::uint64_t before = Simulator::total_events_executed();
    const std::uint64_t executed_before = sim.events_executed();
    for (int i = 0; i < 100; ++i)
        sim.schedule_at(i, []() {});
    sim.run_until_idle();
    EXPECT_EQ(sim.events_executed() - executed_before, 100u);
    EXPECT_GE(Simulator::total_events_executed() - before, 100u);
}

} // namespace
} // namespace nesc::sim
