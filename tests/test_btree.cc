/**
 * @file
 * Unit and property tests for the disk-resident B+tree index.
 */
#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"
#include "virt/testbed.h"
#include "workloads/btree.h"

namespace nesc::wl {
namespace {

class BTreeTest : public ::testing::Test {
  protected:
    BTreeTest()
    {
        virt::TestbedConfig config;
        config.device.capacity_bytes = 64ULL << 20;
        config.host_memory_bytes = 64ULL << 20;
        bed_ = std::move(virt::Testbed::create(config)).value();
        vm_ = std::move(bed_->create_nesc_guest("/bt.img", 16384, true))
                  .value();
        EXPECT_TRUE(vm_->format_fs().is_ok());
    }

    std::unique_ptr<BTreeIndex>
    make_tree(const std::string &path = "/index.btree")
    {
        BTreeConfig config;
        config.path = path;
        auto tree = BTreeIndex::create(bed_->sim(), *vm_, config);
        EXPECT_TRUE(tree.is_ok()) << tree.status().to_string();
        return std::move(tree).value();
    }

    std::unique_ptr<virt::Testbed> bed_;
    std::unique_ptr<virt::GuestVm> vm_;
};

TEST_F(BTreeTest, EmptyTreeLookupsMiss)
{
    auto tree = make_tree();
    auto found = tree->lookup(42);
    ASSERT_TRUE(found.is_ok());
    EXPECT_FALSE(found->has_value());
    EXPECT_EQ(tree->size(), 0u);
    EXPECT_EQ(tree->height(), 1u);
}

TEST_F(BTreeTest, InsertLookupRoundTrip)
{
    auto tree = make_tree();
    ASSERT_TRUE(tree->insert(10, 100).is_ok());
    ASSERT_TRUE(tree->insert(5, 50).is_ok());
    ASSERT_TRUE(tree->insert(20, 200).is_ok());
    EXPECT_EQ(tree->size(), 3u);
    EXPECT_EQ(**tree->lookup(10), 100u);
    EXPECT_EQ(**tree->lookup(5), 50u);
    EXPECT_EQ(**tree->lookup(20), 200u);
    EXPECT_FALSE((*tree->lookup(15)).has_value());
}

TEST_F(BTreeTest, DuplicateInsertRejected)
{
    auto tree = make_tree();
    ASSERT_TRUE(tree->insert(7, 70).is_ok());
    EXPECT_EQ(tree->insert(7, 71).code(),
              util::ErrorCode::kAlreadyExists);
    EXPECT_EQ(**tree->lookup(7), 70u);
    EXPECT_EQ(tree->size(), 1u);
}

TEST_F(BTreeTest, EraseRemovesAndAllowsReinsert)
{
    auto tree = make_tree();
    ASSERT_TRUE(tree->insert(3, 30).is_ok());
    ASSERT_TRUE(tree->erase(3).is_ok());
    EXPECT_FALSE((*tree->lookup(3)).has_value());
    EXPECT_EQ(tree->erase(3).code(), util::ErrorCode::kNotFound);
    ASSERT_TRUE(tree->insert(3, 31).is_ok());
    EXPECT_EQ(**tree->lookup(3), 31u);
}

TEST_F(BTreeTest, GrowsThroughLeafAndRootSplits)
{
    auto tree = make_tree();
    // One 4 KiB leaf holds ~254 entries; 2000 forces splits and at
    // least one root split.
    for (std::uint64_t k = 0; k < 2000; ++k)
        ASSERT_TRUE(tree->insert(k * 3, k).is_ok()) << k;
    EXPECT_GT(tree->height(), 1u);
    EXPECT_GT(tree->stats().splits, 4u);
    EXPECT_EQ(tree->size(), 2000u);
    for (std::uint64_t k = 0; k < 2000; ++k) {
        auto found = tree->lookup(k * 3);
        ASSERT_TRUE(found.is_ok());
        ASSERT_TRUE(found->has_value()) << k;
        ASSERT_EQ(**found, k);
        EXPECT_FALSE((*tree->lookup(k * 3 + 1)).has_value());
    }
}

TEST_F(BTreeTest, ScanFollowsLeafChain)
{
    auto tree = make_tree();
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_TRUE(tree->insert(k * 2, k).is_ok());
    auto scan = tree->scan(500, 100);
    ASSERT_TRUE(scan.is_ok());
    ASSERT_EQ(scan->size(), 100u);
    for (std::size_t i = 0; i < scan->size(); ++i) {
        EXPECT_EQ((*scan)[i].first, 500 + i * 2);
        EXPECT_EQ((*scan)[i].second, (500 + i * 2) / 2);
    }
    // Scan past the end returns what exists.
    auto tail = tree->scan(1990, 100);
    ASSERT_TRUE(tail.is_ok());
    EXPECT_EQ(tail->size(), 5u); // 1990..1998
}

TEST_F(BTreeTest, PersistsAcrossFlushAndReopen)
{
    BTreeConfig config;
    config.path = "/persist.btree";
    {
        auto tree = BTreeIndex::create(bed_->sim(), *vm_, config);
        ASSERT_TRUE(tree.is_ok());
        for (std::uint64_t k = 0; k < 600; ++k)
            ASSERT_TRUE((*tree)->insert(k, k * 10).is_ok());
        ASSERT_TRUE((*tree)->flush().is_ok());
    }
    auto tree = BTreeIndex::open(bed_->sim(), *vm_, config);
    ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
    EXPECT_EQ((*tree)->size(), 600u);
    for (std::uint64_t k = 0; k < 600; ++k)
        ASSERT_EQ(**(*tree)->lookup(k), k * 10) << k;
}

class BTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeProperty, RandomOpsMatchStdMap)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto vm =
        std::move(bed->create_nesc_guest("/btp.img", 16384, true)).value();
    ASSERT_TRUE(vm->format_fs().is_ok());
    BTreeConfig tree_config;
    tree_config.pool_pages = 8; // small pool: force eviction traffic
    auto tree =
        std::move(BTreeIndex::create(bed->sim(), *vm, tree_config)).value();

    util::Rng rng(GetParam());
    std::map<std::uint64_t, std::uint64_t> reference;
    for (int op = 0; op < 3000; ++op) {
        const std::uint64_t key = rng.next_below(800); // dense: collisions
        const int kind = static_cast<int>(rng.next_below(10));
        if (kind < 5) { // insert
            const std::uint64_t value = rng.next();
            auto status = tree->insert(key, value);
            if (reference.contains(key)) {
                ASSERT_EQ(status.code(), util::ErrorCode::kAlreadyExists);
            } else {
                ASSERT_TRUE(status.is_ok());
                reference[key] = value;
            }
        } else if (kind < 8) { // lookup
            auto found = tree->lookup(key);
            ASSERT_TRUE(found.is_ok());
            auto it = reference.find(key);
            if (it == reference.end()) {
                ASSERT_FALSE(found->has_value()) << "key " << key;
            } else {
                ASSERT_TRUE(found->has_value()) << "key " << key;
                ASSERT_EQ(**found, it->second);
            }
        } else { // erase
            auto status = tree->erase(key);
            if (reference.erase(key))
                ASSERT_TRUE(status.is_ok());
            else
                ASSERT_EQ(status.code(), util::ErrorCode::kNotFound);
        }
        ASSERT_EQ(tree->size(), reference.size());
    }

    // Full-content comparison via a scan.
    auto all = tree->scan(0, reference.size() + 10);
    ASSERT_TRUE(all.is_ok());
    ASSERT_EQ(all->size(), reference.size());
    auto it = reference.begin();
    for (const auto &[key, value] : *all) {
        ASSERT_EQ(key, it->first);
        ASSERT_EQ(value, it->second);
        ++it;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeProperty,
                         ::testing::Values(101, 202, 303));

} // namespace
} // namespace nesc::wl
