/**
 * @file
 * Regression tests pinning the paper's qualitative results (the
 * figures' shapes) at reduced scale, so a change that breaks the
 * reproduction fails CI rather than silently skewing the benches.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "blocklayer/device_block_io.h"
#include "blocklayer/os_block_stack.h"
#include "storage/mem_block_device.h"
#include "virt/testbed.h"
#include "virt/virtual_disk.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

virt::TestbedConfig
small_config()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 96ULL << 20;
    config.host_memory_bytes = 96ULL << 20;
    return config;
}

struct Measured {
    double host_us, nesc_us, virtio_us, emu_us;
    double host_bw, nesc_bw, virtio_bw, emu_bw;
};

/**
 * Dereferencing an error Result is undefined (and NDEBUG disarms its
 * assert), which once let an out-of-range dd "pass" this suite on
 * stale stack garbage — fail loudly instead.
 */
wl::DdResult
must_dd(util::Result<wl::DdResult> result)
{
    if (!result.is_ok()) {
        ADD_FAILURE() << "dd run failed: "
                      << result.status().to_string();
        std::abort();
    }
    return *std::move(result);
}

Measured
measure(virt::Testbed &bed, virt::GuestVm &nesc_vm, virt::GuestVm &vt_vm,
        virt::GuestVm &emu_vm, std::uint64_t bs, bool write)
{
    wl::DdConfig dd;
    dd.request_bytes = bs;
    // 32 requests, but capped so large-block runs still fit the 32 MiB
    // nesc guest disk and the offset-64-MiB slice of the raw device.
    dd.total_bytes = std::min<std::uint64_t>(32 * bs, 16ULL << 20);
    dd.write = write;
    auto host = must_dd(wl::run_dd_raw(bed.sim(), bed.host_raw_io(), dd));
    auto ns = must_dd(wl::run_dd_raw(bed.sim(), nesc_vm.raw_disk(), dd));
    dd.start_offset = 64ULL << 20;
    auto vt = must_dd(wl::run_dd_raw(bed.sim(), vt_vm.raw_disk(), dd));
    auto em = must_dd(wl::run_dd_raw(bed.sim(), emu_vm.raw_disk(), dd));
    return Measured{host.mean_latency_us, ns.mean_latency_us,
                    vt.mean_latency_us,  em.mean_latency_us,
                    host.bandwidth_mb_s, ns.bandwidth_mb_s,
                    vt.bandwidth_mb_s,   em.bandwidth_mb_s};
}

class PaperShapes : public ::testing::Test {
  protected:
    PaperShapes()
    {
        bed_ = std::move(virt::Testbed::create(small_config())).value();
        nesc_vm_ = std::move(bed_->create_nesc_guest("/shape.img",
                                                     32768, true))
                       .value();
        virtio_vm_ = std::move(bed_->create_virtio_guest_raw()).value();
        emu_vm_ = std::move(bed_->create_emulated_guest_raw()).value();
    }

    std::unique_ptr<virt::Testbed> bed_;
    std::unique_ptr<virt::GuestVm> nesc_vm_;
    std::unique_ptr<virt::GuestVm> virtio_vm_;
    std::unique_ptr<virt::GuestVm> emu_vm_;
};

TEST_F(PaperShapes, Fig9SmallBlockLatencyRatios)
{
    // Paper: NeSC ~= Host; >6x faster than virtio; >20x faster than
    // emulation for accesses under 4 KiB (we assert >5x / >15x to
    // leave calibration headroom).
    for (std::uint64_t bs : {512u, 1024u, 2048u}) {
        const Measured m = measure(*bed_, *nesc_vm_, *virtio_vm_,
                                   *emu_vm_, bs, false);
        EXPECT_LT(m.nesc_us, m.host_us * 1.10) << bs;
        EXPECT_GT(m.virtio_us, m.nesc_us * 5.0) << bs;
        EXPECT_GT(m.emu_us, m.nesc_us * 15.0) << bs;
    }
}

TEST_F(PaperShapes, Fig10MidBlockBandwidthRatios)
{
    // Paper: >2.5x virtio for <16 KiB reads; ~3x for 32 KiB writes;
    // NeSC within ~10% of Host.
    const Measured r8k = measure(*bed_, *nesc_vm_, *virtio_vm_,
                                 *emu_vm_, 8192, false);
    EXPECT_GT(r8k.nesc_bw, r8k.virtio_bw * 2.5);
    EXPECT_GT(r8k.nesc_bw, r8k.host_bw * 0.9);
    const Measured w32k = measure(*bed_, *nesc_vm_, *virtio_vm_,
                                  *emu_vm_, 32768, true);
    EXPECT_GT(w32k.nesc_bw, w32k.virtio_bw * 2.2);
}

TEST_F(PaperShapes, Fig10LargeBlockConvergence)
{
    // Paper: NeSC and virtio bandwidths converge for >=2 MiB blocks.
    const Measured small = measure(*bed_, *nesc_vm_, *virtio_vm_,
                                   *emu_vm_, 32768, false);
    const Measured large = measure(*bed_, *nesc_vm_, *virtio_vm_,
                                   *emu_vm_, 2 << 20, false);
    const double small_ratio = small.nesc_bw / small.virtio_bw;
    const double large_ratio = large.nesc_bw / large.virtio_bw;
    EXPECT_GT(small_ratio, 2.0);
    EXPECT_LT(large_ratio, 1.3); // converged within 30%
}

TEST_F(PaperShapes, Fig2SpeedupGrowsWithDeviceBandwidth)
{
    const virt::CostModel costs;
    double prev = 0.0;
    for (std::uint64_t mbps : {100u, 800u, 3600u}) {
        sim::Simulator sim;
        storage::MemBlockDevice device(
            storage::MemBlockDeviceConfig::ramdisk(mbps * 1'000'000ULL,
                                                   32ULL << 20));
        blk::DeviceBlockIo device_io(sim, device);
        blk::OsStackConfig direct_cfg;
        direct_cfg.direct_io = true;
        blk::OsBlockStack direct(sim, device_io, "d", direct_cfg);
        blk::OsBlockStack hv(sim, device_io, "h", direct_cfg);
        virt::VirtioDisk virtio(sim, hv, costs);
        blk::OsBlockStack guest(sim, virtio, "g", direct_cfg);

        wl::DdConfig dd;
        dd.request_bytes = 256 * 1024;
        dd.total_bytes = 4ULL << 20;
        dd.write = true;
        auto d = *wl::run_dd_raw(sim, direct, dd);
        dd.start_offset = 16ULL << 20;
        auto v = *wl::run_dd_raw(sim, guest, dd);
        const double speedup = d.bandwidth_mb_s / v.bandwidth_mb_s;
        EXPECT_GT(speedup, prev) << mbps;
        prev = speedup;
    }
    EXPECT_GT(prev, 1.8); // ~2x at 3.6 GB/s (paper Fig. 2)
}

TEST_F(PaperShapes, Fig11FilesystemOverheadStructure)
{
    // Paper: FS adds a small ~constant to NeSC and a much larger one
    // to virtio; NeSC+FS is comparable to (here: at most) RAW virtio.
    ASSERT_TRUE(nesc_vm_->format_fs().is_ok());
    ASSERT_TRUE(virtio_vm_->format_fs().is_ok());

    auto fs_latency = [&](virt::GuestVm &vm, const char *name) {
        auto ino = vm.fs()->create(std::string("/f11-") + name, 0644);
        EXPECT_TRUE(ino.is_ok());
        wl::DdConfig dd;
        dd.request_bytes = 4096;
        dd.total_bytes = 24 * 4096;
        dd.write = true;
        return (*wl::run_dd_file(bed_->sim(), vm, *ino, dd))
            .mean_latency_us;
    };
    auto raw_latency = [&](virt::GuestVm &vm, std::uint64_t off) {
        wl::DdConfig dd;
        dd.request_bytes = 4096;
        dd.total_bytes = 24 * 4096;
        dd.write = true;
        dd.start_offset = off;
        return (*wl::run_dd_raw(bed_->sim(), vm.raw_disk(), dd))
            .mean_latency_us;
    };
    const double nesc_raw = raw_latency(*nesc_vm_, 8ULL << 20);
    const double nesc_fs = fs_latency(*nesc_vm_, "n");
    const double virtio_raw = raw_latency(*virtio_vm_, 64ULL << 20);
    const double virtio_fs = fs_latency(*virtio_vm_, "v");

    const double nesc_delta = nesc_fs - nesc_raw;
    const double virtio_delta = virtio_fs - virtio_raw;
    EXPECT_GT(nesc_delta, 0.0);
    EXPECT_GT(virtio_delta, nesc_delta * 3.0);
    EXPECT_GT(virtio_fs, nesc_fs * 4.0);   // paper: >4x below 8 KiB
    EXPECT_LT(nesc_fs, virtio_raw * 1.25); // NeSC+FS ~ raw virtio
}

} // namespace
} // namespace nesc
