/**
 * @file
 * Arbitration-plane tests: the EligibleSet bitmap (legacy-identical
 * visit order, O(words) scan cost), the deterministic token bucket
 * (burst + sustained-rate conformance), the legacy-WRR credit
 * semantics the golden figures depend on, DWRR share convergence, and
 * the O(1)-per-grant scan bound at 256 VFs.
 */
#include <gtest/gtest.h>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/arbiter.h"
#include "nesc/controller.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"
#include "workloads/dd.h"

namespace nesc::ctrl {
namespace {

// --- EligibleSet -----------------------------------------------------------

TEST(EligibleSet, AssignTestCount)
{
    EligibleSet set;
    set.resize(130);
    EXPECT_FALSE(set.any());
    set.assign(3, true);
    set.assign(70, true);
    set.assign(129, true);
    set.assign(70, true); // idempotent
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.test(70));
    set.assign(70, false);
    set.assign(70, false); // idempotent
    EXPECT_EQ(set.count(), 2u);
    EXPECT_FALSE(set.test(70));
}

TEST(EligibleSet, NextAfterVisitsCyclicAscending)
{
    EligibleSet set;
    set.resize(256);
    set.assign(3, true);
    set.assign(70, true);
    set.assign(130, true);
    EXPECT_EQ(set.next_after(3), 70);
    EXPECT_EQ(set.next_after(70), 130);
    EXPECT_EQ(set.next_after(130), 3); // wraps through 0
    EXPECT_EQ(set.next_after(200), 3);
    EXPECT_EQ(set.next_after(0), 3);
}

TEST(EligibleSet, NextAfterWrapsToSelf)
{
    // A full cycle may legitimately land back on the function that
    // held the turn — the legacy scan included it, so must the bitmap.
    EligibleSet set;
    set.resize(64);
    set.assign(5, true);
    EXPECT_EQ(set.next_after(5), 5);
    set.assign(63, true);
    set.assign(5, false);
    EXPECT_EQ(set.next_after(63), 63);
}

TEST(EligibleSet, NextAfterEmptyReturnsMinusOne)
{
    EligibleSet set;
    set.resize(64);
    EXPECT_EQ(set.next_after(0), -1);
    set.assign(9, true);
    set.assign(9, false);
    EXPECT_EQ(set.next_after(9), -1);
}

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucket, StartsFullAndEnforcesBurst)
{
    TokenBucket bucket;
    bucket.configure(1'000'000, 4096, 0);
    EXPECT_TRUE(bucket.limited());
    EXPECT_TRUE(bucket.ready(4096, 0)); // full burst available at once
    bucket.spend(4096);
    EXPECT_FALSE(bucket.ready(1, 0));
    // Tokens cap at burst no matter how long the bucket idles.
    EXPECT_TRUE(bucket.ready(4096, 1'000'000'000'000ull));
    EXPECT_FALSE(bucket.ready(4097, 1'000'000'000'000ull));
}

TEST(TokenBucket, SustainedRateIsExact)
{
    // 1000 bytes/s: one byte accrues every 10^6 ns, exactly.
    TokenBucket bucket;
    bucket.configure(1000, 500, 0);
    bucket.spend(500);
    EXPECT_EQ(bucket.ready_time(1, 0), 1'000'000u);
    EXPECT_FALSE(bucket.ready(1, 999'999));
    EXPECT_TRUE(bucket.ready(1, 1'000'000));
    // The fractional byte-nanosecond carry banks across refills: two
    // half-byte accruals make one whole byte, with nothing lost.
    bucket.configure(1000, 500, 0);
    bucket.spend(500);
    EXPECT_FALSE(bucket.ready(1, 500'000));
    EXPECT_TRUE(bucket.ready(1, 1'000'000));
    // ready_time rounds up to the next whole byte.
    bucket.configure(3, 100, 0);
    bucket.spend(100);
    const sim::Time t = bucket.ready_time(1, 0);
    EXPECT_EQ(t, (1'000'000'000u + 2) / 3);
}

TEST(TokenBucket, UnlimitedBypassesAccounting)
{
    TokenBucket bucket;
    EXPECT_FALSE(bucket.limited());
    EXPECT_TRUE(bucket.ready(1ull << 40, 0));
    EXPECT_EQ(bucket.ready_time(1ull << 40, 123), 123u);
}

// --- Controller-level arbitration -----------------------------------------

class ArbiterTest : public ::testing::Test {
  protected:
    ArbiterTest()
        : host_memory_(64 << 20), device_(device_config()), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_,
                      controller_config()),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    device_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 64 << 20;
        return cfg;
    }

    static ControllerConfig
    controller_config()
    {
        ControllerConfig cfg;
        cfg.max_vfs = 256;
        return cfg;
    }

    pcie::FunctionId
    create_vf(std::uint64_t plba_base, std::uint64_t size_blocks,
              pcie::FunctionId fn)
    {
        auto image = extent::ExtentTreeImage::build(
            host_memory_, {{0, size_blocks, plba_base}});
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        mgmt(reg::kMgmtVfId, fn);
        mgmt(reg::kMgmtExtentRoot, trees_.back().root());
        mgmt(reg::kMgmtDeviceSize, size_blocks);
        mgmt(reg::kMgmtCommand,
             static_cast<std::uint64_t>(MgmtCommand::kCreateVf));
        EXPECT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
        return fn;
    }

    void
    mgmt(std::uint64_t offset, std::uint64_t value)
    {
        ASSERT_TRUE(controller_.mmio_write(0, offset, value, 8).is_ok());
    }

    void
    set_weight(pcie::FunctionId fn, std::uint32_t weight)
    {
        mgmt(reg::kMgmtVfId, fn);
        mgmt(reg::kMgmtQosWeight, weight);
        mgmt(reg::kMgmtCommand,
             static_cast<std::uint64_t>(MgmtCommand::kSetQosWeight));
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
    }

    void
    set_rate_limit(pcie::FunctionId fn, std::uint64_t bps,
                   std::uint64_t burst)
    {
        mgmt(reg::kMgmtVfId, fn);
        mgmt(reg::kMgmtRateBytesPerSec, bps);
        mgmt(reg::kMgmtRateBurstBytes, burst);
        mgmt(reg::kMgmtCommand,
             static_cast<std::uint64_t>(MgmtCommand::kSetRateLimit));
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
    }

    std::unique_ptr<drv::FunctionDriver>
    make_driver(pcie::FunctionId fn)
    {
        auto driver = std::make_unique<drv::FunctionDriver>(
            sim_, host_memory_, bar_, irq_, fn,
            drv::FunctionDriverConfig{});
        EXPECT_TRUE(driver->init().is_ok());
        return driver;
    }

    /**
     * Queues one single-chunk async read on @p driver, bumping
     * @p done on completion. Tests interleave calls across drivers so
     * no function gets a submission-window head start (submit()
     * advances the simulator by the modelled CPU cost).
     */
    void
    submit_one(drv::FunctionDriver &driver, std::uint64_t size_blocks,
               std::uint32_t i, std::shared_ptr<std::uint64_t> done)
    {
        if (buffer_ == pcie::kNullHostAddr) {
            auto buffer = host_memory_.alloc(4 * kDeviceBlockSize, 64);
            ASSERT_TRUE(buffer.is_ok());
            buffer_ = buffer.value();
        }
        ASSERT_TRUE(driver
                        .submit(Opcode::kRead,
                                (4ull * i) % (size_blocks - 4), 4,
                                buffer_,
                                [done](CompletionStatus) { ++*done; })
                        .is_ok());
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
    pcie::HostAddr buffer_ = pcie::kNullHostAddr;
};

TEST_F(ArbiterTest, LegacyWrrForfeitsCreditOnIdle)
{
    // Legacy semantics (paper §V.A): when the turn-holder's queue
    // drains mid-turn, the remaining credit is forfeited — the figures
    // were generated with this behavior and it must not drift.
    const auto fn = create_vf(1000, 256, 1);
    set_weight(fn, 8);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(kDeviceBlockSize);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(controller_.arb_mode(), ArbMode::kLegacyWrr);
    EXPECT_EQ(controller_.arb_credit(), 0u);
}

TEST_F(ArbiterTest, DwrrDeficitDiesWithEmptyQueue)
{
    // Classic DRR: deficit banks only while the queue stays backlogged;
    // an emptied queue resets to zero (no credit hoarding while idle).
    mgmt(reg::kArbMode, static_cast<std::uint64_t>(ArbMode::kDwrr));
    const auto fn = create_vf(1000, 256, 1);
    set_weight(fn, 8);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(kDeviceBlockSize);
    ASSERT_TRUE(driver->read_sync(0, 1, buf).is_ok());
    EXPECT_EQ(controller_.arb_mode(), ArbMode::kDwrr);
    EXPECT_EQ(controller_.arb_deficit(fn), 0u);
}

TEST_F(ArbiterTest, LegacyWrrServiceFollowsWeights)
{
    const auto a = create_vf(1000, 512, 1);
    const auto b = create_vf(4000, 512, 2);
    set_weight(a, 3);
    set_weight(b, 1);
    auto da = make_driver(a);
    auto db = make_driver(b);
    auto done_a = std::make_shared<std::uint64_t>(0);
    auto done_b = std::make_shared<std::uint64_t>(0);
    for (std::uint32_t i = 0; i < 120; ++i) {
        submit_one(*da, 512, i, done_a);
        submit_one(*db, 512, i, done_b);
    }
    while (*done_a < 120 && sim_.step()) {
    }
    ASSERT_EQ(*done_a, 120u);
    // B should sit near 1/3 of A's service when A finishes.
    EXPECT_GE(*done_b, 25u);
    EXPECT_LE(*done_b, 70u);
}

TEST_F(ArbiterTest, DwrrConvergesToWeightedShares)
{
    mgmt(reg::kArbMode, static_cast<std::uint64_t>(ArbMode::kDwrr));
    mgmt(reg::kArbQuantum, 2);
    const auto a = create_vf(1000, 512, 1);
    const auto b = create_vf(4000, 512, 2);
    set_weight(a, 4);
    set_weight(b, 1);
    auto da = make_driver(a);
    auto db = make_driver(b);
    auto done_a = std::make_shared<std::uint64_t>(0);
    auto done_b = std::make_shared<std::uint64_t>(0);
    for (std::uint32_t i = 0; i < 160; ++i) {
        submit_one(*da, 512, i, done_a);
        submit_one(*db, 512, i, done_b);
    }
    while (*done_a < 160 && sim_.step()) {
    }
    ASSERT_EQ(*done_a, 160u);
    // B near 1/4 of A's service under a 4:1 weight split.
    EXPECT_GE(*done_b, 20u);
    EXPECT_LE(*done_b, 70u);
}

TEST_F(ArbiterTest, DwrrSharesHoldUnderUnequalQueueDepths)
{
    mgmt(reg::kArbMode, static_cast<std::uint64_t>(ArbMode::kDwrr));
    mgmt(reg::kArbQuantum, 2);
    const auto a = create_vf(1000, 512, 1);
    const auto b = create_vf(4000, 512, 2);
    set_weight(b, 4);
    auto da = make_driver(a);
    auto db = make_driver(b);
    auto done_a = std::make_shared<std::uint64_t>(0);
    auto done_b = std::make_shared<std::uint64_t>(0);
    // A (weight 1) offers a deep backlog up front; B (weight 4) holds
    // 48 outstanding in a closed loop — enough to stay backlogged
    // across its completion round trips, 5x shallower than A.
    // Weighted shares must follow the weights, not the queue depths.
    for (std::uint32_t i = 0; i < 240; ++i)
        submit_one(*da, 512, i, done_a);
    auto buffer = host_memory_.alloc(4 * kDeviceBlockSize, 64);
    ASSERT_TRUE(buffer.is_ok());
    std::function<void()> feed = [&]() {
        (void)db->submit(Opcode::kRead, 0, 4, buffer.value(),
                         [&](CompletionStatus) {
                             ++*done_b;
                             feed();
                         });
    };
    for (int slot = 0; slot < 48; ++slot)
        feed();
    while (*done_a < 120 && sim_.step()) {
    }
    ASSERT_EQ(*done_a, 120u);
    // Ideal while A completes 120 is ~480 for B (4:1). B's closed
    // loop drains briefly at round edges (deficit zeroes on idle), so
    // accept anything well above the 1:1 a depth-proportional scan
    // would give while staying below the weight-ideal ceiling.
    EXPECT_GE(*done_b, 280u);
    EXPECT_LE(*done_b, 620u);
}

TEST_F(ArbiterTest, RateLimitShapesThroughput)
{
    // 1 MB/s with a one-block burst: 32 blocks of 1 KiB take ~31 ms
    // of accrual after the burst covers the first.
    const auto fn = create_vf(1000, 256, 1);
    set_rate_limit(fn, 1'000'000, kDeviceBlockSize);
    auto driver = make_driver(fn);
    std::vector<std::byte> buf(32 * kDeviceBlockSize);
    const sim::Time start = sim_.now();
    ASSERT_TRUE(driver->read_sync(0, 32, buf).is_ok());
    const sim::Time elapsed = sim_.now() - start;
    EXPECT_GE(elapsed, 30'000'000u);
    EXPECT_LE(elapsed, 36'000'000u);

    // Removing the limit restores the fast path.
    set_rate_limit(fn, 0, 0);
    const sim::Time start2 = sim_.now();
    ASSERT_TRUE(driver->read_sync(0, 32, buf).is_ok());
    EXPECT_LT(sim_.now() - start2, 5'000'000u);
}

TEST_F(ArbiterTest, ScanCostStaysBoundedAt256Vfs)
{
    // 255 VFs exist but only two have queued work: the per-grant scan
    // must touch O(bitmap words), not O(active_vfs). With 256 slots
    // the bitmap is 4 words; budget a generous 12 words per grant.
    for (pcie::FunctionId fn = 1; fn <= 255; ++fn)
        create_vf(1000 + 16ull * fn, 16, fn);
    auto da = make_driver(1);
    auto db = make_driver(200);
    auto done_a = std::make_shared<std::uint64_t>(0);
    auto done_b = std::make_shared<std::uint64_t>(0);
    for (std::uint32_t i = 0; i < 40; ++i) {
        submit_one(*da, 16, i, done_a);
        submit_one(*db, 16, i, done_b);
    }
    while ((*done_a < 40 || *done_b < 40) && sim_.step()) {
    }
    ASSERT_EQ(*done_a, 40u);
    ASSERT_EQ(*done_b, 40u);
    const std::uint64_t grants = controller_.arb_grants();
    ASSERT_GT(grants, 0u);
    EXPECT_LE(controller_.arb_scan_words(), 12 * grants + 64);
}

TEST_F(ArbiterTest, ArbRegistersArePfOnly)
{
    const auto fn = create_vf(1000, 64, 1);
    EXPECT_EQ(controller_.mmio_write(fn, reg::kArbMode, 1, 8).code(),
              util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(
        controller_.mmio_read(fn, reg::kArbQuantum, 8).status().code(),
        util::ErrorCode::kPermissionDenied);
    EXPECT_EQ(controller_.mmio_read(fn, reg::kMgmtRateBytesPerSec, 8)
                  .status()
                  .code(),
              util::ErrorCode::kPermissionDenied);
}

} // namespace
} // namespace nesc::ctrl
