/**
 * @file
 * Coverage-gap tests: data-journaling mode, command-ring backpressure
 * with tiny rings, deep OS-stack flush paths, and assorted edge cases
 * not naturally hit by the per-module suites.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "blocklayer/device_block_io.h"
#include "fs/nestfs.h"
#include "storage/mem_block_device.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

namespace nesc {
namespace {

storage::MemBlockDeviceConfig
fast_device()
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 8 << 20;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    return cfg;
}

TEST(DataJournalMode, RoundTripAndCrashDurability)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo io(sim, dev);
    fs::NestFsConfig config;
    config.journal_mode = fs::JournalMode::kData;
    auto fs = fs::NestFs::format(io, config);
    ASSERT_TRUE(fs.is_ok());

    auto ino = (*fs)->create("/dj", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> data(3 * 1024);
    wl::fill_pattern(1, 0, data);
    ASSERT_TRUE((*fs)->write(*ino, 0, data).is_ok());
    // Read-your-writes through the journal staging area.
    std::vector<std::byte> back(3 * 1024);
    ASSERT_EQ(*(*fs)->read(*ino, 0, back), 3u * 1024);
    EXPECT_EQ(back, data);
    // Partial overwrite in data-journal mode (RMW through staging).
    std::vector<std::byte> patch(100, std::byte{0x5a});
    ASSERT_TRUE((*fs)->write(*ino, 512, patch).is_ok());
    ASSERT_EQ(*(*fs)->read(*ino, 0, back), 3u * 1024);
    for (int i = 512; i < 612; ++i)
        EXPECT_EQ(back[i], std::byte{0x5a});
    EXPECT_EQ(back[0], data[0]);
    EXPECT_EQ(back[700], data[700]);

    // Crash (no unmount): data-journaled content must replay intact.
    fs->reset();
    auto remounted = fs::NestFs::mount(io);
    ASSERT_TRUE(remounted.is_ok());
    auto again = (*remounted)->resolve("/dj");
    ASSERT_TRUE(again.is_ok());
    std::vector<std::byte> after(3 * 1024);
    ASSERT_EQ(*(*remounted)->read(*again, 0, after), 3u * 1024);
    EXPECT_EQ(after, back);
    auto report = (*remounted)->fsck();
    ASSERT_TRUE(report.is_ok());
    EXPECT_TRUE(report->clean);
}

TEST(DataJournalMode, RuntimeModeSwitch)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo io(sim, dev);
    auto fs = fs::NestFs::format(io); // metadata mode
    ASSERT_TRUE(fs.is_ok());
    (*fs)->set_journal_mode(fs::JournalMode::kData);
    EXPECT_EQ((*fs)->journal_mode(), fs::JournalMode::kData);
    auto ino = (*fs)->create("/switch", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> data(2048, std::byte{7});
    ASSERT_TRUE((*fs)->write(*ino, 0, data).is_ok());
    std::vector<std::byte> back(2048);
    ASSERT_EQ(*(*fs)->read(*ino, 0, back), 2048u);
    EXPECT_EQ(back, data);
}

TEST(TinyRing, BackpressureRetriesUntilDeviceDrains)
{
    // A 4-entry command ring forces the driver's ring-full retry path
    // on any multi-chunk burst.
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    config.vf_driver.ring_entries = 4;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto vm =
        std::move(bed->create_nesc_guest("/tiny.img", 4096, true)).value();

    std::vector<std::byte> out(256 * 1024), in(256 * 1024);
    wl::fill_pattern(8, 0, out);
    // 256 blocks in 4-block chunks = 64 commands through a 4-slot ring.
    ASSERT_TRUE(vm->raw_disk().write_blocks(0, 256, out).is_ok());
    ASSERT_TRUE(vm->raw_disk().read_blocks(0, 256, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST(OsStackFlush, WriteBackDirtDrainsOnFlush)
{
    sim::Simulator sim;
    storage::MemBlockDevice dev(fast_device());
    blk::DeviceBlockIo base(sim, dev);
    blk::OsBlockStack stack(sim, base, "t", blk::OsStackConfig{});
    std::vector<std::byte> data(8 * 1024, std::byte{0x3e});
    ASSERT_TRUE(stack.write_blocks(100, 8, data).is_ok());
    EXPECT_EQ(dev.bytes_written(), 0u); // parked in the cache
    ASSERT_TRUE(stack.flush().is_ok());
    EXPECT_EQ(dev.bytes_written(), 8u * 1024);
    std::vector<std::byte> back(8 * 1024);
    ASSERT_TRUE(dev.read(100 * 1024, back).is_ok());
    EXPECT_EQ(back, data);
}

TEST(GuestVmLifecycle, UnmountedFsFlushesThroughVirtualDisk)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto vm =
        std::move(bed->create_nesc_guest("/gl.img", 8192, true)).value();
    ASSERT_TRUE(vm->format_fs().is_ok());
    auto ino = vm->fs()->create("/f", 0644);
    ASSERT_TRUE(ino.is_ok());
    std::vector<std::byte> data(1024, std::byte{0x44});
    ASSERT_TRUE(vm->fs()->write(*ino, 0, data).is_ok());
    // GuestVm destruction unmounts cleanly; a fresh VM over the same
    // image must see the data (validates the flush-on-unmount path).
    vm.reset();
    auto vm2 =
        std::move(bed->create_nesc_guest("/gl.img", 8192, true)).value();
    ASSERT_TRUE(vm2->mount_fs().is_ok());
    auto again = vm2->fs()->resolve("/f");
    ASSERT_TRUE(again.is_ok());
    std::vector<std::byte> back(1024);
    ASSERT_EQ(*vm2->fs()->read(*again, 0, back), 1024u);
    EXPECT_EQ(back, data);
}

TEST(ControllerEdge, FlushOpcodeCompletesImmediately)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto vm =
        std::move(bed->create_nesc_guest("/fl.img", 1024, true)).value();
    auto fn = *bed->guest_vf(*vm);
    drv::FunctionDriver driver(bed->sim(), bed->host_memory(), bed->bar(),
                               bed->irq(), fn, bed->config().vf_driver);
    ASSERT_TRUE(driver.init().is_ok());
    bool done = false;
    ASSERT_TRUE(driver
                    .submit(ctrl::Opcode::kFlush, 0, 1, 0,
                            [&](ctrl::CompletionStatus s) {
                                EXPECT_EQ(s, ctrl::CompletionStatus::kOk);
                                done = true;
                            })
                    .is_ok());
    bed->sim().run_until_idle();
    EXPECT_TRUE(done);
}

TEST(ControllerEdge, MalformedOpcodeCompletesWithError)
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 64ULL << 20;
    config.host_memory_bytes = 64ULL << 20;
    auto bed = std::move(virt::Testbed::create(config)).value();
    auto vm =
        std::move(bed->create_nesc_guest("/mo.img", 1024, true)).value();
    auto fn = *bed->guest_vf(*vm);
    drv::FunctionDriver driver(bed->sim(), bed->host_memory(), bed->bar(),
                               bed->irq(), fn, bed->config().vf_driver);
    ASSERT_TRUE(driver.init().is_ok());
    ctrl::CompletionStatus status = ctrl::CompletionStatus::kOk;
    bool done = false;
    ASSERT_TRUE(driver
                    .submit(static_cast<ctrl::Opcode>(99), 0, 1, 4096,
                            [&](ctrl::CompletionStatus s) {
                                status = s;
                                done = true;
                            })
                    .is_ok());
    bed->sim().run_until_idle();
    EXPECT_TRUE(done);
    // The descriptor validator rejects unknown opcodes at fetch with
    // the dedicated (non-retryable) kMalformed status.
    EXPECT_EQ(status, ctrl::CompletionStatus::kMalformed);
}

} // namespace
} // namespace nesc
