/**
 * @file
 * Batching-interaction tests: the kFetchBatch descriptor-drain cap and
 * the kCompletionBatch coalesced completion flush, each against the
 * containment machinery (ring corruption, quarantine, watchdog aborts).
 * The contract under test: batching changes event granularity and MSI
 * counts, never outcomes — and a batched drain must stop dead at ring
 * corruption or quarantine exactly like the monolithic drain does.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "nesc/controller.h"
#include "pcie/host_ring.h"
#include "pcie/mmio.h"
#include "storage/mem_block_device.h"

namespace nesc::ctrl {
namespace {

/** 4-VF controller config with the given batching knobs. */
ControllerConfig
config_with(std::uint32_t fetch_batch = 0, bool completion_batch = false)
{
    ControllerConfig cfg;
    cfg.max_vfs = 4;
    cfg.fetch_batch = fetch_batch;
    cfg.completion_batch = completion_batch;
    return cfg;
}

/** Controller harness with adjustable batching knobs. */
class BatchHarness {
  public:
    explicit BatchHarness(const ControllerConfig &config = config_with())
        : host_memory_(64 << 20), device_(device_config()), irq_(sim_),
          controller_(sim_, host_memory_, device_, irq_, config),
          bar_(controller_, 4096, controller_.num_functions())
    {
    }

    static storage::MemBlockDeviceConfig
    device_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 16 << 20;
        return cfg;
    }

    pcie::FunctionId
    create_vf(const extent::ExtentList &extents, std::uint64_t size_blocks,
              pcie::FunctionId fn = 1)
    {
        auto image = extent::ExtentTreeImage::build(host_memory_, extents);
        EXPECT_TRUE(image.is_ok());
        trees_.push_back(std::move(image).value());
        pf_write(reg::kMgmtVfId, fn);
        pf_write(reg::kMgmtExtentRoot, trees_.back().root());
        pf_write(reg::kMgmtDeviceSize, size_blocks);
        mgmt(MgmtCommand::kCreateVf);
        return fn;
    }

    void
    pf_write(std::uint64_t offset, std::uint64_t value)
    {
        ASSERT_TRUE(controller_.mmio_write(0, offset, value, 8).is_ok());
    }

    void
    mgmt(MgmtCommand command)
    {
        ASSERT_TRUE(controller_
                        .mmio_write(0, reg::kMgmtCommand,
                                    static_cast<std::uint64_t>(command), 8)
                        .is_ok());
        ASSERT_EQ(*controller_.mmio_read(0, reg::kMgmtStatus, 4),
                  static_cast<std::uint64_t>(MgmtStatus::kOk));
    }

    void
    add_window(pcie::FunctionId fn, pcie::HostAddr base,
               std::uint64_t size)
    {
        pf_write(reg::kMgmtVfId, fn);
        pf_write(reg::kDmaWindowBase, base);
        pf_write(reg::kDmaWindowSize, size);
        mgmt(MgmtCommand::kAddDmaWindow);
    }

    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    storage::MemBlockDevice device_;
    pcie::InterruptController irq_;
    Controller controller_;
    pcie::BarPageRouter bar_;
    std::vector<extent::ExtentTreeImage> trees_;
};

/** Hand-rolled guest rings with raw descriptor control. */
struct RawGuest {
    RawGuest(BatchHarness &h, pcie::FunctionId fn,
             std::uint32_t entries = 32)
        : h_(h), fn_(fn), entries_(entries)
    {
        const auto cmd_fp =
            pcie::HostRing::footprint(entries, sizeof(CommandRecord));
        const auto comp_fp = pcie::HostRing::footprint(
            entries * 2, sizeof(CompletionRecord));
        cmd_base_ = *h.host_memory_.alloc(cmd_fp, 64);
        comp_base_ = *h.host_memory_.alloc(comp_fp, 64);
        buffer_ = *h.host_memory_.alloc(64 * 1024, 4096);
        EXPECT_TRUE(pcie::HostRing::create(h.host_memory_, cmd_base_,
                                           entries, sizeof(CommandRecord))
                        .is_ok());
        EXPECT_TRUE(pcie::HostRing::create(h.host_memory_, comp_base_,
                                           entries * 2,
                                           sizeof(CompletionRecord))
                        .is_ok());
        EXPECT_TRUE(h.controller_
                        .mmio_write(fn, reg::kCmdRingBase, cmd_base_, 8)
                        .is_ok());
        EXPECT_TRUE(h.controller_
                        .mmio_write(fn, reg::kCompRingBase, comp_base_, 8)
                        .is_ok());
    }

    void
    push(const CommandRecord &rec)
    {
        auto ring = pcie::HostRing::attach(h_.host_memory_, cmd_base_);
        ASSERT_TRUE(ring.is_ok());
        std::vector<std::byte> buf(sizeof(rec));
        std::memcpy(buf.data(), &rec, sizeof(rec));
        ASSERT_TRUE(ring.value().push(buf).is_ok());
    }

    CommandRecord
    valid_write(std::uint64_t vlba = 0, std::uint32_t nblocks = 1)
    {
        CommandRecord rec{};
        rec.vlba = vlba;
        rec.nblocks = nblocks;
        rec.opcode = static_cast<std::uint8_t>(Opcode::kWrite);
        rec.host_buffer = buffer_;
        rec.tag = next_tag_++;
        return rec;
    }

    void
    doorbell()
    {
        EXPECT_TRUE(
            h_.controller_.mmio_write(fn_, reg::kDoorbell, 1, 8).is_ok());
    }

    std::vector<CompletionRecord>
    drain_completions()
    {
        std::vector<CompletionRecord> out;
        auto ring = pcie::HostRing::attach(h_.host_memory_, comp_base_);
        if (!ring.is_ok())
            return out;
        std::vector<std::byte> buf(sizeof(CompletionRecord));
        for (;;) {
            auto popped = ring.value().pop(buf);
            if (!popped.is_ok() || !popped.value())
                break;
            CompletionRecord rec;
            std::memcpy(&rec, buf.data(), sizeof(rec));
            out.push_back(rec);
        }
        return out;
    }

    BatchHarness &h_;
    pcie::FunctionId fn_;
    std::uint32_t entries_;
    pcie::HostAddr cmd_base_ = pcie::kNullHostAddr;
    pcie::HostAddr comp_base_ = pcie::kNullHostAddr;
    pcie::HostAddr buffer_ = pcie::kNullHostAddr;
    std::uint64_t next_tag_ = 1;
};

// --- Batching knob registers ----------------------------------------

TEST(BatchingRegisters, PfOnlyWithPaperDefaults)
{
    BatchHarness h;
    const auto fn = h.create_vf({{0, 32, 1000}}, 32);
    // Defaults: both knobs off = paper-equivalent behavior.
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kFetchBatch, 8), 0u);
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kCompletionBatch, 8), 0u);
    // PF writes land and read back.
    h.pf_write(reg::kFetchBatch, 4);
    h.pf_write(reg::kCompletionBatch, 1);
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kFetchBatch, 8), 4u);
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kCompletionBatch, 8), 1u);
    // VF access is denied both ways.
    EXPECT_FALSE(h.controller_.mmio_read(fn, reg::kFetchBatch, 8).is_ok());
    EXPECT_FALSE(
        h.controller_.mmio_read(fn, reg::kCompletionBatch, 8).is_ok());
    EXPECT_FALSE(
        h.controller_.mmio_write(fn, reg::kFetchBatch, 2, 8).is_ok());
    EXPECT_FALSE(
        h.controller_.mmio_write(fn, reg::kCompletionBatch, 1, 8).is_ok());
    EXPECT_EQ(*h.controller_.mmio_read(0, reg::kFetchBatch, 8), 4u);
}

// --- Fetch batching -------------------------------------------------

/** Tag/status pairs of @p comps, sorted by tag, for outcome compares. */
std::vector<std::pair<std::uint64_t, std::uint32_t>>
outcomes(const std::vector<CompletionRecord> &comps)
{
    std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
    for (const CompletionRecord &c : comps)
        out.emplace_back(c.tag, c.status);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>>
run_ring_of_writes(std::uint32_t fetch_batch, std::uint64_t *events = nullptr)
{
    BatchHarness h(config_with(fetch_batch));
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    for (std::uint64_t i = 0; i < 12; ++i)
        g.push(g.valid_write(i % 64));
    g.doorbell();
    h.sim_.run_until_idle();
    if (events != nullptr)
        *events = h.sim_.events_executed();
    EXPECT_EQ(h.controller_.stats(fn).commands, 12u);
    return outcomes(g.drain_completions());
}

TEST(FetchBatching, CappedDrainCompletesTheWholeRing)
{
    // One doorbell, twelve descriptors: whatever the cap, every
    // command is fetched (via continuations) with identical outcomes.
    const auto unbatched = run_ring_of_writes(0);
    ASSERT_EQ(unbatched.size(), 12u);
    for (const auto &[tag, status] : unbatched)
        EXPECT_EQ(status,
                  static_cast<std::uint32_t>(CompletionStatus::kOk));
    for (std::uint32_t batch : {1u, 2u, 5u, 16u}) {
        std::uint64_t events = 0;
        EXPECT_EQ(run_ring_of_writes(batch, &events), unbatched)
            << "batch " << batch;
    }
}

TEST(FetchBatching, DoorbellDuringDrainMergesIntoContinuation)
{
    // A doorbell landing while a capped drain is in progress must not
    // spawn a second concurrent drain of the same ring.
    BatchHarness h(config_with(/*fetch_batch=*/2));
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    for (std::uint64_t i = 0; i < 6; ++i)
        g.push(g.valid_write(i));
    g.doorbell();
    const sim::Duration latency = h.controller_.config().doorbell_latency;
    // Push more and re-ring mid-drain (after the first fetch event).
    h.sim_.schedule_at(latency, [&]() {
        for (std::uint64_t i = 0; i < 4; ++i)
            g.push(g.valid_write(i));
        g.doorbell();
    });
    h.sim_.run_until_idle();
    EXPECT_EQ(h.controller_.stats(fn).commands, 10u);
    const auto comps = g.drain_completions();
    EXPECT_EQ(comps.size(), 10u);
    EXPECT_EQ(h.controller_.stats(fn).ring_corruptions, 0u);
}

TEST(FetchBatching, DrainStopsAtRingCorruption)
{
    // The guest rewrites the ring's device-owned head counter between
    // the first capped fetch and its continuation. The continuation
    // must drop the drain as kRingCorrupt and fetch nothing more.
    BatchHarness h(config_with(/*fetch_batch=*/2));
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    for (std::uint64_t i = 0; i < 8; ++i)
        g.push(g.valid_write(i));
    g.doorbell();
    const sim::Duration latency = h.controller_.config().doorbell_latency;
    h.sim_.schedule_at(latency, [&]() {
        auto header =
            *h.host_memory_.read_pod<pcie::HostRing::Header>(g.cmd_base_);
        header.head -= 1; // consumer counter rewritten by the guest
        ASSERT_TRUE(h.host_memory_.write_pod(g.cmd_base_, header).is_ok());
    });
    h.sim_.run_until_idle();
    // Exactly the first batch was fetched; the corrupt continuation
    // fetched nothing and did not reschedule itself.
    EXPECT_EQ(h.controller_.stats(fn).commands, 2u);
    EXPECT_EQ(h.controller_.stats(fn).ring_corruptions, 1u);
    const auto comps = g.drain_completions();
    EXPECT_EQ(comps.size(), 2u);
    for (const auto &c : comps)
        EXPECT_EQ(c.status,
                  static_cast<std::uint32_t>(CompletionStatus::kOk));
}

TEST(FetchBatching, QuarantinedVfContributesZeroBatchedWork)
{
    // A DMA-window violation mid-drain quarantines the VF with
    // descriptors still in the ring and a continuation's worth of
    // batch budget unspent: nothing further may be fetched, and later
    // doorbells are ignored outright.
    BatchHarness h(config_with(/*fetch_batch=*/1));
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    // Confine the fn: windows cover its rings and its data buffer.
    h.add_window(fn, g.cmd_base_,
                 pcie::HostRing::footprint(g.entries_,
                                           sizeof(CommandRecord)));
    h.add_window(fn, g.comp_base_,
                 pcie::HostRing::footprint(g.entries_ * 2,
                                           sizeof(CompletionRecord)));
    h.add_window(fn, g.buffer_, 64 * 1024);
    const auto [tree_base, tree_size] = h.trees_.back().bounds();
    if (tree_size != 0)
        h.add_window(fn, tree_base, tree_size);

    const pcie::HostAddr outside = *h.host_memory_.alloc(4096, 4096);
    g.push(g.valid_write(0));
    CommandRecord escape = g.valid_write(1);
    escape.host_buffer = outside; // sandbox escape: one-strike
    g.push(escape);
    g.push(g.valid_write(2));
    g.push(g.valid_write(3));
    g.doorbell();
    h.sim_.run_until_idle();

    EXPECT_TRUE(h.controller_.quarantined(fn));
    // Only the two descriptors up to the violation were fetched.
    EXPECT_EQ(h.controller_.stats(fn).commands, 2u);
    const auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 2u);
    // Tag 1 aborted by quarantine teardown, tag 2 faulted.
    EXPECT_EQ(comps[0].tag, 2u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kDmaFault));
    EXPECT_EQ(comps[1].tag, 1u);
    EXPECT_EQ(comps[1].status,
              static_cast<std::uint32_t>(CompletionStatus::kAborted));

    // Doorbells while quarantined fetch nothing.
    const auto ignored_before = h.controller_.stats(fn).doorbells_ignored;
    g.doorbell();
    h.sim_.run_until_idle();
    EXPECT_EQ(h.controller_.stats(fn).commands, 2u);
    EXPECT_GT(h.controller_.stats(fn).doorbells_ignored, ignored_before);
}

// --- Completion batching --------------------------------------------

TEST(CompletionBatching, SameOutcomesOneMsiPerFlush)
{
    // Identical 8-command ring with and without completion batching:
    // the completion records must match exactly; the MSI count drops
    // because one flush raises one interrupt for the window.
    auto run = [](bool completion_batch) {
        // Widen the completion window past the media's ~1us per-write
        // spacing so back-to-back completions actually share a flush.
        ControllerConfig cfg = config_with(0, completion_batch);
        cfg.completion_cost = 5000;
        BatchHarness h(cfg);
        const auto fn = h.create_vf({{0, 64, 2000}}, 64);
        RawGuest g(h, fn);
        for (std::uint64_t i = 0; i < 8; ++i)
            g.push(g.valid_write(i));
        g.doorbell();
        h.sim_.run_until_idle();
        return std::make_pair(outcomes(g.drain_completions()),
                              h.irq_.raised());
    };
    const auto [plain, plain_irqs] = run(false);
    const auto [batched, batched_irqs] = run(true);
    ASSERT_EQ(plain.size(), 8u);
    EXPECT_EQ(batched, plain);
    EXPECT_LT(batched_irqs, plain_irqs);
}

TEST(CompletionBatching, DeliversWatchdogAborts)
{
    // A write into an unmapped hole parks on a fault; the command
    // watchdog aborts it. The kAborted completion must come through
    // the batched flush exactly like the unbatched path.
    BatchHarness h(config_with(0, /*completion_batch=*/true));
    const auto fn = h.create_vf({{0, 32, 2000}}, 64); // upper half holes
    RawGuest g(h, fn);
    ASSERT_TRUE(
        h.controller_.mmio_write(fn, reg::kWatchdogNs, 50'000, 8).is_ok());
    g.push(g.valid_write(/*vlba=*/40)); // hole: write-miss fault
    g.doorbell();
    h.sim_.run_until_idle();
    const auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 1u);
    EXPECT_EQ(comps[0].tag, 1u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kAborted));
    EXPECT_EQ(h.controller_.stats(fn).aborted_ops, 1u);
}

TEST(CompletionBatching, DeliversQuarantineAbortsInTagOrder)
{
    // Quarantine with several commands in flight: every pending tag
    // must surface as kAborted through the coalesced flush, in tag
    // order. The trigger is a sixth descriptor pointing outside the
    // fn's DMA windows while tags 1-5 were fetched in the same drain
    // and are still pending.
    BatchHarness h(config_with(0, /*completion_batch=*/true));
    const auto fn = h.create_vf({{0, 64, 2000}}, 64);
    RawGuest g(h, fn);
    h.add_window(fn, g.cmd_base_,
                 pcie::HostRing::footprint(g.entries_,
                                           sizeof(CommandRecord)));
    h.add_window(fn, g.comp_base_,
                 pcie::HostRing::footprint(g.entries_ * 2,
                                           sizeof(CompletionRecord)));
    h.add_window(fn, g.buffer_, 64 * 1024);
    const auto [tree_base, tree_size] = h.trees_.back().bounds();
    if (tree_size != 0)
        h.add_window(fn, tree_base, tree_size);

    for (std::uint64_t i = 0; i < 5; ++i)
        g.push(g.valid_write(i, /*nblocks=*/4));
    CommandRecord escape = g.valid_write(5);
    escape.host_buffer = *h.host_memory_.alloc(4096, 4096); // unwindowed
    g.push(escape);
    g.doorbell();
    h.sim_.run_until_idle();

    ASSERT_TRUE(h.controller_.quarantined(fn));
    const auto comps = g.drain_completions();
    ASSERT_EQ(comps.size(), 6u);
    // The violator faults first (enqueued before the teardown), then
    // the five pending tags abort in ascending tag order.
    EXPECT_EQ(comps[0].tag, 6u);
    EXPECT_EQ(comps[0].status,
              static_cast<std::uint32_t>(CompletionStatus::kDmaFault));
    for (std::size_t i = 1; i < comps.size(); ++i) {
        EXPECT_EQ(comps[i].tag, i) << "slot " << i;
        EXPECT_EQ(comps[i].status,
                  static_cast<std::uint32_t>(CompletionStatus::kAborted));
    }
}

} // namespace
} // namespace nesc::ctrl
