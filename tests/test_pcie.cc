/**
 * @file
 * Unit tests for the PCIe model: host memory + allocator, rings, DMA
 * engine, interrupts, BAR routing, BDF.
 */
#include <gtest/gtest.h>

#include "pcie/bdf.h"
#include "pcie/dma_engine.h"
#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "pcie/interrupts.h"
#include "pcie/mmio.h"

namespace nesc::pcie {
namespace {

// --- HostMemory ---------------------------------------------------------

TEST(HostMemory, ReadWriteRoundTrip)
{
    HostMemory mem(1 << 20);
    std::vector<std::byte> out(256), in(256);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::byte>(i);
    ASSERT_TRUE(mem.write(1000, out).is_ok());
    ASSERT_TRUE(mem.read(1000, in).is_ok());
    EXPECT_EQ(out, in);
}

TEST(HostMemory, PodHelpers)
{
    HostMemory mem(4096);
    struct Pod {
        std::uint32_t a;
        std::uint64_t b;
    };
    ASSERT_TRUE(mem.write_pod(64, Pod{7, 9}).is_ok());
    auto read = mem.read_pod<Pod>(64);
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(read->a, 7u);
    EXPECT_EQ(read->b, 9u);
}

TEST(HostMemory, OutOfRangeRejected)
{
    HostMemory mem(1024);
    std::vector<std::byte> buf(64);
    EXPECT_FALSE(mem.read(1024, buf).is_ok());
    EXPECT_FALSE(mem.write(1000, buf).is_ok());
    EXPECT_TRUE(mem.write(960, buf).is_ok());
}

TEST(HostMemory, FillZero)
{
    HostMemory mem(1024);
    std::vector<std::byte> ones(128, std::byte{0xff});
    ASSERT_TRUE(mem.write(0, ones).is_ok());
    ASSERT_TRUE(mem.fill_zero(0, 128).is_ok());
    std::vector<std::byte> back(128, std::byte{1});
    ASSERT_TRUE(mem.read(0, back).is_ok());
    for (std::byte b : back)
        EXPECT_EQ(b, std::byte{0});
}

TEST(HostMemoryAllocator, NeverReturnsNull)
{
    HostMemory mem(1 << 16);
    auto a = mem.alloc(64);
    ASSERT_TRUE(a.is_ok());
    EXPECT_NE(*a, kNullHostAddr);
}

TEST(HostMemoryAllocator, RespectsAlignment)
{
    HostMemory mem(1 << 16);
    auto a = mem.alloc(10, 64);
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(*a % 64, 0u);
    auto b = mem.alloc(10, 4096);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(*b % 4096, 0u);
}

TEST(HostMemoryAllocator, FreeAndCoalesce)
{
    HostMemory mem(1 << 16);
    auto a = mem.alloc(1000, 8);
    auto b = mem.alloc(1000, 8);
    auto c = mem.alloc(1000, 8);
    ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
    EXPECT_EQ(mem.allocated_bytes(), 3000u);
    ASSERT_TRUE(mem.free(*b).is_ok());
    ASSERT_TRUE(mem.free(*a).is_ok());
    ASSERT_TRUE(mem.free(*c).is_ok());
    EXPECT_EQ(mem.allocated_bytes(), 0u);
    // After full coalescing a near-full-size allocation must succeed.
    auto big = mem.alloc((1 << 16) - 64, 8);
    EXPECT_TRUE(big.is_ok());
}

TEST(HostMemoryAllocator, DoubleFreeRejected)
{
    HostMemory mem(4096);
    auto a = mem.alloc(64);
    ASSERT_TRUE(a.is_ok());
    EXPECT_TRUE(mem.free(*a).is_ok());
    EXPECT_FALSE(mem.free(*a).is_ok());
}

TEST(HostMemoryAllocator, Exhaustion)
{
    HostMemory mem(4096);
    EXPECT_EQ(mem.alloc(1 << 20).status().code(),
              util::ErrorCode::kResourceExhausted);
    EXPECT_FALSE(mem.alloc(0).is_ok());
    EXPECT_FALSE(mem.alloc(8, 3).is_ok()); // non-pow2 alignment
}

// --- HostRing -------------------------------------------------------------

TEST(HostRing, PushPopRoundTrip)
{
    HostMemory mem(1 << 16);
    auto ring = HostRing::create(mem, 256, 8, 16);
    ASSERT_TRUE(ring.is_ok());
    std::vector<std::byte> rec(16);
    rec[0] = std::byte{42};
    ASSERT_TRUE(ring->push(rec).is_ok());
    EXPECT_EQ(*ring->size(), 1u);
    std::vector<std::byte> out(16);
    auto popped = ring->pop(out);
    ASSERT_TRUE(popped.is_ok());
    EXPECT_TRUE(*popped);
    EXPECT_EQ(out[0], std::byte{42});
    EXPECT_EQ(*ring->size(), 0u);
}

TEST(HostRing, EmptyPopReturnsFalse)
{
    HostMemory mem(1 << 16);
    auto ring = HostRing::create(mem, 256, 4, 8);
    ASSERT_TRUE(ring.is_ok());
    std::vector<std::byte> out(8);
    auto popped = ring->pop(out);
    ASSERT_TRUE(popped.is_ok());
    EXPECT_FALSE(*popped);
}

TEST(HostRing, FullPushUnavailable)
{
    HostMemory mem(1 << 16);
    auto ring = HostRing::create(mem, 256, 2, 8);
    ASSERT_TRUE(ring.is_ok());
    std::vector<std::byte> rec(8);
    ASSERT_TRUE(ring->push(rec).is_ok());
    ASSERT_TRUE(ring->push(rec).is_ok());
    EXPECT_EQ(ring->push(rec).code(), util::ErrorCode::kUnavailable);
}

TEST(HostRing, WrapsAroundManyTimes)
{
    HostMemory mem(1 << 16);
    auto ring = HostRing::create(mem, 256, 4, 8);
    ASSERT_TRUE(ring.is_ok());
    std::vector<std::byte> rec(8), out(8);
    for (std::uint32_t i = 0; i < 100; ++i) {
        rec[0] = static_cast<std::byte>(i);
        ASSERT_TRUE(ring->push(rec).is_ok());
        ASSERT_TRUE(*ring->pop(out));
        EXPECT_EQ(out[0], static_cast<std::byte>(i));
    }
}

TEST(HostRing, AttachSeesProducerState)
{
    HostMemory mem(1 << 16);
    auto producer = HostRing::create(mem, 512, 8, 8);
    ASSERT_TRUE(producer.is_ok());
    std::vector<std::byte> rec(8);
    rec[3] = std::byte{9};
    ASSERT_TRUE(producer->push(rec).is_ok());

    auto consumer = HostRing::attach(mem, 512);
    ASSERT_TRUE(consumer.is_ok());
    EXPECT_EQ(consumer->capacity(), 8u);
    std::vector<std::byte> out(8);
    ASSERT_TRUE(*consumer->pop(out));
    EXPECT_EQ(out[3], std::byte{9});
    // The producer observes the consumption through shared memory.
    EXPECT_EQ(*producer->size(), 0u);
}

TEST(HostRing, AttachRejectsGarbage)
{
    HostMemory mem(4096);
    EXPECT_FALSE(HostRing::attach(mem, 128).is_ok());
}

TEST(HostRing, RecordSizeValidated)
{
    HostMemory mem(1 << 16);
    auto ring = HostRing::create(mem, 256, 4, 8);
    std::vector<std::byte> wrong(4);
    EXPECT_FALSE(ring->push(wrong).is_ok());
    EXPECT_FALSE(ring->pop(wrong).is_ok());
}

// --- DmaEngine -------------------------------------------------------------

TEST(DmaEngine, ReadDeliversDataAsync)
{
    sim::Simulator sim;
    HostMemory mem(4096);
    std::vector<std::byte> data(64);
    data[0] = std::byte{0x5a};
    ASSERT_TRUE(mem.write(100, data).is_ok());

    DmaEngine dma(sim, mem, DmaConfig{1'000'000'000, 500});
    bool done = false;
    dma.read(100, 64, [&](util::Status s, std::vector<std::byte> payload) {
        EXPECT_TRUE(s.is_ok());
        ASSERT_EQ(payload.size(), 64u);
        EXPECT_EQ(payload[0], std::byte{0x5a});
        done = true;
    });
    EXPECT_FALSE(done); // asynchronous
    sim.run_until_idle();
    EXPECT_TRUE(done);
    EXPECT_GE(sim.now(), 500u); // at least the link latency
}

TEST(DmaEngine, WriteLandsInHostMemory)
{
    sim::Simulator sim;
    HostMemory mem(4096);
    DmaEngine dma(sim, mem);
    std::vector<std::byte> data(32, std::byte{7});
    bool done = false;
    dma.write(200, data, [&](util::Status s) {
        EXPECT_TRUE(s.is_ok());
        done = true;
    });
    sim.run_until_idle();
    ASSERT_TRUE(done);
    std::vector<std::byte> back(32);
    ASSERT_TRUE(mem.read(200, back).is_ok());
    EXPECT_EQ(back, data);
}

TEST(DmaEngine, WriteZeroFills)
{
    sim::Simulator sim;
    HostMemory mem(4096);
    std::vector<std::byte> ones(64, std::byte{0xff});
    ASSERT_TRUE(mem.write(300, ones).is_ok());
    DmaEngine dma(sim, mem);
    dma.write_zero(300, 64, [](util::Status s) { EXPECT_TRUE(s.is_ok()); });
    sim.run_until_idle();
    std::vector<std::byte> back(64, std::byte{1});
    ASSERT_TRUE(mem.read(300, back).is_ok());
    for (std::byte b : back)
        EXPECT_EQ(b, std::byte{0});
}

TEST(DmaEngine, OutOfRangeReportedInCallback)
{
    sim::Simulator sim;
    HostMemory mem(1024);
    DmaEngine dma(sim, mem);
    bool done = false;
    dma.read(2048, 64, [&](util::Status s, std::vector<std::byte>) {
        EXPECT_FALSE(s.is_ok());
        done = true;
    });
    sim.run_until_idle();
    EXPECT_TRUE(done);
}

TEST(DmaEngine, TransfersSerializeOnTheLink)
{
    sim::Simulator sim;
    HostMemory mem(1 << 20);
    DmaEngine dma(sim, mem, DmaConfig{1'000'000, 0}); // 1 MB/s: slow
    sim::Time first = 0, second = 0;
    dma.read(0, 1000, [&](util::Status, std::vector<std::byte>) {
        first = sim.now();
    });
    dma.read(0, 1000, [&](util::Status, std::vector<std::byte>) {
        second = sim.now();
    });
    sim.run_until_idle();
    EXPECT_EQ(first, 1'000'000u);
    EXPECT_EQ(second, 2'000'000u);
    EXPECT_EQ(dma.total_bytes(), 2000u);
}

// --- InterruptController ---------------------------------------------------

TEST(Interrupts, DeliversAfterLatency)
{
    sim::Simulator sim;
    InterruptController irq(sim, 700);
    sim::Time fired_at = 0;
    irq.set_handler(5, [&]() { fired_at = sim.now(); });
    irq.raise(5);
    sim.run_until_idle();
    EXPECT_EQ(fired_at, 700u);
    EXPECT_EQ(irq.raised(), 1u);
    EXPECT_EQ(irq.delivered(), 1u);
}

TEST(Interrupts, UnhandledVectorIsSpurious)
{
    sim::Simulator sim;
    InterruptController irq(sim);
    irq.raise(9);
    sim.run_until_idle();
    EXPECT_EQ(irq.spurious(), 1u);
}

TEST(Interrupts, ClearHandlerStopsDelivery)
{
    sim::Simulator sim;
    InterruptController irq(sim);
    int count = 0;
    irq.set_handler(1, [&]() { ++count; });
    irq.raise(1);
    sim.run_until_idle();
    irq.clear_handler(1);
    irq.raise(1);
    sim.run_until_idle();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(irq.spurious(), 1u);
}

// --- Bdf / BarPageRouter ----------------------------------------------------

TEST(Bdf, Formatting)
{
    Bdf bdf{3, 0x1f, 2};
    EXPECT_EQ(bdf.to_string(), "03:1f.2");
    EXPECT_EQ(Bdf{}.to_string(), "00:00.0");
}

class EchoDevice : public FunctionMmioDevice {
  public:
    util::Result<std::uint64_t>
    mmio_read(FunctionId fn, std::uint64_t offset, unsigned) override
    {
        return (static_cast<std::uint64_t>(fn) << 32) | offset;
    }
    util::Status
    mmio_write(FunctionId fn, std::uint64_t offset, std::uint64_t value,
               unsigned) override
    {
        last_fn = fn;
        last_offset = offset;
        last_value = value;
        return util::Status::ok();
    }
    FunctionId last_fn = 0;
    std::uint64_t last_offset = 0;
    std::uint64_t last_value = 0;
};

TEST(BarPageRouter, RoutesByPage)
{
    EchoDevice device;
    BarPageRouter bar(device, 4096, 4);
    EXPECT_EQ(bar.bar_size(), 4096u * 4);
    // Page 1, offset 128 => VF1 (the paper's worked example: address
    // 4224 in the BAR routes to offset 128 of the first VF).
    auto read = bar.read(4096 + 128, 8);
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(*read, (1ULL << 32) | 128u);

    ASSERT_TRUE(bar.write(3 * 4096 + 8, 77, 8).is_ok());
    EXPECT_EQ(device.last_fn, 3);
    EXPECT_EQ(device.last_offset, 8u);
    EXPECT_EQ(device.last_value, 77u);
}

TEST(BarPageRouter, RejectsBeyondBar)
{
    EchoDevice device;
    BarPageRouter bar(device, 4096, 2);
    EXPECT_FALSE(bar.read(2 * 4096, 8).is_ok());
    EXPECT_FALSE(bar.write(100 * 4096, 1, 8).is_ok());
}

TEST(BarPageRouter, FunctionBase)
{
    EchoDevice device;
    BarPageRouter bar(device, 4096, 8);
    EXPECT_EQ(bar.function_base(0), 0u);
    EXPECT_EQ(bar.function_base(5), 5u * 4096);
}

} // namespace
} // namespace nesc::pcie
