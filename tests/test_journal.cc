/**
 * @file
 * Unit tests for the nestfs write-ahead journal: staging, commit,
 * replay, torn-transaction handling, ring wrap, and stale-entry
 * protection.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "blocklayer/device_block_io.h"
#include "fs/journal.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"

namespace nesc::fs {
namespace {

/** Timing-free device + BlockIo fixture for journal tests. */
class JournalTest : public ::testing::Test {
  protected:
    JournalTest()
        : device_(fast_config()), io_(sim_, device_),
          journal_(io_, kJournalStart, kJournalBlocks, 1)
    {
    }

    static storage::MemBlockDeviceConfig
    fast_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 1 << 20;
        cfg.read_bytes_per_sec = 0;
        cfg.write_bytes_per_sec = 0;
        cfg.access_latency = 0;
        return cfg;
    }

    std::vector<std::byte>
    block_of(std::uint8_t fill)
    {
        return std::vector<std::byte>(kFsBlockSize,
                                      static_cast<std::byte>(fill));
    }

    std::vector<std::byte>
    read_block(std::uint64_t blockno)
    {
        std::vector<std::byte> out(kFsBlockSize);
        EXPECT_TRUE(io_.read_blocks(blockno, 1, out).is_ok());
        return out;
    }

    static constexpr std::uint64_t kJournalStart = 100;
    static constexpr std::uint64_t kJournalBlocks = 32;

    sim::Simulator sim_;
    storage::MemBlockDevice device_;
    blk::DeviceBlockIo io_;
    Journal journal_;
};

TEST_F(JournalTest, CommitCheckpointsInPlace)
{
    journal_.stage(500, block_of(0xaa));
    journal_.stage(501, block_of(0xbb));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(500), block_of(0xaa));
    EXPECT_EQ(read_block(501), block_of(0xbb));
    EXPECT_EQ(journal_.commits(), 1u);
    EXPECT_EQ(journal_.blocks_journaled(), 2u);
}

TEST_F(JournalTest, EmptyCommitIsNoop)
{
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(journal_.commits(), 0u);
}

TEST_F(JournalTest, ReadThroughSeesStagedContent)
{
    journal_.stage(600, block_of(0x11));
    EXPECT_TRUE(journal_.is_staged(600));
    std::vector<std::byte> out(kFsBlockSize);
    ASSERT_TRUE(journal_.read_through(600, out).is_ok());
    EXPECT_EQ(out, block_of(0x11));
    // On-disk content still old (zero) before commit.
    EXPECT_EQ(read_block(600), block_of(0x00));
}

TEST_F(JournalTest, AbortDropsStagedContent)
{
    journal_.stage(600, block_of(0x22));
    journal_.abort();
    EXPECT_FALSE(journal_.is_staged(600));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(600), block_of(0x00));
}

TEST_F(JournalTest, ReplayIsIdempotentAfterCleanCommit)
{
    journal_.stage(700, block_of(0x33));
    ASSERT_TRUE(journal_.commit().is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 1u);
    EXPECT_EQ(read_block(700), block_of(0x33));
    EXPECT_GE(fresh.next_txn_id(), 2u);
}

TEST_F(JournalTest, ReplayRecoversLostCheckpoint)
{
    // Simulate a crash between commit and checkpoint: commit normally,
    // then clobber the in-place block ("the checkpoint never hit disk").
    journal_.stage(710, block_of(0x44));
    ASSERT_TRUE(journal_.commit().is_ok());
    ASSERT_TRUE(io_.write_blocks(710, 1, block_of(0x00)).is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(fresh.replay().is_ok());
    EXPECT_EQ(read_block(710), block_of(0x44));
}

TEST_F(JournalTest, TornTransactionIgnored)
{
    // Commit one good transaction, then hand-craft a descriptor with
    // no commit record after it (torn).
    journal_.stage(720, block_of(0x55));
    ASSERT_TRUE(journal_.commit().is_ok());

    std::vector<std::byte> desc(kFsBlockSize);
    JournalDescHeader header{kJournalDescMagic, 1, 99};
    std::memcpy(desc.data(), &header, sizeof(header));
    const std::uint64_t target = 721;
    std::memcpy(desc.data() + sizeof(header), &target, sizeof(target));
    // Transaction 1 used ring slots 0..2; write the torn desc at 3.
    ASSERT_TRUE(io_.write_blocks(kJournalStart + 3, 1, desc).is_ok());
    ASSERT_TRUE(
        io_.write_blocks(kJournalStart + 4, 1, block_of(0x66)).is_ok());
    // No commit record at slot 5.

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 1u);               // only the good one
    EXPECT_EQ(read_block(721), block_of(0x00)); // torn write not applied
}

TEST_F(JournalTest, CorruptChecksumIgnored)
{
    journal_.stage(730, block_of(0x77));
    ASSERT_TRUE(journal_.commit().is_ok());
    // Flip a payload byte inside the journal ring (slot 1).
    auto payload = read_block(kJournalStart + 1);
    payload[10] ^= std::byte{0xff};
    ASSERT_TRUE(io_.write_blocks(kJournalStart + 1, 1, payload).is_ok());
    // Clobber the in-place copy so replay would matter.
    ASSERT_TRUE(io_.write_blocks(730, 1, block_of(0x00)).is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 0u);
    EXPECT_EQ(read_block(730), block_of(0x00));
}

TEST_F(JournalTest, ManyCommitsWrapTheRing)
{
    // Each 1-block txn takes 3 ring slots; 32-slot ring wraps after
    // ~10 commits. All checkpoints must still land.
    for (std::uint8_t i = 0; i < 40; ++i) {
        journal_.stage(800 + i, block_of(i));
        ASSERT_TRUE(journal_.commit().is_ok());
    }
    for (std::uint8_t i = 0; i < 40; ++i)
        EXPECT_EQ(read_block(800 + i), block_of(i));

    // Replay after the wrap must not resurrect stale transactions
    // over newer data.
    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(fresh.replay().is_ok());
    for (std::uint8_t i = 0; i < 40; ++i)
        EXPECT_EQ(read_block(800 + i), block_of(i));
}

TEST_F(JournalTest, OversizedCommitSplitsIntoTransactions)
{
    // Stage more blocks than fit in one transaction for this ring.
    for (std::uint8_t i = 0; i < 50; ++i)
        journal_.stage(850 + i, block_of(i));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_GT(journal_.commits(), 1u);
    for (std::uint8_t i = 0; i < 50; ++i)
        EXPECT_EQ(read_block(850 + i), block_of(i));
}

TEST_F(JournalTest, LastWriterWinsWithinCommit)
{
    journal_.stage(900, block_of(0x01));
    journal_.stage(900, block_of(0x02)); // restage same block
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(900), block_of(0x02));
}

} // namespace
} // namespace nesc::fs
