/**
 * @file
 * Unit tests for the nestfs write-ahead journal: staging, commit,
 * replay, torn-transaction handling, ring wrap, and stale-entry
 * protection.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "blocklayer/device_block_io.h"
#include "fs/journal.h"
#include "repl/blockstore.h"
#include "sim/simulator.h"
#include "storage/mem_block_device.h"

namespace nesc::fs {
namespace {

/** Timing-free device + BlockIo fixture for journal tests. */
class JournalTest : public ::testing::Test {
  protected:
    JournalTest()
        : device_(fast_config()), io_(sim_, device_),
          journal_(io_, kJournalStart, kJournalBlocks, 1)
    {
    }

    static storage::MemBlockDeviceConfig
    fast_config()
    {
        storage::MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = 1 << 20;
        cfg.read_bytes_per_sec = 0;
        cfg.write_bytes_per_sec = 0;
        cfg.access_latency = 0;
        return cfg;
    }

    std::vector<std::byte>
    block_of(std::uint8_t fill)
    {
        return std::vector<std::byte>(kFsBlockSize,
                                      static_cast<std::byte>(fill));
    }

    std::vector<std::byte>
    read_block(std::uint64_t blockno)
    {
        std::vector<std::byte> out(kFsBlockSize);
        EXPECT_TRUE(io_.read_blocks(blockno, 1, out).is_ok());
        return out;
    }

    static constexpr std::uint64_t kJournalStart = 100;
    static constexpr std::uint64_t kJournalBlocks = 32;

    sim::Simulator sim_;
    storage::MemBlockDevice device_;
    blk::DeviceBlockIo io_;
    Journal journal_;
};

TEST_F(JournalTest, CommitCheckpointsInPlace)
{
    journal_.stage(500, block_of(0xaa));
    journal_.stage(501, block_of(0xbb));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(500), block_of(0xaa));
    EXPECT_EQ(read_block(501), block_of(0xbb));
    EXPECT_EQ(journal_.commits(), 1u);
    EXPECT_EQ(journal_.blocks_journaled(), 2u);
}

TEST_F(JournalTest, EmptyCommitIsNoop)
{
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(journal_.commits(), 0u);
}

TEST_F(JournalTest, ReadThroughSeesStagedContent)
{
    journal_.stage(600, block_of(0x11));
    EXPECT_TRUE(journal_.is_staged(600));
    std::vector<std::byte> out(kFsBlockSize);
    ASSERT_TRUE(journal_.read_through(600, out).is_ok());
    EXPECT_EQ(out, block_of(0x11));
    // On-disk content still old (zero) before commit.
    EXPECT_EQ(read_block(600), block_of(0x00));
}

TEST_F(JournalTest, AbortDropsStagedContent)
{
    journal_.stage(600, block_of(0x22));
    journal_.abort();
    EXPECT_FALSE(journal_.is_staged(600));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(600), block_of(0x00));
}

TEST_F(JournalTest, ReplayIsIdempotentAfterCleanCommit)
{
    journal_.stage(700, block_of(0x33));
    ASSERT_TRUE(journal_.commit().is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 1u);
    EXPECT_EQ(read_block(700), block_of(0x33));
    EXPECT_GE(fresh.next_txn_id(), 2u);
}

TEST_F(JournalTest, ReplayRecoversLostCheckpoint)
{
    // Simulate a crash between commit and checkpoint: commit normally,
    // then clobber the in-place block ("the checkpoint never hit disk").
    journal_.stage(710, block_of(0x44));
    ASSERT_TRUE(journal_.commit().is_ok());
    ASSERT_TRUE(io_.write_blocks(710, 1, block_of(0x00)).is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(fresh.replay().is_ok());
    EXPECT_EQ(read_block(710), block_of(0x44));
}

TEST_F(JournalTest, TornTransactionIgnored)
{
    // Commit one good transaction, then hand-craft a descriptor with
    // no commit record after it (torn).
    journal_.stage(720, block_of(0x55));
    ASSERT_TRUE(journal_.commit().is_ok());

    std::vector<std::byte> desc(kFsBlockSize);
    JournalDescHeader header{kJournalDescMagic, 1, 99};
    std::memcpy(desc.data(), &header, sizeof(header));
    const std::uint64_t target = 721;
    std::memcpy(desc.data() + sizeof(header), &target, sizeof(target));
    // Transaction 1 used ring slots 0..2; write the torn desc at 3.
    ASSERT_TRUE(io_.write_blocks(kJournalStart + 3, 1, desc).is_ok());
    ASSERT_TRUE(
        io_.write_blocks(kJournalStart + 4, 1, block_of(0x66)).is_ok());
    // No commit record at slot 5.

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 1u);               // only the good one
    EXPECT_EQ(read_block(721), block_of(0x00)); // torn write not applied
}

TEST_F(JournalTest, CorruptChecksumIgnored)
{
    journal_.stage(730, block_of(0x77));
    ASSERT_TRUE(journal_.commit().is_ok());
    // Flip a payload byte inside the journal ring (slot 1).
    auto payload = read_block(kJournalStart + 1);
    payload[10] ^= std::byte{0xff};
    ASSERT_TRUE(io_.write_blocks(kJournalStart + 1, 1, payload).is_ok());
    // Clobber the in-place copy so replay would matter.
    ASSERT_TRUE(io_.write_blocks(730, 1, block_of(0x00)).is_ok());

    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    auto replayed = fresh.replay();
    ASSERT_TRUE(replayed.is_ok());
    EXPECT_EQ(*replayed, 0u);
    EXPECT_EQ(read_block(730), block_of(0x00));
}

TEST_F(JournalTest, ManyCommitsWrapTheRing)
{
    // Each 1-block txn takes 3 ring slots; 32-slot ring wraps after
    // ~10 commits. All checkpoints must still land.
    for (std::uint8_t i = 0; i < 40; ++i) {
        journal_.stage(800 + i, block_of(i));
        ASSERT_TRUE(journal_.commit().is_ok());
    }
    for (std::uint8_t i = 0; i < 40; ++i)
        EXPECT_EQ(read_block(800 + i), block_of(i));

    // Replay after the wrap must not resurrect stale transactions
    // over newer data.
    Journal fresh(io_, kJournalStart, kJournalBlocks, 1);
    ASSERT_TRUE(fresh.replay().is_ok());
    for (std::uint8_t i = 0; i < 40; ++i)
        EXPECT_EQ(read_block(800 + i), block_of(i));
}

TEST_F(JournalTest, OversizedCommitSplitsIntoTransactions)
{
    // Stage more blocks than fit in one transaction for this ring.
    for (std::uint8_t i = 0; i < 50; ++i)
        journal_.stage(850 + i, block_of(i));
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_GT(journal_.commits(), 1u);
    for (std::uint8_t i = 0; i < 50; ++i)
        EXPECT_EQ(read_block(850 + i), block_of(i));
}

TEST_F(JournalTest, LastWriterWinsWithinCommit)
{
    journal_.stage(900, block_of(0x01));
    journal_.stage(900, block_of(0x02)); // restage same block
    ASSERT_TRUE(journal_.commit().is_ok());
    EXPECT_EQ(read_block(900), block_of(0x02));
}

} // namespace
} // namespace nesc::fs

// --- Replica blockstore journal: kill-at-every-write sweep ---------------

namespace nesc::repl {
namespace {

/**
 * BlockDevice wrapper modelling power loss: functional block writes
 * past the cut point are silently dropped (block-granular, so a
 * multi-block write may persist a torn prefix). Reads and timing pass
 * through.
 */
class CutBlockDevice : public storage::BlockDevice {
  public:
    explicit CutBlockDevice(storage::BlockDevice &base) : base_(base) {}

    const storage::Geometry &geometry() const override
    {
        return base_.geometry();
    }

    util::Status
    read(std::uint64_t offset, std::span<std::byte> out) override
    {
        return base_.read(offset, out);
    }

    util::Status
    write(std::uint64_t offset, std::span<const std::byte> in) override
    {
        const std::uint32_t bs = geometry().logical_block_size;
        for (std::uint64_t pos = 0; pos < in.size(); pos += bs) {
            ++writes_seen_;
            if (cut_after_ != 0 && writes_seen_ > cut_after_)
                continue; // lost to the crash
            const std::uint64_t n =
                std::min<std::uint64_t>(bs, in.size() - pos);
            NESC_RETURN_IF_ERROR(
                base_.write(offset + pos, in.subspan(pos, n)));
        }
        return util::Status::ok();
    }

    sim::Time
    service_read(sim::Time start, std::uint64_t offset,
                 std::uint64_t bytes) override
    {
        return base_.service_read(start, offset, bytes);
    }

    sim::Time
    service_write(sim::Time start, std::uint64_t offset,
                  std::uint64_t bytes) override
    {
        return base_.service_write(start, offset, bytes);
    }

    std::uint64_t bytes_read() const override { return base_.bytes_read(); }
    std::uint64_t bytes_written() const override
    {
        return base_.bytes_written();
    }

    /** Drops block writes beyond @p n total; 0 re-arms (no fault). */
    void set_cut_after(std::uint64_t n) { cut_after_ = n; }
    std::uint64_t writes_seen() const { return writes_seen_; }

  private:
    storage::BlockDevice &base_;
    std::uint64_t writes_seen_ = 0;
    std::uint64_t cut_after_ = 0;
};

storage::MemBlockDeviceConfig
small_fast_media()
{
    storage::MemBlockDeviceConfig cfg;
    cfg.capacity_bytes = 256 * 1024;
    cfg.read_bytes_per_sec = 0;
    cfg.write_bytes_per_sec = 0;
    cfg.access_latency = 0;
    return cfg;
}

/** Fills @p buf with a per-transaction pattern. */
void
txn_pattern(std::vector<std::byte> &buf, std::uint64_t txn,
            std::uint8_t generation)
{
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::byte>(
            (txn * 131 + generation * 17 + i) & 0xff);
}

/**
 * The journal's whole contract in one sweep: for EVERY possible crash
 * point (after each persisted media block-write), recovery must leave
 * each transaction's target range either fully old or fully new —
 * never torn, never garbage.
 */
TEST(ReplBlockstoreCrash, KillAtEveryWriteReplaysAtomically)
{
    constexpr std::uint64_t kJournalBlocks = 12;
    constexpr std::uint64_t kTxns = 6;
    constexpr std::uint64_t kBlocksPerTxn = 3;
    constexpr std::uint64_t kBlockSize = 1024;

    // Dry run without a cut to learn the total media write count.
    std::uint64_t total_writes = 0;
    {
        storage::MemBlockDevice media(small_fast_media());
        CutBlockDevice cut(media);
        JournaledBlockstore store(cut, kJournalBlocks);
        std::vector<std::byte> buf(kBlocksPerTxn * kBlockSize);
        for (std::uint64_t t = 0; t < kTxns; ++t) {
            txn_pattern(buf, t, 1);
            ASSERT_TRUE(
                store.write_blocks(t * kBlocksPerTxn, buf).is_ok());
        }
        total_writes = cut.writes_seen();
    }
    ASSERT_GT(total_writes, kTxns * kBlocksPerTxn);

    std::vector<std::byte> buf(kBlocksPerTxn * kBlockSize);
    std::vector<std::byte> old_range(buf.size()), new_range(buf.size());
    std::vector<std::byte> got(buf.size());
    for (std::uint64_t cut_at = 1; cut_at <= total_writes; ++cut_at) {
        storage::MemBlockDevice media(small_fast_media());
        CutBlockDevice cut(media);
        {
            // Generation-0 contents land fully before the crash window.
            JournaledBlockstore store(cut, kJournalBlocks);
            for (std::uint64_t t = 0; t < kTxns; ++t) {
                txn_pattern(buf, t, 0);
                ASSERT_TRUE(
                    store.write_blocks(t * kBlocksPerTxn, buf).is_ok());
            }
        }
        const std::uint64_t base_writes = cut.writes_seen();
        cut.set_cut_after(base_writes + cut_at);
        {
            // Generation-1 rewrite, cut mid-flight at every point.
            JournaledBlockstore store(cut, kJournalBlocks);
            for (std::uint64_t t = 0; t < kTxns; ++t) {
                txn_pattern(buf, t, 1);
                ASSERT_TRUE(
                    store.write_blocks(t * kBlocksPerTxn, buf).is_ok());
            }
        }

        // "Power back on": recover over the raw (no longer cut) media.
        cut.set_cut_after(0);
        JournaledBlockstore recovered(cut, kJournalBlocks);
        auto replayed = recovered.recover();
        ASSERT_TRUE(replayed.is_ok())
            << "cut=" << cut_at << ": " << replayed.status().to_string();

        for (std::uint64_t t = 0; t < kTxns; ++t) {
            txn_pattern(old_range, t, 0);
            txn_pattern(new_range, t, 1);
            ASSERT_TRUE(
                recovered.read_blocks(t * kBlocksPerTxn, got).is_ok());
            EXPECT_TRUE(got == old_range || got == new_range)
                << "torn transaction " << t << " at cut " << cut_at;
        }
    }
}

/**
 * Same sweep, but recovery itself is also killed at every point; a
 * second recovery must then still converge (replay is idempotent and
 * crash-safe).
 */
TEST(ReplBlockstoreCrash, KillDuringRecoveryStaysAtomic)
{
    constexpr std::uint64_t kJournalBlocks = 12;
    constexpr std::uint64_t kTxns = 4;
    constexpr std::uint64_t kBlockSize = 1024;

    std::vector<std::byte> buf(kBlockSize), old_b(kBlockSize),
        new_b(kBlockSize), got(kBlockSize);
    for (std::uint64_t recovery_cut = 1; recovery_cut <= 12;
         ++recovery_cut) {
        storage::MemBlockDevice media(small_fast_media());
        CutBlockDevice cut(media);
        {
            JournaledBlockstore store(cut, kJournalBlocks);
            for (std::uint64_t t = 0; t < kTxns; ++t) {
                txn_pattern(buf, t, 0);
                ASSERT_TRUE(store.write_blocks(t, buf).is_ok());
            }
        }
        // Crash mid-rewrite, leaving committed-but-unstable txns.
        cut.set_cut_after(cut.writes_seen() + 9);
        {
            JournaledBlockstore store(cut, kJournalBlocks);
            for (std::uint64_t t = 0; t < kTxns; ++t) {
                txn_pattern(buf, t, 1);
                ASSERT_TRUE(store.write_blocks(t, buf).is_ok());
            }
        }
        // First recovery attempt is itself cut short...
        cut.set_cut_after(cut.writes_seen() + recovery_cut);
        {
            JournaledBlockstore half(cut, kJournalBlocks);
            ASSERT_TRUE(half.recover().is_ok());
        }
        // ...the retry must finish the job.
        cut.set_cut_after(0);
        JournaledBlockstore recovered(cut, kJournalBlocks);
        ASSERT_TRUE(recovered.recover().is_ok());
        for (std::uint64_t t = 0; t < kTxns; ++t) {
            txn_pattern(old_b, t, 0);
            txn_pattern(new_b, t, 1);
            ASSERT_TRUE(recovered.read_blocks(t, got).is_ok());
            EXPECT_TRUE(got == old_b || got == new_b)
                << "torn block " << t << " at recovery cut "
                << recovery_cut;
        }
    }
}

} // namespace
} // namespace nesc::repl
